//! Regenerates the golden metrics transcripts under `tests/golden/`.
//!
//! Run after an *intentional* change to metric names, label schemas or
//! instrumentation sites:
//!
//! ```text
//! cargo run --bin regen_golden
//! ```
//!
//! The scenarios are thread-count invariant (see `vecycle::golden`), so
//! regenerating under any `VECYCLE_THREADS` produces identical bytes —
//! CI runs the golden suite at 1 and 4 threads against the same files.

use vecycle::golden;

type Scenario = fn(usize) -> vecycle::obs::MetricsSnapshot;

fn main() {
    let threads = golden::scan_threads();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden");
    std::fs::create_dir_all(&dir).expect("creating tests/golden");

    let scenarios: [(&str, Scenario); 4] = [
        ("idle_vm", golden::idle_vm),
        ("update_rate_sweep", golden::update_rate_sweep),
        ("failure_sweep", golden::failure_sweep),
        ("lifecycle", golden::lifecycle),
    ];
    for (name, run) in scenarios {
        let path = dir.join(format!("{name}.json"));
        let json = run(threads).to_canonical_json();
        let changed = std::fs::read_to_string(&path)
            .map(|old| old != json)
            .unwrap_or(true);
        std::fs::write(&path, &json).expect("writing golden file");
        println!(
            "{} {} ({} bytes, {} threads)",
            if changed { "rewrote " } else { "unchanged" },
            path.display(),
            json.len(),
            threads,
        );
    }
}
