//! Canonical observability scenarios for the golden-transcript suite.
//!
//! Each function runs a fixed-seed simulation end to end and returns the
//! [`MetricsSnapshot`] its shared registry accumulated. The snapshots
//! are locked down byte-for-byte in `tests/metrics_golden.rs` against
//! the JSON files under `tests/golden/`; regenerate those with
//! `cargo run --bin regen_golden` after an *intentional* metrics change.
//!
//! Determinism contract: a scenario's snapshot depends only on its seed
//! constants — never on the scan-thread count (`threads` is a pure
//! wall-clock knob), the host wall clock, or iteration order of any
//! unordered container. `tests/parallel_props.rs` enforces the thread
//! half of that contract.

use vecycle_core::session::{RecyclePolicy, SessionEvent, VeCycleSession, VmInstance};
use vecycle_core::MigrationEngine;
use vecycle_faults::{FaultPlan, FaultRates, RetryPolicy};
use vecycle_host::{Cluster, MigrationSchedule};
use vecycle_mem::{workload::IdleWorkload, DigestMemory, Guest};
use vecycle_net::LinkSpec;
use vecycle_obs::{MetricsRegistry, MetricsSnapshot};
use vecycle_types::{Bytes, HostId, SimDuration, SimTime, VmId};

/// Every scenario's VM: small enough that the suite is quick, large
/// enough that rounds, dedup and zero suppression all fire.
const RAM: Bytes = Bytes::from_mib(4);

/// Generator seed shared by the scenarios.
const SEED: u64 = 0x7ec;

/// Scan threads from `VECYCLE_THREADS`, defaulting to 1 (sequential).
pub fn scan_threads() -> usize {
    std::env::var("VECYCLE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// A 2-host LAN session sharing `metrics`, scanning with `threads`.
fn session(metrics: &MetricsRegistry, threads: usize, retry: RetryPolicy) -> VeCycleSession {
    let cluster = Cluster::homogeneous(2, LinkSpec::lan_gigabit());
    let engine = MigrationEngine::new(cluster.link()).with_threads(threads);
    VeCycleSession::new(cluster)
        .with_engine(engine)
        .with_policy(RecyclePolicy::VeCycle)
        .with_retry_policy(retry)
        .with_metrics(metrics.clone())
}

/// A fresh VM placed on host 0.
fn instance() -> VmInstance<DigestMemory> {
    let mem = DigestMemory::with_uniform_content(RAM, SEED).expect("page-aligned RAM");
    VmInstance::new(VmId::new(0), Guest::new(mem), HostId::new(0))
}

/// A ping-pong schedule between the two hosts, hourly legs.
fn ping_pong(legs: u64) -> MigrationSchedule {
    MigrationSchedule::ping_pong(
        VmId::new(0),
        HostId::new(0),
        HostId::new(1),
        SimTime::EPOCH + SimDuration::from_hours(1),
        SimDuration::from_hours(1),
        legs,
    )
}

/// An idle VM hopping back and forth: the paper's best case. Four legs,
/// a trickle of background dirtying, no faults — the snapshot captures
/// the clean path through engine, session, checkpoint and net counters.
pub fn idle_vm(threads: usize) -> MetricsSnapshot {
    let metrics = MetricsRegistry::new();
    let s = session(&metrics, threads, RetryPolicy::default());
    let mut vm = instance();
    // ~2% of pages touched per hour-long gap.
    let rate = RAM.pages_ceil().as_u64() as f64 * 0.02 / 3600.0;
    let mut workload = IdleWorkload::new(SEED ^ 1, rate);
    s.run_schedule(&mut vm, &ping_pong(4), &mut workload)
        .expect("clean schedule");
    metrics.snapshot()
}

/// Three sessions at increasing guest update rates (1%, 5%, 25% of
/// pages per gap) accumulating into one registry — the observability
/// view of the paper's update-rate sensitivity experiment.
pub fn update_rate_sweep(threads: usize) -> MetricsSnapshot {
    let metrics = MetricsRegistry::new();
    for (i, frac) in [0.01, 0.05, 0.25].into_iter().enumerate() {
        let s = session(&metrics, threads, RetryPolicy::default());
        let mut vm = instance();
        let rate = RAM.pages_ceil().as_u64() as f64 * frac / 3600.0;
        let mut workload = IdleWorkload::new(SEED.wrapping_add(i as u64), rate);
        s.run_schedule(&mut vm, &ping_pong(2), &mut workload)
            .expect("clean schedule");
    }
    metrics.snapshot()
}

/// A faulted schedule at 25% and 50% uniform fault rates, once resuming
/// from partial checkpoints and once retrying from scratch. Returns the
/// snapshot; [`failure_sweep_with_events`] also returns the transcript
/// so tests can reconcile prose events against the typed counters.
pub fn failure_sweep(threads: usize) -> MetricsSnapshot {
    failure_sweep_with_events(threads).0
}

/// [`failure_sweep`] plus the concatenated [`SessionEvent`] transcript.
pub fn failure_sweep_with_events(threads: usize) -> (MetricsSnapshot, Vec<SessionEvent>) {
    let metrics = MetricsRegistry::new();
    let mut events = Vec::new();
    for p in [0.25, 0.5] {
        for retry in [RetryPolicy::default(), RetryPolicy::from_scratch()] {
            let s = session(&metrics, threads, retry);
            let mut vm = instance();
            let rate = RAM.pages_ceil().as_u64() as f64 * 0.05 / 3600.0;
            let mut workload = IdleWorkload::new(SEED ^ 2, rate);
            let schedule = ping_pong(6);
            let plan = FaultPlan::seeded(SEED, &FaultRates::uniform(p), schedule.len());
            let run = s
                .run_schedule_with_faults(&mut vm, &schedule, &mut workload, &plan)
                .expect("faults are data, not errors");
            events.extend(run.events);
        }
    }
    (metrics.snapshot(), events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_repeatable() {
        assert_eq!(
            idle_vm(1).to_canonical_json(),
            idle_vm(1).to_canonical_json()
        );
    }

    #[test]
    fn failure_sweep_observes_faults() {
        let (snap, events) = failure_sweep_with_events(1);
        assert!(!events.is_empty(), "50% fault rate must produce incidents");
        assert!(snap.counter_total("faults_injected_total") > 0);
        assert!(snap.counter_total("session_events_total") > 0);
    }
}
