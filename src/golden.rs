//! Canonical observability scenarios for the golden-transcript suite.
//!
//! Each function runs a fixed-seed simulation end to end and returns the
//! [`MetricsSnapshot`] its shared registry accumulated. The snapshots
//! are locked down byte-for-byte in `tests/metrics_golden.rs` against
//! the JSON files under `tests/golden/`; regenerate those with
//! `cargo run --bin regen_golden` after an *intentional* metrics change.
//!
//! Determinism contract: a scenario's snapshot depends only on its seed
//! constants — never on the scan-thread count (`threads` is a pure
//! wall-clock knob), the host wall clock, or iteration order of any
//! unordered container. `tests/parallel_props.rs` enforces the thread
//! half of that contract.

use vecycle_checkpoint::{Checkpoint, EvictionPolicy};
use vecycle_core::session::{RecyclePolicy, SessionEvent, VeCycleSession, VmInstance};
use vecycle_core::MigrationEngine;
use vecycle_faults::{DropPoint, FaultKind, FaultPlan, FaultRates, RetryPolicy};
use vecycle_host::{Cluster, MigrationSchedule};
use vecycle_mem::{workload::IdleWorkload, DigestMemory, Guest};
use vecycle_net::LinkSpec;
use vecycle_obs::{MetricsRegistry, MetricsSnapshot};
use vecycle_types::{Bytes, HostId, SimDuration, SimTime, VmId};

/// Every scenario's VM: small enough that the suite is quick, large
/// enough that rounds, dedup and zero suppression all fire.
const RAM: Bytes = Bytes::from_mib(4);

/// Generator seed shared by the scenarios.
const SEED: u64 = 0x7ec;

/// Scan threads from `VECYCLE_THREADS`, defaulting to 1 (sequential).
pub fn scan_threads() -> usize {
    std::env::var("VECYCLE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// A 2-host LAN session sharing `metrics`, scanning with `threads`.
fn session(metrics: &MetricsRegistry, threads: usize, retry: RetryPolicy) -> VeCycleSession {
    let cluster = Cluster::homogeneous(2, LinkSpec::lan_gigabit());
    let engine = MigrationEngine::new(cluster.link()).with_threads(threads);
    VeCycleSession::new(cluster)
        .with_engine(engine)
        .with_policy(RecyclePolicy::VeCycle)
        .with_retry_policy(retry)
        .with_metrics(metrics.clone())
}

/// A fresh VM placed on host 0.
fn instance() -> VmInstance<DigestMemory> {
    let mem = DigestMemory::with_uniform_content(RAM, SEED).expect("page-aligned RAM");
    VmInstance::new(VmId::new(0), Guest::new(mem), HostId::new(0))
}

/// A ping-pong schedule between the two hosts, hourly legs.
fn ping_pong(legs: u64) -> MigrationSchedule {
    MigrationSchedule::ping_pong(
        VmId::new(0),
        HostId::new(0),
        HostId::new(1),
        SimTime::EPOCH + SimDuration::from_hours(1),
        SimDuration::from_hours(1),
        legs,
    )
}

/// An idle VM hopping back and forth: the paper's best case. Four legs,
/// a trickle of background dirtying, no faults — the snapshot captures
/// the clean path through engine, session, checkpoint and net counters.
pub fn idle_vm(threads: usize) -> MetricsSnapshot {
    let metrics = MetricsRegistry::new();
    let s = session(&metrics, threads, RetryPolicy::default());
    let mut vm = instance();
    // ~2% of pages touched per hour-long gap.
    let rate = RAM.pages_ceil().as_u64() as f64 * 0.02 / 3600.0;
    let mut workload = IdleWorkload::new(SEED ^ 1, rate);
    s.run_schedule(&mut vm, &ping_pong(4), &mut workload)
        .expect("clean schedule");
    metrics.snapshot()
}

/// Three sessions at increasing guest update rates (1%, 5%, 25% of
/// pages per gap) accumulating into one registry — the observability
/// view of the paper's update-rate sensitivity experiment.
pub fn update_rate_sweep(threads: usize) -> MetricsSnapshot {
    let metrics = MetricsRegistry::new();
    for (i, frac) in [0.01, 0.05, 0.25].into_iter().enumerate() {
        let s = session(&metrics, threads, RetryPolicy::default());
        let mut vm = instance();
        let rate = RAM.pages_ceil().as_u64() as f64 * frac / 3600.0;
        let mut workload = IdleWorkload::new(SEED.wrapping_add(i as u64), rate);
        s.run_schedule(&mut vm, &ping_pong(2), &mut workload)
            .expect("clean schedule");
    }
    metrics.snapshot()
}

/// A faulted schedule at 25% and 50% uniform fault rates, once resuming
/// from partial checkpoints and once retrying from scratch. Returns the
/// snapshot; [`failure_sweep_with_events`] also returns the transcript
/// so tests can reconcile prose events against the typed counters.
pub fn failure_sweep(threads: usize) -> MetricsSnapshot {
    failure_sweep_with_events(threads).0
}

/// [`failure_sweep`] plus the concatenated [`SessionEvent`] transcript.
pub fn failure_sweep_with_events(threads: usize) -> (MetricsSnapshot, Vec<SessionEvent>) {
    let metrics = MetricsRegistry::new();
    let mut events = Vec::new();
    for p in [0.25, 0.5] {
        for retry in [RetryPolicy::default(), RetryPolicy::from_scratch()] {
            let s = session(&metrics, threads, retry);
            let mut vm = instance();
            let rate = RAM.pages_ceil().as_u64() as f64 * 0.05 / 3600.0;
            let mut workload = IdleWorkload::new(SEED ^ 2, rate);
            let schedule = ping_pong(6);
            let plan = FaultPlan::seeded(SEED, &FaultRates::uniform(p), schedule.len());
            let run = s
                .run_schedule_with_faults(&mut vm, &schedule, &mut workload, &plan)
                .expect("faults are data, not errors");
            events.extend(run.events);
        }
    }
    (metrics.snapshot(), events)
}

/// A distinct scratch directory per call for the lifecycle scenario's
/// durable stores (the scenario runs repeatedly within one test
/// process, and leftover files would break determinism).
fn fresh_lifecycle_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "vecycle-golden-lifecycle-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Flips one payload byte in the middle of a checkpoint file — real
/// on-disk rot for a restart's scrub pass to quarantine.
fn rot_file(path: &std::path::Path) {
    let mut bytes = std::fs::read(path).expect("rotting an existing checkpoint file");
    assert!(bytes.len() >= 64, "checkpoint file too small to rot safely");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(path, bytes).expect("writing rotted checkpoint file");
}

/// The checkpoint-lifecycle scenario: a quota-squeezed 2-host cluster
/// with durable stores, exercising every lifecycle metric in one run —
/// quota evictions (`ckpt_evictions_total`), a destination host crash
/// whose restart scrub re-verifies the disk store and quarantines a
/// deliberately rotted filler (`scrub_pages_total`,
/// `host_restarts_total`), an injected corrupt-checkpoint load that
/// degrades a leg to a full transfer, and a follow-up run under a
/// starvation quota whose departure saves are all refused. The
/// `store_bytes` gauge tracks admission and eviction throughout.
pub fn lifecycle(threads: usize) -> MetricsSnapshot {
    let metrics = MetricsRegistry::new();
    let dir = fresh_lifecycle_dir();
    // Quota: 2.5 checkpoints' worth (a 4 MiB digest VM checkpoints into
    // 16 KiB), so the third resident forces an eviction.
    let quota = Bytes::from_kib(40);
    let cluster = Cluster::homogeneous(2, LinkSpec::lan_gigabit())
        .attach_disk_stores(&dir)
        .expect("scratch disk stores")
        .with_checkpoint_quotas(quota, EvictionPolicy::LruByRecycle);
    let engine = MigrationEngine::new(cluster.link()).with_threads(threads);
    let s = VeCycleSession::new(cluster)
        .with_engine(engine)
        .with_policy(RecyclePolicy::VeCycle)
        .with_retry_policy(RetryPolicy::default())
        .with_metrics(metrics.clone());

    // Two fillers pre-seed host 1's store, squeezing the quota before
    // the VM's own checkpoint arrives.
    let host1 = s.cluster().host(HostId::new(1)).expect("host 1").clone();
    for (i, ram_mib) in [(0u64, 4u64), (1, 4)] {
        let mem = DigestMemory::with_uniform_content(Bytes::from_mib(ram_mib), SEED ^ (0x100 + i))
            .expect("page-aligned filler");
        let cp = Checkpoint::capture(VmId::new(100 + i as u32), SimTime::EPOCH, &mem);
        let outcome = host1.save_checkpoint(cp).expect("filler save");
        vecycle_host::observe_save(&metrics, &host1, &outcome);
    }
    // Rot the *second* filler on disk: the first is the LRU victim when
    // the VM's own checkpoint lands, so only the second survives to be
    // scrubbed after the crash.
    rot_file(&dir.join("host-1").join("vm-101.ckpt"));

    let mut vm = instance();
    let rate = RAM.pages_ceil().as_u64() as f64 * 0.02 / 3600.0;
    let mut workload = IdleWorkload::new(SEED ^ 3, rate);
    let schedule = ping_pong(6);
    // Leg 2 (0 → 1): host 1 dies almost immediately, restarts, and its
    // scrub finds the rot. Leg 4 (0 → 1): the recycled checkpoint is
    // corrupt on load.
    let plan = FaultPlan::none()
        .inject(
            2,
            FaultKind::HostCrash {
                after: DropPoint::Bytes(Bytes::new(4096)),
                attempts: 1,
            },
        )
        .inject(4, FaultKind::CheckpointCorrupt);
    s.run_schedule_with_faults(&mut vm, &schedule, &mut workload, &plan)
        .expect("faults are data, not errors");

    // A second session under a starvation quota smaller than one
    // checkpoint: every departure save is refused, so recycling never
    // engages and the refusal path shows up in the transcript.
    let starved = Cluster::homogeneous(2, LinkSpec::lan_gigabit())
        .with_checkpoint_quotas(Bytes::from_kib(8), EvictionPolicy::OldestFirst);
    let engine = MigrationEngine::new(starved.link()).with_threads(threads);
    let s = VeCycleSession::new(starved)
        .with_engine(engine)
        .with_policy(RecyclePolicy::VeCycle)
        .with_retry_policy(RetryPolicy::default())
        .with_metrics(metrics.clone());
    let mut vm = instance();
    let mut workload = IdleWorkload::new(SEED ^ 4, rate);
    s.run_schedule_with_faults(&mut vm, &ping_pong(2), &mut workload, &FaultPlan::none())
        .expect("clean schedule");

    let snap = metrics.snapshot();
    let _ = std::fs::remove_dir_all(&dir);
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_repeatable() {
        assert_eq!(
            idle_vm(1).to_canonical_json(),
            idle_vm(1).to_canonical_json()
        );
    }

    #[test]
    fn failure_sweep_observes_faults() {
        let (snap, events) = failure_sweep_with_events(1);
        assert!(!events.is_empty(), "50% fault rate must produce incidents");
        assert!(snap.counter_total("faults_injected_total") > 0);
        assert!(snap.counter_total("session_events_total") > 0);
    }

    #[test]
    fn lifecycle_observes_every_lifecycle_metric() {
        let snap = lifecycle(1);
        assert!(snap.counter_total("ckpt_evictions_total") > 0, "evictions");
        assert!(snap.counter_total("host_restarts_total") > 0, "restarts");
        assert!(snap.counter_total("scrub_pages_total") > 0, "scrub");
        assert!(
            snap.counter(
                "session_events_total",
                &[("event", "checkpoint_quarantined")]
            ) > 0,
            "the rotted filler must be quarantined by the restart scrub"
        );
        assert!(
            snap.counter(
                "session_events_total",
                &[("event", "checkpoint_save_refused")]
            ) > 0,
            "the oversized filler must be refused"
        );
        // Repeatable within one process (fresh scratch dirs per call).
        assert_eq!(snap.to_canonical_json(), lifecycle(1).to_canonical_json());
    }
}
