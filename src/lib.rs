//! # VeCycle — recycling VM checkpoints for faster migrations
//!
//! A trace-driven Rust reproduction of *"VeCycle: Recycling VM Checkpoints
//! for Faster Migrations"* (Knauth & Fetzer, Middleware 2015).
//!
//! This umbrella crate re-exports every subsystem so examples and
//! integration tests can use a single dependency. See the individual crates
//! for the real APIs:
//!
//! * [`types`] — unit newtypes, identifiers, digests, simulated time.
//! * [`hash`] — from-scratch MD5 / SHA-1 / SHA-256 / FNV-1a.
//! * [`mem`] — guest memory images, dirty tracking, generation tables.
//! * [`trace`] — memory fingerprints, similarity, synthetic trace generator.
//! * [`checkpoint`] — checkpoint files, checksum indexes, per-host stores.
//! * [`net`] — link models (LAN/WAN), wire sizing, traffic accounting.
//! * [`sim`] — a minimal discrete-event simulator.
//! * [`host`] — disks, hosts, clusters and migration schedules.
//! * [`faults`] — deterministic fault injection and retry policies.
//! * [`core`] — the migration engine and traffic-reduction strategies.
//! * [`obs`] — deterministic metrics registry and span timeline.
//! * [`analysis`] — binning, CDFs and report rendering.
//!
//! The [`golden`] module (in this crate) defines the fixed-seed scenarios
//! whose metrics snapshots are locked down by the golden-transcript suite.
//!
//! # Quickstart
//!
//! ```
//! use vecycle::core::{MigrationEngine, Strategy};
//! use vecycle::mem::DigestMemory;
//! use vecycle::net::LinkSpec;
//! use vecycle::types::Bytes;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // An idle 256 MiB VM, migrated over gigabit Ethernet with a warm
//! // checkpoint at the destination (best case, Figure 6).
//! let vm = DigestMemory::with_uniform_content(Bytes::from_mib(256), 7)?;
//! let checkpoint = vm.snapshot();
//! let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
//! let report = engine.migrate(&vm, Strategy::vecycle(&checkpoint))?;
//! let baseline = engine.migrate(&vm, Strategy::full())?;
//! assert!(report.source_traffic() < baseline.source_traffic());
//! # Ok(())
//! # }
//! ```

pub use vecycle_analysis as analysis;
pub use vecycle_checkpoint as checkpoint;
pub use vecycle_core as core;
pub use vecycle_faults as faults;
pub use vecycle_hash as hash;
pub use vecycle_host as host;
pub use vecycle_mem as mem;
pub use vecycle_net as net;
pub use vecycle_obs as obs;
pub use vecycle_sim as sim;
pub use vecycle_trace as trace;
pub use vecycle_types as types;

pub mod golden;
