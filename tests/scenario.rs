//! Multi-migration scenarios across the session, host and sim layers.

use vecycle::core::session::{RecyclePolicy, VeCycleSession, VmInstance};
use vecycle::core::{MigrationEngine, Strategy};
use vecycle::host::{Cluster, MigrationSchedule};
use vecycle::mem::workload::IdleWorkload;
use vecycle::mem::{DigestMemory, Guest};
use vecycle::net::LinkSpec;
use vecycle::sim::Simulator;
use vecycle::types::{Bytes, HostId, SimDuration, SimTime, VmId};

fn vdi_session(policy: RecyclePolicy) -> Vec<vecycle::core::MigrationReport> {
    let cluster = Cluster::homogeneous(2, LinkSpec::lan_gigabit());
    let session = VeCycleSession::new(cluster).with_policy(policy);
    let mem = DigestMemory::with_uniform_content(Bytes::from_mib(64), 5).unwrap();
    let mut vm = VmInstance::new(VmId::new(0), Guest::new(mem), HostId::new(1));
    let schedule = MigrationSchedule::vdi(VmId::new(0), HostId::new(0), HostId::new(1), 19);
    // 0.03 pages/s ≈ 1.7k writes over a 16 h night on a 16k-page guest.
    let mut workload = IdleWorkload::new(3, 0.03);
    session
        .run_schedule(&mut vm, &schedule, &mut workload)
        .unwrap()
}

#[test]
fn vdi_scenario_is_deterministic() {
    let a = vdi_session(RecyclePolicy::VeCycle);
    let b = vdi_session(RecyclePolicy::VeCycle);
    assert_eq!(a.len(), 26);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.source_traffic(), y.source_traffic());
        assert_eq!(x.total_time(), y.total_time());
    }
}

#[test]
fn vdi_vecycle_beats_baseline_substantially() {
    let baseline: f64 = vdi_session(RecyclePolicy::Baseline)
        .iter()
        .map(|r| r.source_traffic().as_f64())
        .sum();
    let vecycle: f64 = vdi_session(RecyclePolicy::VeCycle)
        .iter()
        .map(|r| r.source_traffic().as_f64())
        .sum();
    let frac = vecycle / baseline;
    // The paper's §4.6 aggregate is 25% of baseline; with our synthetic
    // desktop anything clearly below half proves the mechanism.
    assert!(frac < 0.5, "vecycle moved {:.0}% of baseline", frac * 100.0);
}

#[test]
fn first_vdi_migration_is_the_most_expensive() {
    let reports = vdi_session(RecyclePolicy::VeCycle);
    let first = reports[0].source_traffic();
    for later in &reports[2..] {
        assert!(later.source_traffic() <= first);
    }
}

#[test]
fn simulator_drives_scheduled_migrations() {
    // Use the DES to fire migrations at schedule instants.
    let schedule = MigrationSchedule::ping_pong(
        VmId::new(0),
        HostId::new(0),
        HostId::new(1),
        SimTime::EPOCH + SimDuration::from_hours(1),
        SimDuration::from_hours(2),
        6,
    );
    let cluster = Cluster::homogeneous(2, LinkSpec::lan_gigabit());
    let session = VeCycleSession::new(cluster);
    let mem = DigestMemory::with_uniform_content(Bytes::from_mib(16), 6).unwrap();
    let mut vm = VmInstance::new(VmId::new(0), Guest::new(mem), HostId::new(0));
    let mut workload = IdleWorkload::new(8, 1.0);

    let mut sim = Simulator::new();
    for leg in &schedule {
        sim.schedule_at(leg.at, *leg);
    }
    let mut reports = Vec::new();
    sim.run(|sim, ev| {
        use vecycle::mem::workload::GuestWorkload;
        // Age the guest up to the event instant (run_schedule does this
        // internally; with the DES we do it per event).
        workload.advance(vm.guest_mut(), SimDuration::from_hours(2));
        let report = session
            .migrate(&mut vm, ev.payload.to, sim.now(), &mut workload)
            .unwrap();
        reports.push(report);
    });
    assert_eq!(reports.len(), 6);
    assert_eq!(vm.location(), HostId::new(0));
    // After warmup, every migration recycles.
    for r in &reports[1..] {
        assert_eq!(r.strategy().to_string(), "vecycle+dedup");
    }
}

#[test]
fn shorter_gaps_mean_less_traffic() {
    // The headline time-similarity relationship, end to end: migrating
    // every 30 min moves less than migrating every 8 h.
    let run = |gap_hours: u64| -> f64 {
        let cluster = Cluster::homogeneous(2, LinkSpec::lan_gigabit());
        let session = VeCycleSession::new(cluster);
        let mem = DigestMemory::with_uniform_content(Bytes::from_mib(32), 7).unwrap();
        let mut vm = VmInstance::new(VmId::new(0), Guest::new(mem), HostId::new(0));
        let schedule = MigrationSchedule::ping_pong(
            VmId::new(0),
            HostId::new(0),
            HostId::new(1),
            SimTime::EPOCH,
            SimDuration::from_hours(gap_hours),
            8,
        );
        let mut workload = IdleWorkload::new(9, 2.0);
        let reports = session
            .run_schedule(&mut vm, &schedule, &mut workload)
            .unwrap();
        // Skip the cold first migration.
        reports[1..]
            .iter()
            .map(|r| r.source_traffic().as_f64())
            .sum()
    };
    let short = run(1);
    let long = run(8);
    assert!(
        short < long,
        "1 h gaps ({short:.0} B) should move less than 8 h gaps ({long:.0} B)"
    );
}

#[test]
fn strategy_hierarchy_holds_on_an_aged_guest() {
    // full >= dedup >= vecycle >= vecycle+dedup (traffic), on one state.
    let mem = DigestMemory::with_uniform_content(Bytes::from_mib(32), 8).unwrap();
    let mut guest = Guest::new(mem);
    let cp = guest.memory().snapshot();
    use vecycle::mem::workload::GuestWorkload;
    IdleWorkload::new(11, 20.0).advance(&mut guest, SimDuration::from_hours(1));

    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    let t = |s: Strategy| {
        engine
            .migrate(guest.memory(), s)
            .unwrap()
            .source_traffic()
            .as_u64()
    };
    let full = t(Strategy::full());
    let dedup = t(Strategy::dedup());
    let vecycle = t(Strategy::vecycle(&cp));
    let both = t(Strategy::vecycle(&cp).with_dedup());
    assert!(dedup <= full);
    assert!(vecycle <= dedup);
    assert!(both <= vecycle);
}

#[test]
fn scan_workload_wavefront_converges_or_hits_round_cap() {
    // A scanner rewrites memory sequentially; pre-copy chases the
    // wavefront. At moderate rates the engine still converges within
    // its round budget.
    use vecycle::mem::workload::ScanWorkload;
    let mem = DigestMemory::with_uniform_content(Bytes::from_mib(16), 10).unwrap();
    let mut guest = Guest::new(mem);
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    let mut scanner = ScanWorkload::new(11, 5_000.0);
    let r = engine
        .migrate_live(&mut guest, &mut scanner, Strategy::full())
        .unwrap();
    assert!(r.rounds().len() <= 30);
    // Each round's dirty set shrinks (the wavefront advances slower than
    // the wire drains it at this rate).
    for w in r.rounds().windows(2) {
        assert!(
            w[1].full_pages <= w[0].full_pages,
            "round sizes must shrink: {:?}",
            r.rounds().iter().map(|x| x.full_pages).collect::<Vec<_>>()
        );
    }
}
