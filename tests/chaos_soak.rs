//! The chaos soak as a tier-1 test: a long seeded hostile schedule —
//! host crashes, disk pressure, checkpoint corruption, link drops and
//! netem loss all armed — must finish with zero invariant violations,
//! no `Failed` outcomes, and a bit-identical transcript at every scan
//! thread count. See `vecycle_bench::soak` for what the invariants are.

use vecycle::checkpoint::EvictionPolicy;
use vecycle::sim::chaos::ChaosConfig;
use vecycle_bench::soak::{fresh_soak_dir, run_soak, SoakOptions};

/// Every fault class armed, hot enough that crashes, evictions, scrub
/// quarantines and retries all occur within the run.
fn hostile_config() -> ChaosConfig {
    ChaosConfig::parse(
        "seed=2022,legs=200,hosts=3,crash=0.12,pressure=0.25,corrupt=0.08,drop=0.15,loss=0.1",
    )
    .expect("spec is well-formed")
}

#[test]
fn soak_survives_200_hostile_legs_and_is_thread_invariant() {
    let mut baseline: Option<(String, Vec<String>, String)> = None;
    for threads in [1usize, 2, 4, 8] {
        let mut opts = SoakOptions::new(hostile_config());
        opts.threads = threads;
        opts.disk_root = fresh_soak_dir(&format!("test-t{threads}"));
        let report = run_soak(&opts).expect("soak infrastructure");

        assert!(
            report.violations.is_empty(),
            "threads {threads}: invariants violated: {:#?}",
            report.violations
        );
        assert_eq!(
            report.failed, 0,
            "threads {threads}: injected faults must always be survivable"
        );
        assert!(report.legs_run >= 100, "the walk must actually migrate");
        assert!(report.restarts > 0, "crashes were armed but never struck");
        assert!(report.evictions > 0, "pressure was armed but never evicted");
        assert!(
            report.retried + report.fell_back > 0,
            "faults were armed but every leg completed first try"
        );

        let summary = report.summary();
        let key = (report.metrics_json, report.events, summary);
        match &baseline {
            None => baseline = Some(key),
            Some(base) => {
                assert_eq!(
                    key.0, base.0,
                    "threads {threads}: metrics snapshot diverged from 1 thread"
                );
                assert_eq!(
                    key.1, base.1,
                    "threads {threads}: incident transcript diverged from 1 thread"
                );
                assert_eq!(key.2, base.2, "threads {threads}: summary diverged");
            }
        }
    }
}

#[test]
fn soak_holds_under_every_eviction_policy() {
    let config = ChaosConfig::parse("seed=77,legs=60,hosts=3,crash=0.15,pressure=0.5,corrupt=0.1")
        .expect("spec is well-formed");
    for policy in [
        EvictionPolicy::OldestFirst,
        EvictionPolicy::LruByRecycle,
        EvictionPolicy::LargestFirst,
        EvictionPolicy::StalenessScore,
    ] {
        let mut opts = SoakOptions::new(config);
        opts.policy = policy;
        opts.disk_root = fresh_soak_dir(&format!("test-{policy}"));
        let report = run_soak(&opts).expect("soak infrastructure");
        assert!(
            report.violations.is_empty(),
            "{policy}: invariants violated: {:#?}",
            report.violations
        );
        assert_eq!(report.failed, 0, "{policy}: unsurvivable injected fault");
    }
}
