//! End-to-end fault injection and recovery: corrupt on-disk checkpoints
//! degrade to dedup-only migrations, aborted transfers resume from their
//! landed pages, and a fully faulted schedule finishes with an outcome
//! per migration instead of an error.

use vecycle::core::session::{
    FaultedScheduleRun, RecyclePolicy, ScheduleSummary, SessionEvent, VeCycleSession, VmInstance,
};
use vecycle::core::{MigrationEngine, MigrationOutcome};
use vecycle::faults::{DropPoint, FaultKind, FaultPlan, FaultRates, RetryPolicy};
use vecycle::host::{Cluster, MigrationSchedule};
use vecycle::mem::workload::{IdleWorkload, SilentWorkload};
use vecycle::mem::{DigestMemory, Guest};
use vecycle::net::LinkSpec;
use vecycle::types::{Bytes, HostId, SimDuration, SimTime, VmId};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("vecycle-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn instance() -> VmInstance<DigestMemory> {
    let mem = DigestMemory::with_uniform_content(Bytes::from_mib(4), 1).unwrap();
    VmInstance::new(VmId::new(0), Guest::new(mem), HostId::new(0))
}

/// Builds a two-host cluster with durable checkpoint stores, hops the VM
/// 0 → 1 so host 0 holds a checkpoint both in memory and on disk, then
/// evicts the in-memory copy so the next fetch must go through the file.
fn warmed_disk_session(
    tag: &str,
) -> (VeCycleSession, VmInstance<DigestMemory>, std::path::PathBuf) {
    let dir = tmpdir(tag);
    let cluster = Cluster::homogeneous(2, LinkSpec::lan_gigabit())
        .attach_disk_stores(&dir)
        .unwrap();
    let s = VeCycleSession::new(cluster);
    let mut vm = instance();
    s.migrate(&mut vm, HostId::new(1), SimTime::EPOCH, &mut SilentWorkload)
        .unwrap();
    assert_eq!(s.cluster().hosts()[0].store().remove(vm.id()), 1);
    (s, vm, dir)
}

fn checkpoint_file(dir: &std::path::Path) -> std::path::PathBuf {
    dir.join("host-0").join("vm-0.ckpt")
}

#[test]
fn bit_flipped_disk_checkpoint_degrades_to_dedup() {
    let (s, mut vm, dir) = warmed_disk_session("bitflip");
    let path = checkpoint_file(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let mut events = Vec::new();
    let r = s
        .migrate_with_faults(
            &mut vm,
            HostId::new(0),
            SimTime::EPOCH + SimDuration::from_hours(1),
            &mut SilentWorkload,
            &FaultPlan::none(),
            0,
            &mut events,
        )
        .unwrap();
    assert_eq!(r.strategy().to_string(), "dedup");
    assert!(matches!(
        r.outcome(),
        MigrationOutcome::FellBackToFull { .. }
    ));
    assert!(matches!(
        events[0],
        SessionEvent::CorruptCheckpointDiscarded { .. }
    ));
    assert_eq!(vm.location(), HostId::new(0), "the migration still lands");
    assert!(!path.exists(), "the corrupt file is cleared");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_disk_checkpoint_degrades_to_dedup() {
    let (s, mut vm, dir) = warmed_disk_session("truncate");
    let path = checkpoint_file(&dir);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();

    let mut events = Vec::new();
    let r = s
        .migrate_with_faults(
            &mut vm,
            HostId::new(0),
            SimTime::EPOCH + SimDuration::from_hours(1),
            &mut SilentWorkload,
            &FaultPlan::none(),
            0,
            &mut events,
        )
        .unwrap();
    assert_eq!(r.strategy().to_string(), "dedup");
    assert!(matches!(
        r.outcome(),
        MigrationOutcome::FellBackToFull { .. }
    ));
    assert_eq!(vm.location(), HostId::new(0));
    assert!(!path.exists());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn intact_disk_checkpoint_still_recycles_after_memory_loss() {
    // Control for the corruption tests: same eviction, no tampering.
    let (s, mut vm, dir) = warmed_disk_session("intact");
    let r = s
        .migrate(
            &mut vm,
            HostId::new(0),
            SimTime::EPOCH + SimDuration::from_hours(1),
            &mut SilentWorkload,
        )
        .unwrap();
    assert_eq!(r.strategy().to_string(), "vecycle+dedup");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resumed_retry_resends_less_than_from_scratch() {
    let drop_fault = FaultKind::LinkDrop {
        after: DropPoint::RamFraction(0.5),
        attempts: 1,
    };
    let run = |retry: RetryPolicy| {
        let s = VeCycleSession::new(Cluster::homogeneous(2, LinkSpec::lan_gigabit()))
            .with_retry_policy(retry);
        let mut vm = instance();
        let plan = FaultPlan::none().inject(0, drop_fault);
        let mut events = Vec::new();
        let report = s
            .migrate_with_faults(
                &mut vm,
                HostId::new(1),
                SimTime::EPOCH,
                &mut SilentWorkload,
                &plan,
                0,
                &mut events,
            )
            .unwrap();
        (report, events)
    };
    let (resumed, resumed_events) = run(RetryPolicy::default());
    let (scratch, scratch_events) = run(RetryPolicy::from_scratch());
    assert_eq!(
        resumed.outcome(),
        MigrationOutcome::CompletedAfterRetries { attempts: 2 }
    );
    assert_eq!(
        scratch.outcome(),
        MigrationOutcome::CompletedAfterRetries { attempts: 2 }
    );
    assert!(
        resumed_events
            .iter()
            .any(|e| matches!(e, SessionEvent::ResumedFromPartial { .. })),
        "{resumed_events:?}"
    );
    assert!(
        !scratch_events
            .iter()
            .any(|e| matches!(e, SessionEvent::ResumedFromPartial { .. })),
        "{scratch_events:?}"
    );
    assert!(
        resumed.source_traffic() < scratch.source_traffic(),
        "resumed {} vs scratch {}",
        resumed.source_traffic(),
        scratch.source_traffic()
    );
    // Waste (the aborted attempt) is identical; only the retry differs.
    assert_eq!(resumed.wasted_traffic(), scratch.wasted_traffic());
}

#[test]
fn heavily_faulted_schedule_finishes_with_outcomes_not_errors() {
    for policy in [
        RecyclePolicy::VeCycle,
        RecyclePolicy::DedupOnly,
        RecyclePolicy::Baseline,
        RecyclePolicy::Adaptive {
            min_similarity: 0.3,
        },
    ] {
        let s = VeCycleSession::new(Cluster::homogeneous(2, LinkSpec::lan_gigabit()))
            .with_policy(policy)
            .with_retry_policy(RetryPolicy::default().with_max_attempts(2));
        let mut vm = instance();
        let schedule = MigrationSchedule::ping_pong(
            vm.id(),
            HostId::new(0),
            HostId::new(1),
            SimTime::EPOCH + SimDuration::from_hours(1),
            SimDuration::from_hours(1),
            10,
        );
        let rate = 1024.0 * 0.05 / 3600.0;
        let mut workload = IdleWorkload::new(11, rate);
        let plan = FaultPlan::seeded(42, &FaultRates::uniform(0.6), schedule.len());
        assert!(!plan.is_empty());
        let FaultedScheduleRun { reports, events } = s
            .run_schedule_with_faults(&mut vm, &schedule, &mut workload, &plan)
            .unwrap();
        assert!(!reports.is_empty());
        let summary = ScheduleSummary::of(&reports);
        assert_eq!(summary.migrations, reports.len());
        // Every incident and outcome renders; nothing panicked to get here.
        for e in &events {
            assert!(!e.to_string().is_empty());
        }
        for r in &reports {
            assert!(!r.outcome().to_string().is_empty());
        }
    }
}

#[test]
fn faulted_runs_are_deterministic_across_repeats() {
    let run = || {
        let s = VeCycleSession::new(Cluster::homogeneous(2, LinkSpec::lan_gigabit()))
            .with_retry_policy(RetryPolicy::default().with_max_attempts(3));
        let mut vm = instance();
        let schedule = MigrationSchedule::ping_pong(
            vm.id(),
            HostId::new(0),
            HostId::new(1),
            SimTime::EPOCH + SimDuration::from_hours(1),
            SimDuration::from_hours(1),
            8,
        );
        let mut workload = IdleWorkload::new(5, 1024.0 * 0.1 / 3600.0);
        let plan = FaultPlan::seeded(9, &FaultRates::uniform(0.5), schedule.len());
        s.run_schedule_with_faults(&mut vm, &schedule, &mut workload, &plan)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.reports, b.reports);
    assert_eq!(a.events, b.events);
}

#[test]
fn faulted_schedules_are_thread_count_invariant() {
    let run = |threads: usize| {
        let cluster = Cluster::homogeneous(2, LinkSpec::lan_gigabit());
        let engine = MigrationEngine::new(cluster.link()).with_threads(threads);
        let s = VeCycleSession::new(cluster)
            .with_engine(engine)
            .with_retry_policy(RetryPolicy::default().with_max_attempts(3));
        let mut vm = instance();
        let schedule = MigrationSchedule::ping_pong(
            vm.id(),
            HostId::new(0),
            HostId::new(1),
            SimTime::EPOCH + SimDuration::from_hours(1),
            SimDuration::from_hours(1),
            8,
        );
        let mut workload = IdleWorkload::new(13, 1024.0 * 0.1 / 3600.0);
        let plan = FaultPlan::seeded(21, &FaultRates::uniform(0.5), schedule.len());
        s.run_schedule_with_faults(&mut vm, &schedule, &mut workload, &plan)
            .unwrap()
    };
    let seq = run(1);
    for threads in [2usize, 4, 8] {
        let par = run(threads);
        assert_eq!(par.reports, seq.reports, "threads {threads}");
        assert_eq!(par.events, seq.events, "threads {threads}");
    }
}
