//! Golden-transcript suite: every metrics snapshot a fixed-seed
//! scenario produces is locked down byte-for-byte against the JSON
//! files under `tests/golden/`.
//!
//! A failure here means an instrumentation site moved, a metric was
//! renamed, or determinism broke. If the change is intentional, run
//! `cargo run --bin regen_golden` and commit the updated files; if not,
//! the diff artifact under `target/golden-actual/` shows exactly which
//! series drifted. The suite honors `VECYCLE_THREADS`, and the stored
//! bytes must match at *any* thread count — that is the determinism
//! contract, not a test convenience.

use std::collections::BTreeMap;

use vecycle::golden;
use vecycle::obs::MetricsSnapshot;

/// Compares a scenario's snapshot against its committed golden file;
/// on drift, writes the actual bytes where CI can pick them up.
fn assert_golden(name: &str, expected: &str, snap: &MetricsSnapshot) {
    let actual = snap.to_canonical_json();
    if actual != expected {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("target")
            .join("golden-actual");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("{name}.json"));
        let _ = std::fs::write(&path, &actual);
        let first_diff = expected
            .lines()
            .zip(actual.lines())
            .enumerate()
            .find(|(_, (e, a))| e != a)
            .map(|(i, (e, a))| format!("first diff at line {}:\n  -{e}\n  +{a}", i + 1))
            .unwrap_or_else(|| "files differ in length only".to_string());
        panic!(
            "{name} metrics transcript drifted from tests/golden/{name}.json \
             ({} threads).\n{first_diff}\nactual written to {}.\n\
             If the change is intentional: cargo run --bin regen_golden",
            golden::scan_threads(),
            path.display(),
        );
    }
}

#[test]
fn idle_vm_matches_golden() {
    let snap = golden::idle_vm(golden::scan_threads());
    assert_golden("idle_vm", include_str!("golden/idle_vm.json"), &snap);
}

#[test]
fn update_rate_sweep_matches_golden() {
    let snap = golden::update_rate_sweep(golden::scan_threads());
    assert_golden(
        "update_rate_sweep",
        include_str!("golden/update_rate_sweep.json"),
        &snap,
    );
}

#[test]
fn failure_sweep_matches_golden() {
    let snap = golden::failure_sweep(golden::scan_threads());
    assert_golden(
        "failure_sweep",
        include_str!("golden/failure_sweep.json"),
        &snap,
    );
}

#[test]
fn lifecycle_matches_golden() {
    let snap = golden::lifecycle(golden::scan_threads());
    assert_golden("lifecycle", include_str!("golden/lifecycle.json"), &snap);
}

/// The prose incident transcript and the typed counters are two views
/// of the same history: per event kind, the number of `SessionEvent`s
/// returned to the caller equals the `session_events_total` series —
/// in both directions, so neither view can drop or invent incidents.
#[test]
fn session_events_reconcile_with_counters() {
    let (snap, events) = golden::failure_sweep_with_events(golden::scan_threads());
    assert!(!events.is_empty(), "failure sweep produced no incidents");

    let mut by_kind: BTreeMap<&str, u64> = BTreeMap::new();
    for e in &events {
        *by_kind.entry(e.kind()).or_insert(0) += 1;
    }
    for (kind, &count) in &by_kind {
        assert_eq!(
            snap.counter("session_events_total", &[("event", kind)]),
            count,
            "counter for {kind} disagrees with the event transcript"
        );
    }
    for c in snap.counters_named("session_events_total") {
        let kind = &c.labels[0].1;
        assert_eq!(
            by_kind.get(kind.as_str()).copied().unwrap_or(0),
            c.value,
            "counter series {kind} has no matching transcript events"
        );
    }

    // Retry bookkeeping is *derived from* the metrics layer, so the
    // dedicated retry counter must agree with the event stream too.
    assert_eq!(
        snap.counter_total("session_retries_total"),
        by_kind.get("retry_scheduled").copied().unwrap_or(0),
    );
}

/// `CompletedAfterRetries { attempts }` is computed from the
/// `session_attempts_total` counter delta; summed over the schedule it
/// must reconcile with total attempts recorded by the metrics layer.
#[test]
fn retry_attempt_counts_derive_from_metrics() {
    let (snap, _) = golden::failure_sweep_with_events(golden::scan_threads());
    let attempts = snap.counter_total("session_attempts_total");
    let retries = snap.counter_total("session_retries_total");
    let outcomes = snap.counter_total("session_outcomes_total");
    assert!(attempts > outcomes, "the sweep must retry at least once");
    // Every attempt is either a migration's first try (one per outcome)
    // or was scheduled by the retry path.
    assert_eq!(attempts, outcomes + retries);
}
