//! Parallel page-scan determinism: the thread count is a pure
//! performance knob, never an observable one. Any divergence between the
//! sequential reference scan and the sharded scan — in per-round counts,
//! traffic ledgers, downtime, or the exact message transcript — fails
//! these properties.

use proptest::collection::vec;
use proptest::prelude::*;

use vecycle::core::{LiveOutcome, MigrationEngine, Strategy};
use vecycle::faults::{AttemptFaults, DropPoint};
use vecycle::mem::workload::{IdleWorkload, SilentWorkload};
use vecycle::mem::{DigestMemory, Guest, MemoryImage, MutableMemory, PageContent};
use vecycle::net::LinkSpec;
use vecycle::obs::{MetricsRegistry, MetricsSnapshot};
use vecycle::types::{PageCount, PageIndex};

/// Builds a digest-level image holding the given content ids (id 0 is
/// the zero page).
fn image(ids: &[u64]) -> DigestMemory {
    let mut m = DigestMemory::zeroed(PageCount::new(ids.len() as u64));
    for (i, &id) in ids.iter().enumerate() {
        m.write_page(PageIndex::new(i as u64), PageContent::ContentId(id));
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reports and transcripts are bit-identical for 1/2/4/8 scan
    /// threads across the strategy families. Content ids are drawn from
    /// a small range so the images are dense with duplicates and zero
    /// pages — the cases where dedup resolution order could diverge.
    #[test]
    fn scan_is_deterministic_across_thread_counts(
        vm_ids in vec(0u64..24, 1..200),
        cp_ids in vec(0u64..24, 1..200),
        use_index in any::<bool>(),
        use_dedup in any::<bool>(),
        suppress_zeros in any::<bool>(),
    ) {
        let vm = image(&vm_ids);
        let cp = image(&cp_ids);
        let base = if use_index {
            Strategy::vecycle(&cp)
        } else {
            Strategy::full()
        };
        let strategy = if use_dedup { base.with_dedup() } else { base };
        let engine = |threads: usize| {
            MigrationEngine::new(LinkSpec::lan_gigabit())
                .with_zero_page_suppression(suppress_zeros)
                .with_threads(threads)
        };
        let (seq_report, seq_transcript) = engine(1)
            .migrate_with_transcript(&vm, strategy.clone())
            .unwrap();
        for threads in [2usize, 4, 8] {
            let (par_report, par_transcript) = engine(threads)
                .migrate_with_transcript(&vm, strategy.clone())
                .unwrap();
            prop_assert_eq!(&par_report, &seq_report, "threads {}", threads);
            prop_assert_eq!(&par_transcript, &seq_transcript, "threads {}", threads);
        }
    }

    /// Gang migrations share one dedup cache across VMs; the sharded
    /// scan must produce the same cross-VM back-references in the same
    /// places for every thread count.
    #[test]
    fn gang_scan_is_deterministic_across_thread_counts(
        a_ids in vec(0u64..16, 1..120),
        b_ids in vec(0u64..16, 1..120),
    ) {
        let a = image(&a_ids);
        let b = image(&b_ids);
        let strategies = [Strategy::dedup(), Strategy::dedup()];
        let seq = MigrationEngine::new(LinkSpec::lan_gigabit())
            .migrate_gang(&[&a, &b], &strategies)
            .unwrap();
        for threads in [2usize, 4, 8] {
            let par = MigrationEngine::new(LinkSpec::lan_gigabit())
                .with_threads(threads)
                .migrate_gang(&[&a, &b], &strategies)
                .unwrap();
            prop_assert_eq!(&par, &seq, "threads {}", threads);
        }
    }

    /// A migration attempt running under an injected link cut is just as
    /// deterministic as a clean one: completed reports, abort causes,
    /// wasted traffic/time and the per-page landed digests are all
    /// bit-identical for every thread count. Additionally, every landed
    /// digest must equal the guest's actual page content — the resumed
    /// retry recycles exactly what a fault-free transfer would have sent.
    #[test]
    fn faulted_migration_is_deterministic_across_thread_counts(
        vm_ids in vec(0u64..24, 1..200),
        cp_ids in vec(0u64..24, 1..200),
        cut_frac in 0.0f64..0.9,
        use_index in any::<bool>(),
    ) {
        let cp = image(&cp_ids);
        let strategy = if use_index {
            Strategy::vecycle(&cp).with_dedup()
        } else {
            Strategy::dedup()
        };
        let faults = AttemptFaults {
            cut_after: Some(DropPoint::RamFraction(cut_frac)),
            ..AttemptFaults::none()
        };
        let run = |threads: usize| {
            let mut guest = Guest::new(image(&vm_ids));
            MigrationEngine::new(LinkSpec::lan_gigabit())
                .with_threads(threads)
                .migrate_live_faulted(
                    &mut guest,
                    &mut SilentWorkload,
                    strategy.clone(),
                    &faults,
                )
                .unwrap()
        };
        let seq = run(1);
        if let LiveOutcome::Aborted(a) = &seq {
            let vm = image(&vm_ids);
            for (i, landed) in a.landed.iter().enumerate() {
                if let Some(d) = landed {
                    prop_assert_eq!(
                        *d,
                        vm.page_digest(PageIndex::new(i as u64)),
                        "landed digest {} diverges from guest content", i
                    );
                }
            }
        }
        for threads in [2usize, 4, 8] {
            let par = run(threads);
            match (&seq, &par) {
                (LiveOutcome::Completed(a), LiveOutcome::Completed(b)) => {
                    prop_assert_eq!(a, b, "threads {}", threads);
                }
                (LiveOutcome::Aborted(a), LiveOutcome::Aborted(b)) => {
                    prop_assert_eq!(a.cause, b.cause, "threads {}", threads);
                    prop_assert_eq!(&a.landed, &b.landed, "threads {}", threads);
                    prop_assert_eq!(a.traffic, b.traffic, "threads {}", threads);
                    prop_assert_eq!(a.elapsed, b.elapsed, "threads {}", threads);
                }
                _ => prop_assert!(false, "outcome kind diverged at threads {}", threads),
            }
        }
    }

    /// The *clean-is-faulted* pipeline invariant: [`MigrationEngine::
    /// migrate_live`] is exactly `migrate_live_faulted` with an empty
    /// fault plan. Both entry points must produce an identical report
    /// *and* an identical canonical metrics snapshot — same counters,
    /// same spans, same outcome tags — across strategies, workload
    /// seeds, and every thread count. Any fork between the two paths
    /// (a clean-only shortcut, a faulted-only counter) fails here.
    #[test]
    fn clean_path_equals_faulted_path_with_empty_plan(
        vm_ids in vec(0u64..24, 1..200),
        cp_ids in vec(0u64..24, 1..200),
        seed in any::<u64>(),
        rate in 1.0f64..4000.0,
        use_index in any::<bool>(),
        use_dedup in any::<bool>(),
    ) {
        let cp = image(&cp_ids);
        let base = if use_index {
            Strategy::vecycle(&cp)
        } else {
            Strategy::full()
        };
        let strategy = if use_dedup { base.with_dedup() } else { base };
        for threads in [1usize, 2, 4, 8] {
            let run = |faulted: bool| {
                let metrics = MetricsRegistry::new();
                let mut guest = Guest::new(image(&vm_ids));
                let mut workload = IdleWorkload::new(seed, rate);
                let engine = MigrationEngine::new(LinkSpec::lan_gigabit())
                    .with_threads(threads)
                    .with_metrics(metrics.clone());
                let report = if faulted {
                    match engine
                        .migrate_live_faulted(
                            &mut guest,
                            &mut workload,
                            strategy.clone(),
                            &AttemptFaults::none(),
                        )
                        .unwrap()
                    {
                        LiveOutcome::Completed(report) => report,
                        LiveOutcome::Aborted(_) => unreachable!("no faults injected"),
                    }
                } else {
                    engine
                        .migrate_live(&mut guest, &mut workload, strategy.clone())
                        .unwrap()
                };
                (report, metrics.snapshot().to_canonical_json())
            };
            let (clean_report, clean_snap) = run(false);
            let (faulted_report, faulted_snap) = run(true);
            prop_assert_eq!(&clean_report, &faulted_report, "threads {}", threads);
            prop_assert_eq!(&clean_snap, &faulted_snap, "threads {}", threads);
        }
    }

    /// Attaching a metrics registry adds a sharded counter path to the
    /// parallel scan; the resulting snapshot — counters, histograms and
    /// the span timeline, serialized canonically — must still be
    /// byte-identical for every thread count.
    #[test]
    fn metrics_snapshot_is_identical_across_thread_counts(
        vm_ids in vec(0u64..24, 1..200),
        cp_ids in vec(0u64..24, 1..200),
        use_index in any::<bool>(),
        use_dedup in any::<bool>(),
    ) {
        let vm = image(&vm_ids);
        let cp = image(&cp_ids);
        let base = if use_index {
            Strategy::vecycle(&cp)
        } else {
            Strategy::full()
        };
        let strategy = if use_dedup { base.with_dedup() } else { base };
        let snap = |threads: usize| {
            let metrics = MetricsRegistry::new();
            MigrationEngine::new(LinkSpec::lan_gigabit())
                .with_threads(threads)
                .with_metrics(metrics.clone())
                .migrate(&vm, strategy.clone())
                .unwrap();
            metrics.snapshot().to_canonical_json()
        };
        let seq = snap(1);
        for threads in [2usize, 4, 8] {
            prop_assert_eq!(snap(threads), seq.clone(), "threads {}", threads);
        }
    }

    /// Same property under an injected link cut: the abort path ends
    /// spans early and records the wreck, and all of it must still be
    /// thread-count invariant.
    #[test]
    fn faulted_metrics_snapshot_is_identical_across_thread_counts(
        vm_ids in vec(0u64..24, 1..200),
        cp_ids in vec(0u64..24, 1..200),
        cut_frac in 0.0f64..0.9,
    ) {
        let cp = image(&cp_ids);
        let strategy = Strategy::vecycle(&cp).with_dedup();
        let faults = AttemptFaults {
            cut_after: Some(DropPoint::RamFraction(cut_frac)),
            ..AttemptFaults::none()
        };
        let snap = |threads: usize| {
            let metrics = MetricsRegistry::new();
            let mut guest = Guest::new(image(&vm_ids));
            MigrationEngine::new(LinkSpec::lan_gigabit())
                .with_threads(threads)
                .with_metrics(metrics.clone())
                .migrate_live_faulted(
                    &mut guest,
                    &mut SilentWorkload,
                    strategy.clone(),
                    &faults,
                )
                .unwrap();
            metrics.snapshot().to_canonical_json()
        };
        let seq = snap(1);
        for threads in [2usize, 4, 8] {
            prop_assert_eq!(snap(threads), seq.clone(), "threads {}", threads);
        }
    }
}

/// The golden scenarios — including the faulted failure sweep and the
/// disk-pressure lifecycle run — produce byte-identical snapshots when
/// re-run with the same seed and when scanned with 2, 4 or 8 threads
/// instead of 1.
#[test]
fn golden_scenarios_are_thread_invariant_and_repeatable() {
    type Scenario = fn(usize) -> MetricsSnapshot;
    let scenarios: [(&str, Scenario); 4] = [
        ("idle_vm", vecycle::golden::idle_vm),
        ("update_rate_sweep", vecycle::golden::update_rate_sweep),
        ("failure_sweep", vecycle::golden::failure_sweep),
        ("lifecycle", vecycle::golden::lifecycle),
    ];
    for (name, run) in scenarios {
        let base = run(1).to_canonical_json();
        assert_eq!(
            run(1).to_canonical_json(),
            base,
            "{name}: same-seed rerun diverged"
        );
        for threads in [2usize, 4, 8] {
            assert_eq!(
                run(threads).to_canonical_json(),
                base,
                "{name}: snapshot diverged at {threads} threads"
            );
        }
    }
}

/// Checkpoint-lifecycle determinism: with a byte quota squeezing every
/// host's store, the eviction order — read off the incident transcript —
/// and the full metrics snapshot are identical across 1/2/4/8 scan
/// threads for every eviction policy. The choice of victim must depend
/// only on catalog state, never on scan scheduling.
#[test]
fn eviction_order_is_deterministic_across_thread_counts() {
    use vecycle::checkpoint::{Checkpoint, EvictionPolicy};
    use vecycle::core::session::{VeCycleSession, VmInstance};
    use vecycle::faults::FaultPlan;
    use vecycle::host::{Cluster, MigrationSchedule};
    use vecycle::types::{Bytes, HostId, SimDuration, SimTime, VmId};

    for policy in [
        EvictionPolicy::OldestFirst,
        EvictionPolicy::LruByRecycle,
        EvictionPolicy::LargestFirst,
        EvictionPolicy::StalenessScore,
    ] {
        let run = |threads: usize| {
            let metrics = MetricsRegistry::new();
            // A 4 MiB digest VM checkpoints into 16 KiB; the 40 KiB
            // quota holds two and a half, so fillers + the VM's own
            // checkpoint force evictions on every departure.
            let cluster = Cluster::homogeneous(2, LinkSpec::lan_gigabit())
                .with_checkpoint_quotas(Bytes::from_kib(40), policy);
            let engine = MigrationEngine::new(cluster.link()).with_threads(threads);
            let session = VeCycleSession::new(cluster)
                .with_engine(engine)
                .with_metrics(metrics.clone());
            for host in session.cluster().hosts() {
                for i in 0..2u32 {
                    let ram = Bytes::from_mib(4 * u64::from(i + 1));
                    let mem = DigestMemory::with_uniform_content(ram, 0x900 + u64::from(i))
                        .expect("page-aligned filler");
                    let cp = Checkpoint::capture(
                        VmId::new(50 + i),
                        SimTime::EPOCH + SimDuration::from_secs(u64::from(i)),
                        &mem,
                    );
                    host.save_checkpoint(cp).expect("filler save");
                }
            }
            let mem = DigestMemory::with_uniform_content(Bytes::from_mib(4), 0x7ec)
                .expect("page-aligned VM");
            let mut vm = VmInstance::new(VmId::new(0), Guest::new(mem), HostId::new(0));
            let schedule = MigrationSchedule::ping_pong(
                VmId::new(0),
                HostId::new(0),
                HostId::new(1),
                SimTime::EPOCH + SimDuration::from_hours(1),
                SimDuration::from_hours(1),
                6,
            );
            let mut workload = IdleWorkload::new(1, 1024.0 * 0.02 / 3600.0);
            let run = session
                .run_schedule_with_faults(&mut vm, &schedule, &mut workload, &FaultPlan::none())
                .expect("clean schedule");
            let transcript: Vec<String> = run.events.iter().map(|e| e.to_string()).collect();
            (transcript, metrics.snapshot().to_canonical_json())
        };
        let base = run(1);
        assert!(
            base.0.iter().any(|e| e.contains("evicted")),
            "{policy}: the squeeze must actually evict"
        );
        assert_eq!(run(1), base, "{policy}: same-seed rerun diverged");
        for threads in [2usize, 4, 8] {
            assert_eq!(
                run(threads),
                base,
                "{policy}: eviction order or metrics diverged at {threads} threads"
            );
        }
    }
}
