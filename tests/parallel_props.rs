//! Parallel page-scan determinism: the thread count is a pure
//! performance knob, never an observable one. Any divergence between the
//! sequential reference scan and the sharded scan — in per-round counts,
//! traffic ledgers, downtime, or the exact message transcript — fails
//! these properties.

use proptest::collection::vec;
use proptest::prelude::*;

use vecycle::core::{MigrationEngine, Strategy};
use vecycle::mem::{DigestMemory, MutableMemory, PageContent};
use vecycle::net::LinkSpec;
use vecycle::types::{PageCount, PageIndex};

/// Builds a digest-level image holding the given content ids (id 0 is
/// the zero page).
fn image(ids: &[u64]) -> DigestMemory {
    let mut m = DigestMemory::zeroed(PageCount::new(ids.len() as u64));
    for (i, &id) in ids.iter().enumerate() {
        m.write_page(PageIndex::new(i as u64), PageContent::ContentId(id));
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reports and transcripts are bit-identical for 1/2/4/8 scan
    /// threads across the strategy families. Content ids are drawn from
    /// a small range so the images are dense with duplicates and zero
    /// pages — the cases where dedup resolution order could diverge.
    #[test]
    fn scan_is_deterministic_across_thread_counts(
        vm_ids in vec(0u64..24, 1..200),
        cp_ids in vec(0u64..24, 1..200),
        use_index in any::<bool>(),
        use_dedup in any::<bool>(),
        suppress_zeros in any::<bool>(),
    ) {
        let vm = image(&vm_ids);
        let cp = image(&cp_ids);
        let base = if use_index {
            Strategy::vecycle(&cp)
        } else {
            Strategy::full()
        };
        let strategy = if use_dedup { base.with_dedup() } else { base };
        let engine = |threads: usize| {
            MigrationEngine::new(LinkSpec::lan_gigabit())
                .with_zero_page_suppression(suppress_zeros)
                .with_threads(threads)
        };
        let (seq_report, seq_transcript) = engine(1)
            .migrate_with_transcript(&vm, strategy.clone())
            .unwrap();
        for threads in [2usize, 4, 8] {
            let (par_report, par_transcript) = engine(threads)
                .migrate_with_transcript(&vm, strategy.clone())
                .unwrap();
            prop_assert_eq!(&par_report, &seq_report, "threads {}", threads);
            prop_assert_eq!(&par_transcript, &seq_transcript, "threads {}", threads);
        }
    }

    /// Gang migrations share one dedup cache across VMs; the sharded
    /// scan must produce the same cross-VM back-references in the same
    /// places for every thread count.
    #[test]
    fn gang_scan_is_deterministic_across_thread_counts(
        a_ids in vec(0u64..16, 1..120),
        b_ids in vec(0u64..16, 1..120),
    ) {
        let a = image(&a_ids);
        let b = image(&b_ids);
        let strategies = [Strategy::dedup(), Strategy::dedup()];
        let seq = MigrationEngine::new(LinkSpec::lan_gigabit())
            .migrate_gang(&[&a, &b], &strategies)
            .unwrap();
        for threads in [2usize, 4, 8] {
            let par = MigrationEngine::new(LinkSpec::lan_gigabit())
                .with_threads(threads)
                .migrate_gang(&[&a, &b], &strategies)
                .unwrap();
            prop_assert_eq!(&par, &seq, "threads {}", threads);
        }
    }
}
