//! Wire-accounting invariants: the engine's incremental
//! `engine_wire_*` counters, the net layer's ledger-derived
//! `net_wire_*` counters and the per-report traffic ledgers are three
//! independent accountings of the same bytes. On a clean run all three
//! must agree exactly, per direction and message kind, for every
//! strategy family; under faults the engine side may exceed the net
//! side by exactly the traffic wasted on aborted attempts.

use std::collections::BTreeMap;

use vecycle::checkpoint::Checkpoint;
use vecycle::core::{MigrationEngine, Strategy};
use vecycle::mem::workload::{GuestWorkload, IdleWorkload};
use vecycle::mem::{ByteMemory, Guest};
use vecycle::net::LinkSpec;
use vecycle::obs::{MetricsRegistry, MetricsSnapshot};
use vecycle::types::{PageCount, SimDuration, SimTime, VmId};

/// Folds one counter family into a `labels -> value` map so two
/// families can be compared series-by-series.
fn family(snap: &MetricsSnapshot, name: &str) -> BTreeMap<Vec<(String, String)>, u64> {
    snap.counters_named(name)
        .map(|c| (c.labels.clone(), c.value))
        .collect()
}

/// Sums one counter family filtered to a single direction label.
fn direction_total(snap: &MetricsSnapshot, name: &str, direction: &str) -> u64 {
    snap.counters_named(name)
        .filter(|c| {
            c.labels
                .iter()
                .any(|(k, v)| k == "direction" && v == direction)
        })
        .map(|c| c.value)
        .sum()
}

/// An aged guest plus the checkpoint its destination still holds.
fn aged_guest(pages: u64, seed: u64) -> (Guest<ByteMemory>, Checkpoint) {
    let mut guest = Guest::new(ByteMemory::with_distinct_content(
        PageCount::new(pages),
        seed,
    ));
    let cp = Checkpoint::capture_bytes(VmId::new(0), SimTime::EPOCH, guest.memory());
    let mut daemons = IdleWorkload::new(seed ^ 1, 0.05);
    daemons.advance(&mut guest, SimDuration::from_mins(30));
    (guest, cp)
}

#[test]
fn wire_counters_reconcile_for_every_strategy() {
    let (guest, cp) = aged_guest(384, 41);
    let gen_snapshot = {
        // A snapshot taken before the daemon writes, so dirty tracking
        // has both reusable and changed pages.
        let fresh = Guest::new(ByteMemory::with_distinct_content(PageCount::new(384), 41));
        fresh.generations().snapshot()
    };
    let strategies: Vec<(&str, Strategy)> = vec![
        ("full", Strategy::full()),
        ("dedup", Strategy::dedup()),
        (
            "dirty",
            Strategy::miyakodori(guest.generations(), &gen_snapshot),
        ),
        ("vecycle", Strategy::vecycle_from_checkpoint(&cp)),
        (
            "vecycle+dedup",
            Strategy::vecycle_from_checkpoint(&cp).with_dedup(),
        ),
    ];

    for (name, strategy) in strategies {
        let metrics = MetricsRegistry::new();
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit()).with_metrics(metrics.clone());
        let report = engine.migrate(guest.memory(), strategy).unwrap();
        let snap = metrics.snapshot();

        // Engine-side and net-side accountings agree series-by-series:
        // same (direction, kind) label sets, same bytes, same messages.
        assert_eq!(
            family(&snap, "engine_wire_bytes_total"),
            family(&snap, "net_wire_bytes_total"),
            "{name}: byte accounting diverged between engine and net"
        );
        assert_eq!(
            family(&snap, "engine_wire_messages_total"),
            family(&snap, "net_wire_messages_total"),
            "{name}: message accounting diverged between engine and net"
        );

        // Both reconcile with the report's ledgers per direction.
        assert_eq!(
            direction_total(&snap, "engine_wire_bytes_total", "forward"),
            report.source_traffic().as_u64(),
            "{name}: forward bytes != report source traffic"
        );
        assert_eq!(
            direction_total(&snap, "engine_wire_bytes_total", "reverse"),
            report.reverse_traffic().as_u64(),
            "{name}: reverse bytes != report reverse traffic"
        );
        assert_eq!(
            snap.counter_total("engine_wire_bytes_total"),
            (report.source_traffic() + report.reverse_traffic()).as_u64(),
            "{name}: total wire bytes != report total"
        );
    }
}

#[test]
fn clean_session_run_keeps_engine_and_net_in_lockstep() {
    let snap = vecycle::golden::idle_vm(1);
    assert_eq!(
        family(&snap, "engine_wire_bytes_total"),
        family(&snap, "net_wire_bytes_total"),
    );
    assert_eq!(
        family(&snap, "engine_wire_messages_total"),
        family(&snap, "net_wire_messages_total"),
    );
    assert!(snap.counter_total("engine_wire_bytes_total") > 0);
}

#[test]
fn faulted_runs_diverge_by_exactly_the_wasted_traffic() {
    let snap = vecycle::golden::failure_sweep(1);
    let engine_bytes = snap.counter_total("engine_wire_bytes_total");
    let net_bytes = snap.counter_total("net_wire_bytes_total");
    assert!(
        engine_bytes >= net_bytes,
        "net counters only see completed migrations, so they can never \
         exceed the engine's incremental accounting"
    );
    let aborted = snap.counter("session_events_total", &[("event", "attempt_aborted")]);
    if aborted > 0 {
        assert!(
            engine_bytes > net_bytes,
            "aborted attempts recorded traffic, so the accountings must differ"
        );
    }
}
