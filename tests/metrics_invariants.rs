//! Wire-accounting invariants: the engine's incremental
//! `engine_wire_*` counters, the net layer's ledger-derived
//! `net_wire_*` counters and the per-report traffic ledgers are three
//! independent accountings of the same bytes. On a clean run all three
//! must agree exactly, per direction and message kind, for every
//! strategy family; under faults the engine side may exceed the net
//! side by exactly the traffic wasted on aborted attempts.

use std::collections::BTreeMap;

use vecycle::checkpoint::Checkpoint;
use vecycle::core::session::{RecyclePolicy, VeCycleSession, VmInstance};
use vecycle::core::{MigrationEngine, Strategy};
use vecycle::faults::FaultPlan;
use vecycle::host::{Cluster, MigrationSchedule};
use vecycle::mem::workload::{GuestWorkload, IdleWorkload};
use vecycle::mem::{ByteMemory, Guest};
use vecycle::net::LinkSpec;
use vecycle::obs::{MetricsRegistry, MetricsSnapshot};
use vecycle::types::{HostId, PageCount, SimDuration, SimTime, VmId};

/// Folds one counter family into a `labels -> value` map so two
/// families can be compared series-by-series.
fn family(snap: &MetricsSnapshot, name: &str) -> BTreeMap<Vec<(String, String)>, u64> {
    snap.counters_named(name)
        .map(|c| (c.labels.clone(), c.value))
        .collect()
}

/// Sums one counter family filtered to a single direction label.
fn direction_total(snap: &MetricsSnapshot, name: &str, direction: &str) -> u64 {
    snap.counters_named(name)
        .filter(|c| {
            c.labels
                .iter()
                .any(|(k, v)| k == "direction" && v == direction)
        })
        .map(|c| c.value)
        .sum()
}

/// An aged guest plus the checkpoint its destination still holds.
fn aged_guest(pages: u64, seed: u64) -> (Guest<ByteMemory>, Checkpoint) {
    let mut guest = Guest::new(ByteMemory::with_distinct_content(
        PageCount::new(pages),
        seed,
    ));
    let cp = Checkpoint::capture_bytes(VmId::new(0), SimTime::EPOCH, guest.memory());
    let mut daemons = IdleWorkload::new(seed ^ 1, 0.05);
    daemons.advance(&mut guest, SimDuration::from_mins(30));
    (guest, cp)
}

#[test]
fn wire_counters_reconcile_for_every_strategy() {
    let (guest, cp) = aged_guest(384, 41);
    let gen_snapshot = {
        // A snapshot taken before the daemon writes, so dirty tracking
        // has both reusable and changed pages.
        let fresh = Guest::new(ByteMemory::with_distinct_content(PageCount::new(384), 41));
        fresh.generations().snapshot()
    };
    let strategies: Vec<(&str, Strategy)> = vec![
        ("full", Strategy::full()),
        ("dedup", Strategy::dedup()),
        (
            "dirty",
            Strategy::miyakodori(guest.generations(), &gen_snapshot),
        ),
        ("vecycle", Strategy::vecycle_from_checkpoint(&cp)),
        (
            "vecycle+dedup",
            Strategy::vecycle_from_checkpoint(&cp).with_dedup(),
        ),
    ];

    for (name, strategy) in strategies {
        let metrics = MetricsRegistry::new();
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit()).with_metrics(metrics.clone());
        let report = engine.migrate(guest.memory(), strategy).unwrap();
        let snap = metrics.snapshot();

        // Engine-side and net-side accountings agree series-by-series:
        // same (direction, kind) label sets, same bytes, same messages.
        assert_eq!(
            family(&snap, "engine_wire_bytes_total"),
            family(&snap, "net_wire_bytes_total"),
            "{name}: byte accounting diverged between engine and net"
        );
        assert_eq!(
            family(&snap, "engine_wire_messages_total"),
            family(&snap, "net_wire_messages_total"),
            "{name}: message accounting diverged between engine and net"
        );

        // Both reconcile with the report's ledgers per direction.
        assert_eq!(
            direction_total(&snap, "engine_wire_bytes_total", "forward"),
            report.source_traffic().as_u64(),
            "{name}: forward bytes != report source traffic"
        );
        assert_eq!(
            direction_total(&snap, "engine_wire_bytes_total", "reverse"),
            report.reverse_traffic().as_u64(),
            "{name}: reverse bytes != report reverse traffic"
        );
        assert_eq!(
            snap.counter_total("engine_wire_bytes_total"),
            (report.source_traffic() + report.reverse_traffic()).as_u64(),
            "{name}: total wire bytes != report total"
        );
    }
}

#[test]
fn clean_session_run_keeps_engine_and_net_in_lockstep() {
    let snap = vecycle::golden::idle_vm(1);
    assert_eq!(
        family(&snap, "engine_wire_bytes_total"),
        family(&snap, "net_wire_bytes_total"),
    );
    assert_eq!(
        family(&snap, "engine_wire_messages_total"),
        family(&snap, "net_wire_messages_total"),
    );
    assert!(snap.counter_total("engine_wire_bytes_total") > 0);
}

/// Session-level *clean-is-faulted* symmetry: `run_schedule` is exactly
/// `run_schedule_with_faults` with an empty [`FaultPlan`]. Both must
/// leave byte-identical snapshots — the same `session_events_total` and
/// `session_outcomes_total` series included, so the fault-capable path
/// cannot tag events or outcomes differently when no fault ever fires.
#[test]
fn clean_and_null_plan_session_runs_are_indistinguishable() {
    let run = |plan: Option<&FaultPlan>| {
        let metrics = MetricsRegistry::new();
        let cluster = Cluster::homogeneous(2, LinkSpec::lan_gigabit());
        let engine = MigrationEngine::new(cluster.link()).with_metrics(metrics.clone());
        let session = VeCycleSession::new(cluster)
            .with_engine(engine)
            .with_policy(RecyclePolicy::VeCycle)
            .with_metrics(metrics.clone());
        let mem = ByteMemory::with_distinct_content(PageCount::new(256), 99);
        let mut vm = VmInstance::new(VmId::new(7), Guest::new(mem), HostId::new(0));
        let schedule = MigrationSchedule::ping_pong(
            VmId::new(7),
            HostId::new(0),
            HostId::new(1),
            SimTime::EPOCH + SimDuration::from_hours(1),
            SimDuration::from_hours(1),
            3,
        );
        let mut workload = IdleWorkload::new(17, 0.02);
        match plan {
            Some(plan) => {
                session
                    .run_schedule_with_faults(&mut vm, &schedule, &mut workload, plan)
                    .unwrap();
            }
            None => {
                session
                    .run_schedule(&mut vm, &schedule, &mut workload)
                    .unwrap();
            }
        }
        metrics.snapshot()
    };
    let clean = run(None);
    let faulted = run(Some(&FaultPlan::none()));
    assert_eq!(
        family(&clean, "session_events_total"),
        family(&faulted, "session_events_total"),
        "event tagging forked between the clean and fault-capable paths"
    );
    assert_eq!(
        family(&clean, "session_outcomes_total"),
        family(&faulted, "session_outcomes_total"),
        "outcome tagging forked between the clean and fault-capable paths"
    );
    assert_eq!(
        clean.to_canonical_json(),
        faulted.to_canonical_json(),
        "a null fault plan must be observationally identical to no plan"
    );
    // Events are incident-driven, so a clean run records none — but the
    // outcome series must prove both runs actually migrated.
    assert_eq!(
        clean.counter("session_outcomes_total", &[("outcome", "completed")]),
        3
    );
}

#[test]
fn faulted_runs_diverge_by_exactly_the_wasted_traffic() {
    let snap = vecycle::golden::failure_sweep(1);
    let engine_bytes = snap.counter_total("engine_wire_bytes_total");
    let net_bytes = snap.counter_total("net_wire_bytes_total");
    assert!(
        engine_bytes >= net_bytes,
        "net counters only see completed migrations, so they can never \
         exceed the engine's incremental accounting"
    );
    let aborted = snap.counter("session_events_total", &[("event", "attempt_aborted")]);
    if aborted > 0 {
        assert!(
            engine_bytes > net_bytes,
            "aborted attempts recorded traffic, so the accountings must differ"
        );
    }
}
