//! End-to-end integration: source engine → wire transcript → destination
//! merge, with real bytes and real MD5 throughout.

use vecycle::checkpoint::Checkpoint;
use vecycle::core::{apply_transcript, MigrationEngine, Strategy};
use vecycle::mem::workload::{GuestWorkload, IdleWorkload, RelocationWorkload};
use vecycle::mem::{ByteMemory, Guest, PageContent};
use vecycle::net::LinkSpec;
use vecycle::types::{PageCount, PageIndex, SimDuration, SimTime, VmId};

fn engine() -> MigrationEngine {
    MigrationEngine::new(LinkSpec::lan_gigabit())
}

fn aged_guest(pages: u64, seed: u64) -> (Guest<ByteMemory>, Checkpoint) {
    let mut guest = Guest::new(ByteMemory::with_distinct_content(
        PageCount::new(pages),
        seed,
    ));
    let cp = Checkpoint::capture_bytes(VmId::new(0), SimTime::EPOCH, guest.memory());
    // Rates are per second over a 30-minute window on a small guest:
    // ~90 daemon writes and ~36 relocations across 512 pages.
    let mut daemons = IdleWorkload::new(seed ^ 1, 0.05);
    let mut reloc = RelocationWorkload::new(seed ^ 2, 0.02);
    daemons.advance(&mut guest, SimDuration::from_mins(30));
    reloc.advance(&mut guest, SimDuration::from_mins(30));
    (guest, cp)
}

#[test]
fn vecycle_transcript_rebuilds_memory_byte_for_byte() {
    let (guest, cp) = aged_guest(512, 10);
    let (report, transcript) = engine()
        .migrate_with_transcript(guest.memory(), Strategy::vecycle_from_checkpoint(&cp))
        .unwrap();
    assert!(report.pages_reused().as_u64() > 0, "nothing was reused");
    let rebuilt = apply_transcript(&cp, &transcript).unwrap();
    assert!(rebuilt.content_equals(guest.memory()));
}

#[test]
fn vecycle_dedup_transcript_rebuilds_memory() {
    let (mut guest, cp) = aged_guest(512, 11);
    // Inject duplicates so dedup refs appear in the transcript.
    for i in 0..50u64 {
        guest.write_page(PageIndex::new(400 + i), PageContent::Bytes(b"same content"));
    }
    let (report, transcript) = engine()
        .migrate_with_transcript(
            guest.memory(),
            Strategy::vecycle_from_checkpoint(&cp).with_dedup(),
        )
        .unwrap();
    assert!(report.rounds()[0].dedup_refs.as_u64() >= 49);
    let rebuilt = apply_transcript(&cp, &transcript).unwrap();
    assert!(rebuilt.content_equals(guest.memory()));
}

#[test]
fn full_transcript_rebuilds_even_from_unrelated_checkpoint() {
    let (guest, _) = aged_guest(256, 12);
    // Destination holds a checkpoint of a *different* VM state; a full
    // migration must still reconstruct correctly because it never relies
    // on resident content.
    let unrelated = Checkpoint::capture_bytes(
        VmId::new(9),
        SimTime::EPOCH,
        &ByteMemory::with_distinct_content(PageCount::new(256), 999),
    );
    let (_, transcript) = engine()
        .migrate_with_transcript(guest.memory(), Strategy::full())
        .unwrap();
    let rebuilt = apply_transcript(&unrelated, &transcript).unwrap();
    assert!(rebuilt.content_equals(guest.memory()));
}

#[test]
fn checkpoint_survives_disk_round_trip_and_still_serves_migration() {
    let (guest, cp) = aged_guest(256, 13);
    let dir = std::env::temp_dir().join("vecycle-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("vm0.ckpt");
    let file = std::fs::File::create(&path).unwrap();
    cp.write_to(std::io::BufWriter::new(file)).unwrap();
    let loaded = Checkpoint::read_from(std::fs::File::open(&path).unwrap()).unwrap();
    assert_eq!(loaded, cp);

    let (_, transcript) = engine()
        .migrate_with_transcript(guest.memory(), Strategy::vecycle_from_checkpoint(&loaded))
        .unwrap();
    let rebuilt = apply_transcript(&loaded, &transcript).unwrap();
    assert!(rebuilt.content_equals(guest.memory()));
    std::fs::remove_file(path).unwrap();
}

#[test]
fn truncated_checkpoint_file_fails_loud_not_wrong() {
    let (_, cp) = aged_guest(64, 14);
    let mut bytes = Vec::new();
    cp.write_to(&mut bytes).unwrap();
    bytes.truncate(bytes.len() - 100);
    let err = Checkpoint::read_from(&bytes[..]).unwrap_err();
    assert!(matches!(err, vecycle::types::Error::Corrupt { .. }));
}

#[test]
fn traffic_accounting_is_conserved() {
    let (guest, cp) = aged_guest(512, 15);
    let (report, transcript) = engine()
        .migrate_with_transcript(guest.memory(), Strategy::vecycle_from_checkpoint(&cp))
        .unwrap();
    // Every page appears exactly once in the transcript.
    assert_eq!(transcript.len() as u64, guest.page_count().as_u64());
    // Ledger page counts equal transcript message counts by kind.
    let full = transcript
        .iter()
        .filter(|m| matches!(m, vecycle::core::PageMsg::Full { .. }))
        .count() as u64;
    let checksums = transcript
        .iter()
        .filter(|m| matches!(m, vecycle::core::PageMsg::Checksum { .. }))
        .count() as u64;
    assert_eq!(report.pages_sent_full().as_u64(), full);
    assert_eq!(report.pages_reused().as_u64(), checksums);
    // Bytes: full pages dominate; checksum messages are 28 bytes each.
    let expected_min = full * 4096;
    assert!(report.source_traffic().as_u64() >= expected_min);
    let expected_max = full * 4200 + checksums * 40 + 4096;
    assert!(report.source_traffic().as_u64() <= expected_max);
}

#[test]
fn relocation_heavy_guest_still_rebuilds_and_beats_dirty_tracking() {
    let mut guest = Guest::new(ByteMemory::with_distinct_content(PageCount::new(256), 16));
    let gen_snapshot = guest.generations().snapshot();
    let cp = Checkpoint::capture_bytes(VmId::new(0), SimTime::EPOCH, guest.memory());
    let mut reloc = RelocationWorkload::new(17, 50.0);
    reloc.advance(&mut guest, SimDuration::from_secs(2));

    let eng = engine();
    let dirty = eng
        .migrate(
            guest.memory(),
            Strategy::miyakodori(guest.generations(), &gen_snapshot),
        )
        .unwrap();
    let (hashes, transcript) = eng
        .migrate_with_transcript(guest.memory(), Strategy::vecycle_from_checkpoint(&cp))
        .unwrap();
    assert!(hashes.pages_sent_full() < dirty.pages_sent_full());
    let rebuilt = apply_transcript(&cp, &transcript).unwrap();
    assert!(rebuilt.content_equals(guest.memory()));
}
