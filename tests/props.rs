//! Property-based tests over the core invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use vecycle::checkpoint::{Checkpoint, ChecksumIndex, HashChecksumIndex, PageLookup};
use vecycle::core::{apply_transcript, MigrationEngine, Strategy as MigStrategy};
use vecycle::mem::{ByteMemory, DigestMemory, MemoryImage, MutableMemory, PageContent};
use vecycle::net::LinkSpec;
use vecycle::trace::{Fingerprint, PairStats};
use vecycle::types::{Bytes, PageCount, PageDigest, PageIndex, SimTime, VmId};

fn digests(max_content: u64, len: usize) -> impl Strategy<Value = Vec<PageDigest>> {
    vec(0..max_content, 1..=len)
        .prop_map(|ids| ids.into_iter().map(PageDigest::from_content_id).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Similarity is a fraction and is 1 for identical fingerprints.
    #[test]
    fn similarity_is_a_fraction(a in digests(32, 64), b in digests(32, 64)) {
        let fa = Fingerprint::new(SimTime::EPOCH, a);
        let fb = Fingerprint::new(SimTime::EPOCH, b);
        prop_assert!(fa.similarity(&fb).is_fraction());
        prop_assert!((fa.similarity(&fa).as_f64() - 1.0).abs() < 1e-12);
    }

    /// The Figure 5 method hierarchy holds on every fingerprint pair:
    /// content hashes never transfer more than dirty tracking, and dedup
    /// variants never transfer more than their plain counterparts.
    #[test]
    fn pair_stats_hierarchy(a in digests(24, 48), b in digests(24, 48)) {
        let fa = Fingerprint::new(SimTime::EPOCH, a);
        let fb = Fingerprint::new(SimTime::EPOCH, b);
        let s = PairStats::compute(&fa, &fb);
        prop_assert!(s.hashes_dedup <= s.hashes);
        prop_assert!(s.dirty_dedup <= s.dirty);
        prop_assert!(s.hashes_dedup <= s.dirty_dedup);
        prop_assert!(s.dedup <= s.total);
        prop_assert!(s.hashes <= s.total);
        prop_assert!(s.dirty <= s.total);
        // Equal-length images: in-place-unchanged pages are in Ua, so
        // hashes ≤ dirty.
        if fa.page_count() == fb.page_count() {
            prop_assert!(s.hashes <= s.dirty);
        }
    }

    /// The sorted-array and hash-map checkpoint indexes agree exactly.
    #[test]
    fn indexes_agree(ids in vec(0u64..64, 1..128), probes in vec(0u64..96, 0..64)) {
        let ds: Vec<PageDigest> = ids.iter().map(|&i| PageDigest::from_content_id(i)).collect();
        let sorted = ChecksumIndex::build(ds.clone());
        let hashed = HashChecksumIndex::build(ds);
        prop_assert_eq!(sorted.distinct(), hashed.distinct());
        for p in probes {
            let d = PageDigest::from_content_id(p);
            prop_assert_eq!(sorted.contains(d), hashed.contains(d));
            prop_assert_eq!(sorted.lookup(d), hashed.lookup(d));
        }
    }

    /// A checkpoint survives serialization byte-for-byte.
    #[test]
    fn checkpoint_wire_round_trip(ids in vec(0u64..1000, 1..256)) {
        let mem = DigestMemory::from_digests(
            ids.into_iter().map(PageDigest::from_content_id).collect(),
        );
        let cp = Checkpoint::capture(VmId::new(3), SimTime::EPOCH, &mem);
        let mut buf = Vec::new();
        cp.write_to(&mut buf).unwrap();
        prop_assert_eq!(Checkpoint::read_from(&buf[..]).unwrap(), cp);
    }

    /// Corrupting any single byte of a serialized checkpoint is detected.
    #[test]
    fn checkpoint_bit_flips_detected(ids in vec(0u64..100, 1..64), pos_seed in 0usize..10_000, bit in 0u8..8) {
        let mem = DigestMemory::from_digests(
            ids.into_iter().map(PageDigest::from_content_id).collect(),
        );
        let cp = Checkpoint::capture(VmId::new(0), SimTime::EPOCH, &mem);
        let mut buf = Vec::new();
        cp.write_to(&mut buf).unwrap();
        let pos = pos_seed % buf.len();
        buf[pos] ^= 1 << bit;
        prop_assert!(Checkpoint::read_from(&buf[..]).is_err());
    }

    /// VeCycle never moves more bytes than a full migration, for any
    /// divergence pattern between checkpoint and live state.
    #[test]
    fn vecycle_traffic_never_exceeds_full(
        writes in vec((0u64..128, 0u64..1_000_000), 0..128),
    ) {
        let mut vm = DigestMemory::with_distinct_content(PageCount::new(128), 77);
        let cp = vm.snapshot();
        for (idx, content) in writes {
            vm.write_page(PageIndex::new(idx), PageContent::ContentId(content | (1 << 45)));
        }
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        let full = engine.migrate(&vm, MigStrategy::full()).unwrap();
        let re = engine.migrate(&vm, MigStrategy::vecycle(&cp)).unwrap();
        prop_assert!(re.source_traffic() <= full.source_traffic());
        prop_assert!(re.total_time() <= full.total_time().saturating_add(
            // checksum-rate floor can exceed wire time on tiny images
            vecycle::types::SimDuration::from_secs(1)
        ));
    }

    /// The destination merge reconstructs memory exactly for arbitrary
    /// divergence (writes + relocations) since the checkpoint.
    #[test]
    fn merge_reconstructs_arbitrary_divergence(
        writes in vec((0u64..64, any::<u16>()), 0..48),
        moves in vec((0u64..64, 0u64..64), 0..24),
    ) {
        let mut mem = ByteMemory::with_distinct_content(PageCount::new(64), 5);
        let cp = Checkpoint::capture_bytes(VmId::new(0), SimTime::EPOCH, &mem);
        for (idx, val) in writes {
            let bytes = val.to_le_bytes();
            mem.write_page(PageIndex::new(idx), PageContent::Bytes(&bytes));
        }
        for (src, dst) in moves {
            if src != dst {
                mem.relocate_page(PageIndex::new(src), PageIndex::new(dst));
            }
        }
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        let (_, transcript) = engine
            .migrate_with_transcript(&mem, MigStrategy::vecycle_from_checkpoint(&cp).with_dedup())
            .unwrap();
        let rebuilt = apply_transcript(&cp, &transcript).unwrap();
        prop_assert!(rebuilt.content_equals(&mem));
    }

    /// DigestMemory and ByteMemory classify identical write sequences
    /// identically (same equality structure of page digests).
    #[test]
    fn memory_representations_agree(writes in vec((0u64..32, 0u64..8), 1..64)) {
        let mut dm = DigestMemory::zeroed(PageCount::new(32));
        let mut bm = ByteMemory::zeroed(PageCount::new(32));
        for (idx, content) in writes {
            dm.write_page(PageIndex::new(idx), PageContent::ContentId(content));
            bm.write_page(PageIndex::new(idx), PageContent::ContentId(content));
        }
        for i in 0..32u64 {
            for j in 0..32u64 {
                let (a, b) = (PageIndex::new(i), PageIndex::new(j));
                prop_assert_eq!(
                    dm.page_digest(a) == dm.page_digest(b),
                    bm.page_digest(a) == bm.page_digest(b)
                );
            }
        }
    }

    /// Bytes arithmetic: page round-trips and fraction bounds.
    #[test]
    fn unit_round_trips(pages in 0u64..1_000_000) {
        let b = Bytes::from_pages(pages);
        prop_assert_eq!(b.pages_ceil(), PageCount::new(pages));
        prop_assert!(b.fraction_of(Bytes::from_pages(pages.max(1))).is_fraction());
    }
}
