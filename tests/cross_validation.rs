//! Cross-validation: the paper derives Figure 5 from *trace analytics*
//! (PairStats over fingerprints) and Figures 6–7 from the *prototype*
//! (the engine). Both paths exist here, so they must agree: migrating a
//! memory image reconstructed from fingerprint `b` against a checkpoint
//! reconstructed from fingerprint `a` must transfer exactly the page
//! counts the analytics predict.

use vecycle::core::{MigrationEngine, Strategy};
use vecycle::mem::DigestMemory;
use vecycle::net::LinkSpec;
use vecycle::trace::{catalog, PairStats, TraceGenerator};
use vecycle::types::SimDuration;

fn engine_no_zero_suppression() -> MigrationEngine {
    // PairStats counts zero pages like any other content; disable the
    // engine's zero-marker shortcut so the two sides count identically.
    MigrationEngine::new(LinkSpec::lan_gigabit()).with_zero_page_suppression(false)
}

#[test]
fn engine_matches_pair_stats_on_generated_traces() {
    let machine = &catalog()[0]; // Server A
    let mut profile = machine.profile.clone();
    profile.trace_duration = SimDuration::from_hours(8);
    profile.reboot_interval = None; // keep the fingerprint count exact
    let trace = TraceGenerator::new(profile, 77)
        .scale_pages(1024)
        .generate()
        .unwrap();
    let fps = trace.fingerprints();
    let engine = engine_no_zero_suppression();

    for (i, j) in [(0usize, 4usize), (0, 16), (3, 10), (5, 6)] {
        let a = &fps[i];
        let b = &fps[j];
        let stats = PairStats::compute(a, b);

        let checkpoint = DigestMemory::from_digests(a.pages().to_vec());
        let vm = DigestMemory::from_digests(b.pages().to_vec());

        // VeCycle without dedup: full pages == "hashes".
        let r = engine.migrate(&vm, Strategy::vecycle(&checkpoint)).unwrap();
        assert_eq!(
            r.pages_sent_full().as_u64(),
            stats.hashes,
            "hashes mismatch for pair ({i},{j})"
        );

        // VeCycle + dedup: full pages == "hashes+dedup".
        let r = engine
            .migrate(&vm, Strategy::vecycle(&checkpoint).with_dedup())
            .unwrap();
        assert_eq!(
            r.pages_sent_full().as_u64(),
            stats.hashes_dedup,
            "hashes+dedup mismatch for pair ({i},{j})"
        );

        // Dedup alone: full pages == unique contents of b.
        let r = engine.migrate(&vm, Strategy::dedup()).unwrap();
        assert_eq!(
            r.pages_sent_full().as_u64(),
            stats.dedup,
            "dedup mismatch for pair ({i},{j})"
        );

        // Full: everything.
        let r = engine.migrate(&vm, Strategy::full()).unwrap();
        assert_eq!(r.pages_sent_full().as_u64(), stats.total);
    }
}

#[test]
fn miyakodori_engine_matches_dirty_analytics() {
    use vecycle::mem::{Guest, MemoryImage, PageContent};
    use vecycle::trace::Fingerprint;
    use vecycle::types::{PageCount, PageIndex, SimTime};

    // Drive a guest through tracked writes so the generation table and
    // the fingerprint diff describe the same history.
    let mem = DigestMemory::with_distinct_content(PageCount::new(512), 9);
    let fp_a = Fingerprint::new(SimTime::EPOCH, mem.digests());
    let mut guest = Guest::new(mem);
    let snapshot = guest.generations().snapshot();
    for i in 0..100u64 {
        guest.write_page(PageIndex::new(i * 5), PageContent::ContentId((1 << 57) | i));
    }
    let fp_b = Fingerprint::new(SimTime::EPOCH + SimDuration::from_mins(30), guest.digests());
    let stats = PairStats::compute(&fp_a, &fp_b);

    let engine = engine_no_zero_suppression();
    let strategy = Strategy::miyakodori(guest.generations(), &snapshot);
    let r = engine.migrate(guest.memory(), strategy).unwrap();
    // Every write created fresh content, so generation-dirty equals
    // content-dirty equals the engine's full-page count.
    assert_eq!(r.pages_sent_full().as_u64(), stats.dirty);
    assert_eq!(stats.dirty, 100);
    assert_eq!(r.rounds()[0].skipped_pages.as_u64(), 512 - 100);
}

#[test]
fn traffic_fraction_matches_similarity_complement() {
    // The paper's headline identity: "the migration time and traffic is
    // reduced by a percentage equivalent to the similarity between the
    // VM's current state and its old checkpoint."
    let machine = &catalog()[1];
    let mut profile = machine.profile.clone();
    profile.trace_duration = SimDuration::from_hours(6);
    let trace = TraceGenerator::new(profile, 55)
        .scale_pages(2048)
        .generate()
        .unwrap();
    let fps = trace.fingerprints();
    let a = &fps[0];
    let b = &fps[8]; // 4 h apart

    let engine = engine_no_zero_suppression();
    let checkpoint = DigestMemory::from_digests(a.pages().to_vec());
    let vm = DigestMemory::from_digests(b.pages().to_vec());
    let r = engine.migrate(&vm, Strategy::vecycle(&checkpoint)).unwrap();

    let novel_fraction = r.pages_sent_full().as_u64() as f64 / 2048.0;
    let similarity = b.similarity(a).as_f64();
    // Novel-page fraction ≈ 1 − similarity (not exact: similarity is
    // set-based while transfers count page slots).
    assert!(
        (novel_fraction - (1.0 - similarity)).abs() < 0.12,
        "novel {novel_fraction:.3} vs 1-sim {:.3}",
        1.0 - similarity
    );
}
