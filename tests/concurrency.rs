//! Concurrency: the engine is `&self` and checkpoint stores are
//! internally synchronized, so migrations of different VMs can proceed
//! in parallel — this suite drives them from real threads.

use std::sync::Arc;

use vecycle::checkpoint::{Checkpoint, CheckpointStore};
use vecycle::core::{MigrationEngine, Strategy};
use vecycle::mem::{DigestMemory, MemoryImage};
use vecycle::net::LinkSpec;
use vecycle::types::{Bytes, SimTime, VmId};

#[test]
fn parallel_migrations_share_one_store() {
    let store = Arc::new(CheckpointStore::new());
    let engine = Arc::new(MigrationEngine::new(LinkSpec::lan_gigabit()));
    const THREADS: u32 = 8;

    crossbeam::scope(|scope| {
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            let engine = Arc::clone(&engine);
            scope.spawn(move |_| {
                let vm_id = VmId::new(t);
                let mem = DigestMemory::with_uniform_content(Bytes::from_mib(8), u64::from(t) + 1)
                    .expect("page-aligned");
                // First hop: store a checkpoint, migrate cold.
                store.save(Checkpoint::capture(vm_id, SimTime::EPOCH, &mem));
                let cold = engine.migrate(&mem, Strategy::dedup()).expect("cold");
                // Second hop: recycle the stored checkpoint.
                let cp = store.latest(vm_id).expect("checkpoint saved");
                let warm = engine
                    .migrate(&mem, Strategy::vecycle_from_checkpoint(&cp))
                    .expect("warm");
                assert!(warm.source_traffic() < cold.source_traffic());
                assert_eq!(warm.pages_reused(), mem.page_count());
            });
        }
    })
    .expect("no thread panicked");

    assert_eq!(store.vm_count(), THREADS as usize);
}

#[test]
fn concurrent_saves_to_same_vm_keep_a_consistent_latest() {
    let store = Arc::new(CheckpointStore::with_versions(2));
    let vm = VmId::new(0);
    crossbeam::scope(|scope| {
        for t in 0..8u64 {
            let store = Arc::clone(&store);
            scope.spawn(move |_| {
                for round in 0..20u64 {
                    let mem = DigestMemory::with_distinct_content(
                        vecycle::types::PageCount::new(16),
                        t * 100 + round,
                    );
                    store.save(Checkpoint::capture(
                        vm,
                        SimTime::EPOCH + vecycle::types::SimDuration::from_secs(round),
                        &mem,
                    ));
                    // Reads interleave with writes; latest must always
                    // be a complete checkpoint of the right VM.
                    let latest = store.latest(vm).expect("non-empty after save");
                    assert_eq!(latest.vm(), vm);
                    assert_eq!(latest.page_count().as_u64(), 16);
                }
            });
        }
    })
    .expect("no thread panicked");
    // 160 saves with 2 versions kept: usage reflects exactly 2.
    assert_eq!(store.used(), vecycle::types::Bytes::new(2 * 16 * 16));
}

#[test]
fn parallel_trace_analysis_with_crossbeam() {
    // The fig5 harness fans machine analyses out across threads; verify
    // the analysis stack is thread-safe and deterministic under
    // parallelism.
    use vecycle::core::analytic::summarize_methods;
    use vecycle::trace::{catalog, TraceGenerator};

    let machines: Vec<_> = catalog().into_iter().take(3).collect();
    let serial: Vec<u64> = machines
        .iter()
        .map(|m| {
            let mut p = m.profile.clone();
            p.trace_duration = vecycle::types::SimDuration::from_hours(12);
            let trace = TraceGenerator::new(p, 1)
                .scale_pages(256)
                .generate()
                .unwrap();
            summarize_methods(trace.fingerprints(), 1).means.pairs
        })
        .collect();

    let parallel: Vec<u64> = crossbeam::scope(|scope| {
        let handles: Vec<_> = machines
            .iter()
            .map(|m| {
                let profile = m.profile.clone();
                scope.spawn(move |_| {
                    let mut p = profile;
                    p.trace_duration = vecycle::types::SimDuration::from_hours(12);
                    let trace = TraceGenerator::new(p, 1)
                        .scale_pages(256)
                        .generate()
                        .unwrap();
                    summarize_methods(trace.fingerprints(), 1).means.pairs
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();
    assert_eq!(serial, parallel);
}
