//! Failure-injection around persisted checkpoints: a deployment keeps
//! checkpoints as files; corruption must degrade to a full/dedup
//! migration, never to a wrong restore — and under a byte quota the
//! durable directory must mirror the in-memory catalog through every
//! eviction, version supersession, and crash-interrupted save.

use std::sync::Arc;

use vecycle::checkpoint::{Checkpoint, DiskStore, EvictionPolicy, GoneReason};
use vecycle::core::{apply_transcript, MigrationEngine, Strategy};
use vecycle::host::Host;
use vecycle::mem::{ByteMemory, DigestMemory, MutableMemory, PageContent};
use vecycle::net::LinkSpec;
use vecycle::types::{Bytes, HostId, PageCount, PageIndex, SimDuration, SimTime, VmId};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("vecycle-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The deployment loop a host daemon would run: try the stored
/// checkpoint; on corruption fall back to dedup and clear the file.
fn choose_strategy(store: &DiskStore, vm: VmId) -> (Strategy, Option<Checkpoint>) {
    match store.load(vm) {
        Ok(Some(cp)) => (Strategy::vecycle_from_checkpoint(&cp), Some(cp)),
        Ok(None) => (Strategy::dedup(), None),
        Err(_) => {
            store.remove(vm).expect("clear corrupt checkpoint");
            (Strategy::dedup(), None)
        }
    }
}

#[test]
fn corrupt_checkpoint_falls_back_to_dedup() {
    let dir = tmpdir("fallback");
    let store = DiskStore::open(&dir).unwrap();
    let vm_id = VmId::new(0);
    let mem = ByteMemory::with_distinct_content(PageCount::new(128), 4);
    store
        .save(&Checkpoint::capture_bytes(vm_id, SimTime::EPOCH, &mem))
        .unwrap();

    // Bit rot strikes the stored file.
    let path = dir.join("vm-0.ckpt");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 3;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, bytes).unwrap();

    let (strategy, cp) = choose_strategy(&store, vm_id);
    assert!(cp.is_none(), "corrupt checkpoint must not be used");
    assert_eq!(strategy.name().to_string(), "dedup");
    // The corrupt file was cleared; the next save starts fresh.
    assert!(store.load(vm_id).unwrap().is_none());
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn intact_checkpoint_round_trips_through_the_store_and_migration() {
    let dir = tmpdir("intact");
    let store = DiskStore::open(&dir).unwrap();
    let vm_id = VmId::new(1);
    let mut mem = ByteMemory::with_distinct_content(PageCount::new(128), 5);
    store
        .save(&Checkpoint::capture_bytes(vm_id, SimTime::EPOCH, &mem))
        .unwrap();

    // The VM diverges, then migrates back.
    for i in 0..16u64 {
        mem.write_page(PageIndex::new(i), PageContent::Bytes(&i.to_le_bytes()));
    }
    let (strategy, cp) = choose_strategy(&store, vm_id);
    let cp = cp.expect("checkpoint is intact");
    assert_eq!(strategy.name().to_string(), "vecycle");

    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    let (report, transcript) = engine.migrate_with_transcript(&mem, strategy).unwrap();
    assert_eq!(report.pages_reused(), PageCount::new(112));
    let rebuilt = apply_transcript(&cp, &transcript).unwrap();
    assert!(rebuilt.content_equals(&mem));
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn interrupted_save_preserves_previous_checkpoint() {
    // A crash mid-save leaves the temp file; the named checkpoint must
    // still be the previous (valid) one.
    let dir = tmpdir("interrupted");
    let store = DiskStore::open(&dir).unwrap();
    let vm_id = VmId::new(2);
    let old = ByteMemory::with_distinct_content(PageCount::new(32), 6);
    store
        .save(&Checkpoint::capture_bytes(vm_id, SimTime::EPOCH, &old))
        .unwrap();
    // Simulate the crash: a half-written temp file appears.
    std::fs::write(dir.join(".vm-2.tmp"), b"partial garbage").unwrap();
    let loaded = store.load(vm_id).unwrap().unwrap();
    assert_eq!(loaded.page_count(), PageCount::new(32));
    assert!(loaded.restore_byte_memory().unwrap().content_equals(&old));
    std::fs::remove_dir_all(dir).unwrap();
}

/// An 8-page digest checkpoint (128 bytes on the wire index) for `vm`,
/// versioned by `taken_at` seconds after the epoch.
fn small_cp(vm: u32, seed: u64, taken_at: u64) -> Checkpoint {
    let mem = DigestMemory::with_distinct_content(PageCount::new(8), seed);
    Checkpoint::capture(
        VmId::new(vm),
        SimTime::EPOCH + SimDuration::from_secs(taken_at),
        &mem,
    )
}

/// A quota-governed host whose durable store lives under a fresh
/// directory; the caller removes `dir` when done.
fn quota_host(tag: &str, quota: u64) -> (Host, std::path::PathBuf) {
    let dir = tmpdir(tag);
    let host = Host::benchmark_default(HostId::new(0))
        .with_checkpoint_quota(Bytes::new(quota), EvictionPolicy::OldestFirst)
        .with_disk_store(Arc::new(DiskStore::open(&dir).unwrap()));
    (host, dir)
}

/// Sorted views of the durable directory and the in-memory catalog —
/// these must agree after every lifecycle operation.
fn disk_vs_catalog(host: &Host) -> (Vec<VmId>, Vec<VmId>) {
    let mut on_disk = host.disk_store().unwrap().vm_ids().unwrap();
    on_disk.sort();
    let mut catalog = host.store().vm_ids();
    catalog.sort();
    (on_disk, catalog)
}

/// Regression for the eviction file leak: a churn of saves mixing quota
/// evictions with version supersessions (the same VM re-saving a newer
/// checkpoint) must keep the durable directory identical to the
/// in-memory catalog after *every* save — a version-evicted checkpoint's
/// file is overwritten in place, a quota-evicted VM's file is deleted.
#[test]
fn eviction_churn_keeps_disk_directory_equal_to_catalog() {
    // The 256-byte quota holds exactly two 128-byte checkpoints.
    let (host, dir) = quota_host("churn", 256);
    let churn = [
        (1u32, 10u64),
        (2, 20),
        (1, 30), // version supersession: vm-1's file is rewritten
        (3, 40), // quota eviction: the oldest resident's file must go
        (2, 50), // vm-2 re-saves (possibly after its own eviction)
        (4, 60),
        (3, 70),
        (1, 80),
    ];
    for (step, &(vm, at)) in churn.iter().enumerate() {
        let outcome = host
            .save_checkpoint(small_cp(vm, u64::from(vm) * 100 + at, at))
            .unwrap();
        assert!(outcome.stored, "step {step}: save under quota must land");
        let (on_disk, catalog) = disk_vs_catalog(&host);
        assert_eq!(
            on_disk, catalog,
            "step {step}: durable directory diverged from the catalog"
        );
        assert!(
            host.store().used().as_u64() <= 256,
            "step {step}: quota overrun"
        );
    }
    // The last save wins for every VM still resident: each surviving
    // file must load as the newest version the catalog serves.
    for vm in host.store().vm_ids() {
        let on_disk = host.disk_store().unwrap().load(vm).unwrap().unwrap();
        let in_mem = host.store().latest(vm).unwrap();
        assert_eq!(on_disk.taken_at(), in_mem.taken_at(), "{vm} version skew");
    }
    std::fs::remove_dir_all(dir).unwrap();
}

/// A crash in the middle of a quota-pressured save must be invisible:
/// the durable protocol stages into a temp file and renames, so the
/// half-written attempt leaves the previous resident set — including
/// the eviction victim the interrupted save *would* have chosen —
/// fully intact, and the retried save then performs the eviction on
/// both stores atomically.
#[test]
fn crash_during_save_under_quota_pressure_preserves_victim_and_agreement() {
    let (host, dir) = quota_host("crash-save", 256);
    host.save_checkpoint(small_cp(1, 11, 10)).unwrap();
    host.save_checkpoint(small_cp(2, 22, 20)).unwrap();

    // The writer dies after staging vm-3's temp file, before the rename
    // and before quota admission ran: no eviction happened.
    std::fs::write(dir.join(".vm-3.tmp"), b"half-written checkpoint").unwrap();
    let (on_disk, catalog) = disk_vs_catalog(&host);
    assert_eq!(
        on_disk, catalog,
        "temp files must not surface as checkpoints"
    );
    assert_eq!(catalog, vec![VmId::new(1), VmId::new(2)]);
    assert!(
        host.store().gone(VmId::new(1)).is_none(),
        "the would-be victim must not be tombstoned by a save that never landed"
    );
    assert!(
        host.disk_store()
            .unwrap()
            .load(VmId::new(1))
            .unwrap()
            .is_some(),
        "the would-be victim's file must survive the interrupted save"
    );

    // The retry lands: vm-1 (oldest) is evicted from memory *and* disk,
    // and the stale temp file is gone with the completed rename.
    let outcome = host.save_checkpoint(small_cp(3, 33, 30)).unwrap();
    assert!(outcome.stored);
    assert_eq!(outcome.evicted.len(), 1);
    let (on_disk, catalog) = disk_vs_catalog(&host);
    assert_eq!(on_disk, catalog);
    assert_eq!(catalog, vec![VmId::new(2), VmId::new(3)]);
    assert_eq!(host.store().gone(VmId::new(1)), Some(GoneReason::Evicted));
    assert!(
        !dir.join(".vm-3.tmp").exists(),
        "the completed save must consume (or replace) the staged temp file"
    );
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn store_handles_many_vms() {
    let dir = tmpdir("many");
    let store = DiskStore::open(&dir).unwrap();
    for i in 0..20u32 {
        let mem = ByteMemory::with_distinct_content(PageCount::new(8), 100 + u64::from(i));
        store
            .save(&Checkpoint::capture_bytes(
                VmId::new(i),
                SimTime::EPOCH,
                &mem,
            ))
            .unwrap();
    }
    assert_eq!(store.list().unwrap().len(), 20);
    for i in (0..20u32).step_by(2) {
        store.remove(VmId::new(i)).unwrap();
    }
    let left = store.list().unwrap();
    assert_eq!(left.len(), 10);
    assert!(left.iter().all(|v| v.as_u32() % 2 == 1));
    // Remaining checkpoints are still valid and distinct.
    for v in left {
        let cp = store.load(v).unwrap().unwrap();
        assert_eq!(cp.vm(), v);
        assert!(!cp.digests().is_empty());
    }
    std::fs::remove_dir_all(dir).unwrap();
}
