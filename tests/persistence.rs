//! Failure-injection around persisted checkpoints: a deployment keeps
//! checkpoints as files; corruption must degrade to a full/dedup
//! migration, never to a wrong restore.

use vecycle::checkpoint::{Checkpoint, DiskStore};
use vecycle::core::{apply_transcript, MigrationEngine, Strategy};
use vecycle::mem::{ByteMemory, MutableMemory, PageContent};
use vecycle::net::LinkSpec;
use vecycle::types::{PageCount, PageIndex, SimTime, VmId};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("vecycle-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The deployment loop a host daemon would run: try the stored
/// checkpoint; on corruption fall back to dedup and clear the file.
fn choose_strategy(store: &DiskStore, vm: VmId) -> (Strategy, Option<Checkpoint>) {
    match store.load(vm) {
        Ok(Some(cp)) => (Strategy::vecycle_from_checkpoint(&cp), Some(cp)),
        Ok(None) => (Strategy::dedup(), None),
        Err(_) => {
            store.remove(vm).expect("clear corrupt checkpoint");
            (Strategy::dedup(), None)
        }
    }
}

#[test]
fn corrupt_checkpoint_falls_back_to_dedup() {
    let dir = tmpdir("fallback");
    let store = DiskStore::open(&dir).unwrap();
    let vm_id = VmId::new(0);
    let mem = ByteMemory::with_distinct_content(PageCount::new(128), 4);
    store
        .save(&Checkpoint::capture_bytes(vm_id, SimTime::EPOCH, &mem))
        .unwrap();

    // Bit rot strikes the stored file.
    let path = dir.join("vm-0.ckpt");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 3;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, bytes).unwrap();

    let (strategy, cp) = choose_strategy(&store, vm_id);
    assert!(cp.is_none(), "corrupt checkpoint must not be used");
    assert_eq!(strategy.name().to_string(), "dedup");
    // The corrupt file was cleared; the next save starts fresh.
    assert!(store.load(vm_id).unwrap().is_none());
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn intact_checkpoint_round_trips_through_the_store_and_migration() {
    let dir = tmpdir("intact");
    let store = DiskStore::open(&dir).unwrap();
    let vm_id = VmId::new(1);
    let mut mem = ByteMemory::with_distinct_content(PageCount::new(128), 5);
    store
        .save(&Checkpoint::capture_bytes(vm_id, SimTime::EPOCH, &mem))
        .unwrap();

    // The VM diverges, then migrates back.
    for i in 0..16u64 {
        mem.write_page(PageIndex::new(i), PageContent::Bytes(&i.to_le_bytes()));
    }
    let (strategy, cp) = choose_strategy(&store, vm_id);
    let cp = cp.expect("checkpoint is intact");
    assert_eq!(strategy.name().to_string(), "vecycle");

    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    let (report, transcript) = engine.migrate_with_transcript(&mem, strategy).unwrap();
    assert_eq!(report.pages_reused(), PageCount::new(112));
    let rebuilt = apply_transcript(&cp, &transcript).unwrap();
    assert!(rebuilt.content_equals(&mem));
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn interrupted_save_preserves_previous_checkpoint() {
    // A crash mid-save leaves the temp file; the named checkpoint must
    // still be the previous (valid) one.
    let dir = tmpdir("interrupted");
    let store = DiskStore::open(&dir).unwrap();
    let vm_id = VmId::new(2);
    let old = ByteMemory::with_distinct_content(PageCount::new(32), 6);
    store
        .save(&Checkpoint::capture_bytes(vm_id, SimTime::EPOCH, &old))
        .unwrap();
    // Simulate the crash: a half-written temp file appears.
    std::fs::write(dir.join(".vm-2.tmp"), b"partial garbage").unwrap();
    let loaded = store.load(vm_id).unwrap().unwrap();
    assert_eq!(loaded.page_count(), PageCount::new(32));
    assert!(loaded.restore_byte_memory().unwrap().content_equals(&old));
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn store_handles_many_vms() {
    let dir = tmpdir("many");
    let store = DiskStore::open(&dir).unwrap();
    for i in 0..20u32 {
        let mem = ByteMemory::with_distinct_content(PageCount::new(8), 100 + u64::from(i));
        store
            .save(&Checkpoint::capture_bytes(
                VmId::new(i),
                SimTime::EPOCH,
                &mem,
            ))
            .unwrap();
    }
    assert_eq!(store.list().unwrap().len(), 20);
    for i in (0..20u32).step_by(2) {
        store.remove(VmId::new(i)).unwrap();
    }
    let left = store.list().unwrap();
    assert_eq!(left.len(), 10);
    assert!(left.iter().all(|v| v.as_u32() % 2 == 1));
    // Remaining checkpoints are still valid and distinct.
    for v in left {
        let cp = store.load(v).unwrap().unwrap();
        assert_eq!(cp.vm(), v);
        assert!(!cp.digests().is_empty());
    }
    std::fs::remove_dir_all(dir).unwrap();
}
