//! Byte-exact ping-pong: prove the destination reconstructs memory.
//!
//! Uses real page bytes and real MD5 end to end: the source classifies
//! pages against the destination's checkpoint, the transcript crosses
//! the "wire", and the destination merge (the paper's Listing 1)
//! rebuilds guest memory — verified byte for byte. Run:
//!
//! ```sh
//! cargo run --release --example ping_pong
//! ```

use vecycle::checkpoint::Checkpoint;
use vecycle::core::{apply_transcript, MigrationEngine, Strategy};
use vecycle::mem::workload::{GuestWorkload, IdleWorkload, RelocationWorkload};
use vecycle::mem::{ByteMemory, Guest, MemoryImage};
use vecycle::net::LinkSpec;
use vecycle::types::{PageCount, SimDuration, SimTime, VmId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small byte-backed guest (16 MiB) so every page is really hashed.
    let mut guest = Guest::new(ByteMemory::with_distinct_content(
        PageCount::new(4096),
        1234,
    ));
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    let vm = VmId::new(0);

    // Host B stores a checkpoint when the VM first arrives there.
    let checkpoint_b = Checkpoint::capture_bytes(vm, SimTime::EPOCH, guest.memory());

    // The VM runs on A for an hour: daemon writes plus page relocations.
    let mut daemons = IdleWorkload::new(1, 1.0);
    let mut reloc = RelocationWorkload::new(2, 0.5);
    daemons.advance(&mut guest, SimDuration::from_hours(1));
    reloc.advance(&mut guest, SimDuration::from_hours(1));

    // Migrate A -> B, recycling B's checkpoint.
    let (report, transcript) = engine.migrate_with_transcript(
        guest.memory(),
        Strategy::vecycle_from_checkpoint(&checkpoint_b),
    )?;
    println!("migration: {report}");
    println!(
        "transcript: {} messages ({} full pages, {} checksum-only)",
        transcript.len(),
        report.pages_sent_full().as_u64(),
        report.pages_reused().as_u64(),
    );

    // Destination side: Listing 1 merge from checkpoint + transcript.
    let rebuilt = apply_transcript(&checkpoint_b, &transcript)?;
    assert!(
        rebuilt.content_equals(guest.memory()),
        "destination memory must equal the source byte-for-byte"
    );
    println!(
        "destination rebuilt {} ({} pages) byte-for-byte ✓",
        rebuilt.ram_size(),
        rebuilt.page_count().as_u64(),
    );
    Ok(())
}
