//! Quickstart: one VM, two migrations — with and without a recycled
//! checkpoint.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vecycle::core::{MigrationEngine, Strategy};
use vecycle::mem::workload::{GuestWorkload, IdleWorkload};
use vecycle::mem::{DigestMemory, Guest};
use vecycle::net::LinkSpec;
use vecycle::types::{Bytes, SimDuration};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 1 GiB guest that filled its memory once and then sat idle for two
    // hours — the situation after a VM returns to a host it left earlier.
    let ram = Bytes::from_gib(1);
    let mut guest = Guest::new(DigestMemory::with_uniform_content(ram, 42)?);
    let checkpoint = guest.memory().snapshot(); // what the host kept on disk
    let mut daemons = IdleWorkload::new(7, 2.0);
    daemons.advance(&mut guest, SimDuration::from_hours(2));

    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());

    let full = engine.migrate(guest.memory(), Strategy::full())?;
    let recycled = engine.migrate(guest.memory(), Strategy::vecycle(&checkpoint))?;

    println!("QEMU-style full migration:   {full}");
    println!("VeCycle (checkpoint reuse):  {recycled}");
    println!();
    println!(
        "reused {} of {} pages from the checkpoint",
        recycled.pages_reused().as_u64(),
        guest.page_count().as_u64(),
    );
    println!(
        "traffic: {} -> {} ({:.0}% less), time: {:.1}s -> {:.1}s",
        full.source_traffic(),
        recycled.source_traffic(),
        (1.0 - recycled.source_traffic().as_f64() / full.source_traffic().as_f64()) * 100.0,
        full.total_time().as_secs_f64(),
        recycled.total_time().as_secs_f64(),
    );
    Ok(())
}
