//! WAN migration with varying divergence from the checkpoint (§4.5).
//!
//! A 1 GiB VM crosses an emulated CloudNet WAN (465 Mbit/s, 27 ms).
//! Between checkpoint and migration, a ramdisk rewrites 0–100% of its
//! blocks. Run:
//!
//! ```sh
//! cargo run --release --example wan_migration
//! ```

use vecycle::core::{MigrationEngine, Strategy};
use vecycle::mem::workload::RamdiskWorkload;
use vecycle::mem::{DigestMemory, Guest};
use vecycle::net::LinkSpec;
use vecycle::types::{Bytes, Ratio};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = MigrationEngine::new(LinkSpec::wan_cloudnet());
    println!("WAN: {} effective", engine.link().effective_bandwidth());
    println!(
        "{:<12} {:>12} {:>12} {:>10}",
        "updates", "time", "traffic", "vs full"
    );

    let ram = Bytes::from_gib(1);
    let mut baseline_time = None;
    for pct in [0u32, 25, 50, 75, 100] {
        let mut guest = Guest::new(DigestMemory::zeroed(ram.pages_ceil()));
        let mut ramdisk = RamdiskWorkload::fill(&mut guest, Ratio::new(0.9), 5);
        let checkpoint = guest.memory().snapshot();
        ramdisk.update_fraction(&mut guest, Ratio::new(f64::from(pct) / 100.0));

        let full = engine.migrate(guest.memory(), Strategy::full())?;
        let vecycle = engine.migrate(guest.memory(), Strategy::vecycle(&checkpoint))?;
        baseline_time.get_or_insert(full.total_time().as_secs_f64());

        println!(
            "{:<12} {:>10.1}s {:>12} {:>9.0}%",
            format!("{pct}%"),
            vecycle.total_time().as_secs_f64(),
            format!("{}", vecycle.source_traffic()),
            (vecycle.total_time().as_secs_f64() / full.total_time().as_secs_f64() - 1.0) * 100.0,
        );
    }
    println!(
        "\nfull migration takes {:.0}s regardless of updates",
        baseline_time.unwrap_or(0.0)
    );
    Ok(())
}
