//! Dynamic workload consolidation (§1 / Verma et al. [26]).
//!
//! Eight low-activity VMs are packed onto one consolidation host each
//! night and fanned back out to their own servers each morning. Every
//! hop leaves a checkpoint behind, so after the first day VeCycle
//! recycles on *every* migration. Run:
//!
//! ```sh
//! cargo run --release --example consolidation
//! ```

use vecycle::core::session::{RecyclePolicy, VeCycleSession, VmInstance};
use vecycle::host::Cluster;
use vecycle::mem::workload::{GuestWorkload, IdleWorkload};
use vecycle::mem::{DigestMemory, Guest};
use vecycle::net::LinkSpec;
use vecycle::types::{Bytes, HostId, SimDuration, SimTime, VmId};

const VMS: u32 = 8;
const DAYS: u64 = 5;

fn run(policy: RecyclePolicy) -> Result<f64, Box<dyn std::error::Error>> {
    // Host 0 is the consolidation server; hosts 1..=8 are home servers.
    let cluster = Cluster::homogeneous(VMS + 1, LinkSpec::lan_gigabit());
    let session = VeCycleSession::new(cluster).with_policy(policy);

    let mut vms: Vec<VmInstance<DigestMemory>> = (0..VMS)
        .map(|i| {
            let mem = DigestMemory::with_uniform_content(Bytes::from_mib(128), 1000 + u64::from(i))
                .expect("page-aligned");
            VmInstance::new(VmId::new(i), Guest::new(mem), HostId::new(i + 1))
        })
        .collect();
    let mut workloads: Vec<IdleWorkload> = (0..VMS)
        .map(|i| IdleWorkload::new(2000 + u64::from(i), 0.05))
        .collect();

    let mut clock = SimTime::EPOCH;
    let mut total = 0.0;
    for day in 0..DAYS {
        for (hour, to_server) in [(22u64, true), (7u64, false)] {
            let t = SimTime::EPOCH + SimDuration::from_days(day) + SimDuration::from_hours(hour);
            if t < clock {
                continue;
            }
            let gap = t.duration_since(clock);
            clock = t;
            for (i, vm) in vms.iter_mut().enumerate() {
                workloads[i].advance(vm.guest_mut(), gap);
                let dest = if to_server {
                    HostId::new(0)
                } else {
                    HostId::new(i as u32 + 1)
                };
                let report = session.migrate(vm, dest, clock, &mut workloads[i])?;
                total += report.source_traffic().as_f64();
            }
        }
    }
    Ok(total)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let migrations = VMS as u64 * DAYS * 2;
    println!("{VMS} VMs × {DAYS} days × 2 moves = {migrations} migrations\n");
    let baseline = run(RecyclePolicy::Baseline)?;
    let vecycle = run(RecyclePolicy::VeCycle)?;
    println!(
        "baseline (full):  {:>8.2} GiB",
        baseline / (1u64 << 30) as f64
    );
    println!(
        "vecycle:          {:>8.2} GiB",
        vecycle / (1u64 << 30) as f64
    );
    println!(
        "\nvecycle moved {:.0}% of the baseline traffic; the consolidation\n\
         host ends the week holding {VMS} checkpoints, one per VM.",
        vecycle / baseline * 100.0
    );
    Ok(())
}
