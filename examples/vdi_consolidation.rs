//! Virtual desktop consolidation (the §4.6 scenario, engine-driven).
//!
//! A 512 MiB virtual desktop commutes between the user's workstation
//! (9 am) and a consolidation server (5 pm) every weekday. Each host
//! keeps a checkpoint when the VM leaves; VeCycle recycles it on the
//! way back. Run:
//!
//! ```sh
//! cargo run --release --example vdi_consolidation
//! ```

use vecycle::core::session::{RecyclePolicy, VeCycleSession, VmInstance};
use vecycle::host::{Cluster, MigrationSchedule};
use vecycle::mem::workload::IdleWorkload;
use vecycle::mem::{DigestMemory, Guest};
use vecycle::net::LinkSpec;
use vecycle::types::{Bytes, HostId, VmId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workstation = HostId::new(0);
    let server = HostId::new(1);
    let schedule = MigrationSchedule::vdi(VmId::new(0), workstation, server, 19);
    println!(
        "VDI schedule: {} migrations over 13 weekdays\n",
        schedule.len()
    );

    let make_vm = || -> Result<VmInstance<DigestMemory>, Box<dyn std::error::Error>> {
        let mem = DigestMemory::with_uniform_content(Bytes::from_mib(512), 0xde5c)?;
        Ok(VmInstance::new(VmId::new(0), Guest::new(mem), server))
    };

    let mut totals = Vec::new();
    for (label, policy) in [
        ("baseline (full)", RecyclePolicy::Baseline),
        ("sender-side dedup", RecyclePolicy::DedupOnly),
        ("vecycle", RecyclePolicy::VeCycle),
    ] {
        let cluster = Cluster::homogeneous(2, LinkSpec::lan_gigabit());
        let session = VeCycleSession::new(cluster).with_policy(policy);
        let mut vm = make_vm()?;
        // Desktop activity: ~0.8 page writes per second around the clock
        // (~23k of the 131k pages touched in a typical 8 h stretch; the
        // engine also runs the workload during copy rounds).
        let mut workload = IdleWorkload::new(99, 0.8);
        let reports = session.run_schedule(&mut vm, &schedule, &mut workload)?;
        let total: f64 = reports.iter().map(|r| r.source_traffic().as_f64()).sum();
        println!(
            "{label:>18}: total traffic {:.2} GiB",
            total / (1 << 30) as f64
        );
        totals.push((label, total));
    }

    let baseline = totals[0].1;
    println!();
    for (label, total) in &totals[1..] {
        println!(
            "{label} moves {:.0}% of the baseline traffic",
            total / baseline * 100.0
        );
    }
    println!("\n(The paper's trace-derived version of this experiment is");
    println!(" `cargo run --release -p vecycle-bench --bin fig8`.)");
    Ok(())
}
