#!/usr/bin/env bash
# Fails if any source file under crates/core/src grows past the cap.
#
# The pipeline refactor split the old monolithic engine.rs/session.rs
# into focused modules; this guard keeps them focused. If a legitimate
# change needs more room, split the module instead of raising the cap.
set -euo pipefail

CAP=800
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
FAILED=0

while IFS= read -r file; do
    lines=$(wc -l <"$file")
    if ((lines > CAP)); then
        echo "FAIL: $file is $lines lines (cap: $CAP)" >&2
        FAILED=1
    fi
done < <(find "$ROOT/crates/core/src" -name '*.rs' | sort)

if ((FAILED)); then
    echo "error: split oversized modules instead of growing them" >&2
    exit 1
fi
echo "loc_guard: all crates/core/src files within $CAP lines"
