//! VM checkpoints: the artifact VeCycle recycles.
//!
//! On an outgoing migration the source writes a checkpoint of the VM to
//! its local disk (§3 of the paper); a later *incoming* migration of the
//! same VM initializes guest memory from that checkpoint and builds a
//! checksum index over it, so the source only needs to send pages whose
//! content the checkpoint lacks.
//!
//! This crate provides:
//!
//! * [`Checkpoint`] — an immutable capture of guest memory, either
//!   digest-only (scalable) or with full page bytes (byte-exact restore);
//! * a versioned on-disk format with corruption detection
//!   ([`Checkpoint::write_to`] / [`Checkpoint::read_from`]);
//! * [`ChecksumIndex`] — the sorted checksum → offset index of §3.3
//!   ("we currently keep the checksums and their offsets in a sorted
//!   list, such that we can use binary search"), plus a hash-map variant
//!   for the index ablation;
//! * [`CheckpointStore`] — the per-host store that keeps the most recent
//!   checkpoint per VM.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod dedup;
mod disk_store;
mod index;
mod lifecycle;
mod obs;
mod partial;
mod store;
mod swiss;
mod wire;

pub use checkpoint::{Checkpoint, CheckpointData};
pub use dedup::DedupIndex;
pub use disk_store::{DiskStore, ScrubOutcome};
pub use index::{ChecksumIndex, HashChecksumIndex, PageLookup};
pub use lifecycle::{EvictionPolicy, EvictionReason, EvictionRecord, GoneReason, SaveOutcome};
pub use obs::{observe_index, observe_partial};
pub use partial::PartialCheckpoint;
pub use store::CheckpointStore;
pub use swiss::DigestTable;
