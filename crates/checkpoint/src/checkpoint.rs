//! The [`Checkpoint`] capture type.

use vecycle_mem::{ByteMemory, DigestMemory, MemoryImage, MutableMemory, PageContent};
use vecycle_types::{Bytes, PageCount, PageDigest, PageIndex, SimTime, VmId, PAGE_SIZE};

use crate::ChecksumIndex;

/// The payload of a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointData {
    /// One digest per page — sufficient for every traffic computation.
    Digests(Vec<PageDigest>),
    /// Full page bytes (length is a multiple of the page size) — needed
    /// for byte-exact restores in the end-to-end tests.
    Pages(Vec<u8>),
}

/// An immutable capture of a VM's memory, stored at a host.
///
/// # Examples
///
/// ```
/// use vecycle_checkpoint::{Checkpoint, PageLookup};
/// use vecycle_mem::DigestMemory;
/// use vecycle_types::{PageCount, SimTime, VmId};
///
/// let mem = DigestMemory::with_distinct_content(PageCount::new(64), 1);
/// let cp = Checkpoint::capture(VmId::new(0), SimTime::EPOCH, &mem);
/// assert_eq!(cp.page_count(), PageCount::new(64));
/// let index = cp.build_index();
/// assert!(index.contains(cp.digest(vecycle_types::PageIndex::new(3))));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    vm: VmId,
    taken_at: SimTime,
    data: CheckpointData,
}

impl Checkpoint {
    /// Captures a digest-level checkpoint of any memory image.
    pub fn capture<M: MemoryImage>(vm: VmId, taken_at: SimTime, memory: &M) -> Self {
        Checkpoint {
            vm,
            taken_at,
            data: CheckpointData::Digests(memory.digests()),
        }
    }

    /// Captures a full-byte checkpoint of a [`ByteMemory`].
    pub fn capture_bytes(vm: VmId, taken_at: SimTime, memory: &ByteMemory) -> Self {
        let n = memory.page_count().as_u64();
        let mut bytes = Vec::with_capacity((n * PAGE_SIZE) as usize);
        for i in 0..n {
            bytes.extend_from_slice(memory.read_page(PageIndex::new(i)));
        }
        Checkpoint {
            vm,
            taken_at,
            data: CheckpointData::Pages(bytes),
        }
    }

    /// Creates a checkpoint from raw parts (used by the wire decoder).
    ///
    /// # Errors
    ///
    /// Returns [`vecycle_types::Error::Corrupt`] if a `Pages` payload is
    /// not a whole number of pages.
    pub fn from_parts(
        vm: VmId,
        taken_at: SimTime,
        data: CheckpointData,
    ) -> vecycle_types::Result<Self> {
        if let CheckpointData::Pages(b) = &data {
            if !(b.len() as u64).is_multiple_of(PAGE_SIZE) {
                return Err(vecycle_types::Error::Corrupt {
                    detail: format!("page payload of {} bytes is not page-aligned", b.len()),
                });
            }
        }
        Ok(Checkpoint { vm, taken_at, data })
    }

    /// The VM this checkpoint belongs to.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// When the checkpoint was taken.
    pub fn taken_at(&self) -> SimTime {
        self.taken_at
    }

    /// The payload.
    pub fn data(&self) -> &CheckpointData {
        &self.data
    }

    /// Number of pages captured.
    pub fn page_count(&self) -> PageCount {
        match &self.data {
            CheckpointData::Digests(d) => PageCount::new(d.len() as u64),
            CheckpointData::Pages(b) => PageCount::new(b.len() as u64 / PAGE_SIZE),
        }
    }

    /// RAM size captured.
    pub fn ram_size(&self) -> Bytes {
        self.page_count().bytes()
    }

    /// On-disk footprint of the payload — what storing this checkpoint
    /// costs the host (§1 argues local storage is cheap; the store still
    /// accounts for it).
    pub fn storage_size(&self) -> Bytes {
        match &self.data {
            CheckpointData::Digests(d) => Bytes::new(d.len() as u64 * 16),
            CheckpointData::Pages(b) => Bytes::new(b.len() as u64),
        }
    }

    /// The digest of one page.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn digest(&self, idx: PageIndex) -> PageDigest {
        match &self.data {
            CheckpointData::Digests(d) => d[idx.as_usize()],
            CheckpointData::Pages(_) => {
                vecycle_hash::page_digest(self.read_page(idx).expect("Pages variant has bytes"))
            }
        }
    }

    /// All page digests in page order.
    pub fn digests(&self) -> Vec<PageDigest> {
        match &self.data {
            CheckpointData::Digests(d) => d.clone(),
            CheckpointData::Pages(b) => {
                // Batch through the multi-lane hash front-end: this runs
                // once per index build over the whole checkpoint.
                let views: Vec<&[u8]> = b.chunks_exact(PAGE_SIZE as usize).collect();
                vecycle_hash::digest_pages(&views)
            }
        }
    }

    /// Reads one page's bytes, if this is a full-byte checkpoint.
    pub fn read_page(&self, idx: PageIndex) -> Option<&[u8]> {
        match &self.data {
            CheckpointData::Digests(_) => None,
            CheckpointData::Pages(b) => {
                let start = idx.as_usize() * PAGE_SIZE as usize;
                b.get(start..start + PAGE_SIZE as usize)
            }
        }
    }

    /// Builds the §3.3 checksum index over this checkpoint.
    pub fn build_index(&self) -> ChecksumIndex {
        ChecksumIndex::build(self.digests())
    }

    /// Restores the checkpoint into a fresh [`DigestMemory`] — the
    /// destination's "initialize main memory from the checkpoint file"
    /// step (§3.3).
    pub fn restore_digest_memory(&self) -> DigestMemory {
        DigestMemory::from_digests(self.digests())
    }

    /// Restores a full-byte checkpoint into a fresh [`ByteMemory`].
    ///
    /// Returns `None` for digest-only checkpoints, which cannot supply
    /// page bytes.
    pub fn restore_byte_memory(&self) -> Option<ByteMemory> {
        match &self.data {
            CheckpointData::Digests(_) => None,
            CheckpointData::Pages(b) => {
                let pages = self.page_count();
                let mut mem = ByteMemory::zeroed(pages);
                for (i, page) in b.chunks_exact(PAGE_SIZE as usize).enumerate() {
                    mem.write_page(PageIndex::new(i as u64), PageContent::Bytes(page));
                }
                Some(mem)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest_cp() -> Checkpoint {
        let mem = DigestMemory::with_distinct_content(PageCount::new(16), 5);
        Checkpoint::capture(VmId::new(1), SimTime::EPOCH, &mem)
    }

    #[test]
    fn capture_preserves_digests() {
        let mem = DigestMemory::with_distinct_content(PageCount::new(16), 5);
        let cp = Checkpoint::capture(VmId::new(1), SimTime::EPOCH, &mem);
        assert_eq!(cp.digests(), mem.digests());
        assert_eq!(cp.page_count(), PageCount::new(16));
    }

    #[test]
    fn capture_bytes_round_trips() {
        let mem = ByteMemory::with_distinct_content(PageCount::new(8), 9);
        let cp = Checkpoint::capture_bytes(VmId::new(2), SimTime::EPOCH, &mem);
        let restored = cp.restore_byte_memory().unwrap();
        assert!(mem.content_equals(&restored));
        // Digests agree with the live memory's.
        for i in 0..8 {
            let idx = PageIndex::new(i);
            assert_eq!(cp.digest(idx), mem.page_digest(idx));
        }
    }

    #[test]
    fn digest_checkpoint_has_no_bytes() {
        let cp = digest_cp();
        assert!(cp.read_page(PageIndex::new(0)).is_none());
        assert!(cp.restore_byte_memory().is_none());
    }

    #[test]
    fn restore_digest_memory_matches() {
        let cp = digest_cp();
        let mem = cp.restore_digest_memory();
        assert_eq!(mem.digests(), cp.digests());
    }

    #[test]
    fn storage_size_reflects_representation() {
        let cp = digest_cp();
        assert_eq!(cp.storage_size(), Bytes::new(16 * 16));
        let bm = ByteMemory::zeroed(PageCount::new(4));
        let full = Checkpoint::capture_bytes(VmId::new(0), SimTime::EPOCH, &bm);
        assert_eq!(full.storage_size(), Bytes::from_pages(4));
    }

    #[test]
    fn from_parts_rejects_ragged_pages() {
        let res = Checkpoint::from_parts(
            VmId::new(0),
            SimTime::EPOCH,
            CheckpointData::Pages(vec![0u8; 100]),
        );
        assert!(res.is_err());
    }
}
