//! On-disk serialization of checkpoints, with corruption detection.

use bytes::{Buf, BufMut};

use vecycle_hash::{Fnv1a64, Hasher};
use vecycle_types::{Error, PageDigest, SimTime, VmId, PAGE_SIZE};

use crate::{Checkpoint, CheckpointData};

const MAGIC: &[u8; 8] = b"VECYCHK1";
/// Fixed framing bytes around the payload: 32-byte header (magic,
/// version, kind, reserved, vm, timestamp, page count) + 8-byte FNV
/// trailer. Used to estimate page counts of corrupt files from their
/// length alone.
pub(crate) const HEADER_AND_TRAILER: u64 = 40;
const VERSION: u16 = 1;
const KIND_DIGESTS: u8 = 0;
const KIND_PAGES: u8 = 1;

impl Checkpoint {
    /// Serializes the checkpoint to `w`.
    ///
    /// Layout: magic, version, kind, VM id, timestamp, page count,
    /// payload, then an FNV-1a 64 trailer over everything before it.
    /// The trailer catches truncation and bit rot on load — cheap
    /// insurance for data that may sit on a host's disk for days.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_to<W: std::io::Write>(&self, mut w: W) -> vecycle_types::Result<()> {
        let mut buf = Vec::with_capacity(64 + self.storage_size().as_u64() as usize);
        buf.put_slice(MAGIC);
        buf.put_u16(VERSION);
        match self.data() {
            CheckpointData::Digests(_) => buf.put_u8(KIND_DIGESTS),
            CheckpointData::Pages(_) => buf.put_u8(KIND_PAGES),
        }
        buf.put_u8(0); // reserved
        buf.put_u32(self.vm().as_u32());
        buf.put_u64(self.taken_at().since_epoch().as_nanos());
        buf.put_u64(self.page_count().as_u64());
        match self.data() {
            CheckpointData::Digests(digests) => {
                for d in digests {
                    buf.put_slice(d.as_bytes());
                }
            }
            CheckpointData::Pages(bytes) => buf.put_slice(bytes),
        }
        let mut fnv = Fnv1a64::new();
        fnv.update(&buf);
        let trailer = fnv.finalize();
        w.write_all(&buf)?;
        w.write_all(&trailer)?;
        Ok(())
    }

    /// Deserializes a checkpoint previously written by
    /// [`Checkpoint::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on bad magic, version, kind, truncated
    /// payload or trailer mismatch, and [`Error::Io`] on read failures.
    pub fn read_from<R: std::io::Read>(mut r: R) -> vecycle_types::Result<Checkpoint> {
        let mut raw = Vec::new();
        r.read_to_end(&mut raw)?;
        if raw.len() < 8 + 2 + 1 + 1 + 4 + 8 + 8 + 8 {
            return Err(Error::Corrupt {
                detail: format!("checkpoint file too short: {} bytes", raw.len()),
            });
        }
        let (body, trailer) = raw.split_at(raw.len() - 8);
        let mut fnv = Fnv1a64::new();
        fnv.update(body);
        if fnv.finalize() != <[u8; 8]>::try_from(trailer).expect("8 bytes") {
            return Err(Error::Corrupt {
                detail: "checkpoint trailer checksum mismatch".into(),
            });
        }

        let mut buf = body;
        let mut magic = [0u8; 8];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(Error::Corrupt {
                detail: "bad checkpoint magic".into(),
            });
        }
        let version = buf.get_u16();
        if version != VERSION {
            return Err(Error::Corrupt {
                detail: format!("unsupported checkpoint version {version}"),
            });
        }
        let kind = buf.get_u8();
        let _reserved = buf.get_u8();
        let vm = VmId::new(buf.get_u32());
        let taken_at = SimTime::from_epoch(vecycle_types::SimDuration::from_nanos(buf.get_u64()));
        let pages = buf.get_u64();

        // The declared page count is attacker-controlled (a forged
        // trailer reaches this point): multiply with checked arithmetic
        // and validate against the bytes actually present *before*
        // sizing any allocation, so a hostile header can never request
        // more memory than the input's own length.
        let remaining = buf.remaining() as u64;
        let data = match kind {
            KIND_DIGESTS => {
                let need = pages.checked_mul(16).ok_or_else(|| Error::Corrupt {
                    detail: format!("declared page count {pages} overflows digest payload size"),
                })?;
                if remaining != need {
                    return Err(Error::Corrupt {
                        detail: format!("digest payload length {remaining} != expected {need}"),
                    });
                }
                // `pages <= remaining / 16 <= input length`: bounded.
                let mut digests = Vec::with_capacity(pages as usize);
                for _ in 0..pages {
                    let mut d = [0u8; 16];
                    buf.copy_to_slice(&mut d);
                    digests.push(PageDigest::new(d));
                }
                CheckpointData::Digests(digests)
            }
            KIND_PAGES => {
                let need = pages.checked_mul(PAGE_SIZE).ok_or_else(|| Error::Corrupt {
                    detail: format!("declared page count {pages} overflows page payload size"),
                })?;
                if remaining != need {
                    return Err(Error::Corrupt {
                        detail: format!("page payload length {remaining} != expected {need}"),
                    });
                }
                CheckpointData::Pages(buf.copy_to_bytes(need as usize).to_vec())
            }
            other => {
                return Err(Error::Corrupt {
                    detail: format!("unknown checkpoint kind {other}"),
                })
            }
        };
        Checkpoint::from_parts(vm, taken_at, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecycle_mem::{ByteMemory, DigestMemory};
    use vecycle_types::{PageCount, SimDuration};

    fn sample() -> Checkpoint {
        let mem = DigestMemory::with_distinct_content(PageCount::new(32), 3);
        Checkpoint::capture(
            VmId::new(7),
            SimTime::EPOCH + SimDuration::from_hours(5),
            &mem,
        )
    }

    #[test]
    fn digest_checkpoint_round_trips() {
        let cp = sample();
        let mut file = Vec::new();
        cp.write_to(&mut file).unwrap();
        let back = Checkpoint::read_from(&file[..]).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn byte_checkpoint_round_trips() {
        let mem = ByteMemory::with_distinct_content(PageCount::new(4), 11);
        let cp = Checkpoint::capture_bytes(VmId::new(1), SimTime::EPOCH, &mem);
        let mut file = Vec::new();
        cp.write_to(&mut file).unwrap();
        let back = Checkpoint::read_from(&file[..]).unwrap();
        assert_eq!(back, cp);
        assert!(back.restore_byte_memory().unwrap().content_equals(&mem));
    }

    #[test]
    fn truncation_is_detected() {
        let cp = sample();
        let mut file = Vec::new();
        cp.write_to(&mut file).unwrap();
        for cut in [file.len() - 1, file.len() / 2, 10] {
            let err = Checkpoint::read_from(&file[..cut]).unwrap_err();
            assert!(matches!(err, Error::Corrupt { .. }), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn bit_flip_is_detected() {
        let cp = sample();
        let mut file = Vec::new();
        cp.write_to(&mut file).unwrap();
        let mid = file.len() / 2;
        file[mid] ^= 0x40;
        assert!(matches!(
            Checkpoint::read_from(&file[..]),
            Err(Error::Corrupt { .. })
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let cp = sample();
        let mut file = Vec::new();
        cp.write_to(&mut file).unwrap();
        file[0] = b'X';
        // Trailer now mismatches too; either way it must fail Corrupt.
        assert!(matches!(
            Checkpoint::read_from(&file[..]),
            Err(Error::Corrupt { .. })
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let cp = sample();
        let mut file = Vec::new();
        cp.write_to(&mut file).unwrap();
        // Bump version and re-fix the trailer so only the version differs.
        file[9] = 2;
        let body_len = file.len() - 8;
        let mut fnv = Fnv1a64::new();
        fnv.update(&file[..body_len]);
        let t = fnv.finalize();
        file[body_len..].copy_from_slice(&t);
        let err = Checkpoint::read_from(&file[..]).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    /// Recomputes the FNV trailer over `file` so a forged header passes
    /// the outer integrity check and reaches the field parser.
    fn refix_trailer(file: &mut [u8]) {
        let body_len = file.len() - 8;
        let mut fnv = Fnv1a64::new();
        fnv.update(&file[..body_len]);
        let t = fnv.finalize();
        file[body_len..].copy_from_slice(&t);
    }

    #[test]
    fn forged_page_count_is_rejected_before_allocating() {
        let cp = sample();
        let mut file = Vec::new();
        cp.write_to(&mut file).unwrap();
        // Page count lives at offset 24 (magic 8 + version 2 + kind 1 +
        // reserved 1 + vm 4 + timestamp 8). Forge counts whose naive
        // `pages * 16` wraps to a small (or matching) value, plus a
        // plainly huge one: all must fail Corrupt without a giant
        // pre-allocation or an overflow panic.
        for forged in [
            u64::MAX,
            u64::MAX / 16 + 1,
            (1u64 << 60) + cp.page_count().as_u64(), // wraps to the real count * 16
            1 << 32,
        ] {
            let mut f = file.clone();
            f[24..32].copy_from_slice(&forged.to_be_bytes());
            refix_trailer(&mut f);
            let err = Checkpoint::read_from(&f[..]).unwrap_err();
            assert!(
                matches!(err, Error::Corrupt { .. }),
                "pages={forged}: {err}"
            );
        }
    }

    #[test]
    fn forged_kind_with_fixed_trailer_is_rejected() {
        let cp = sample();
        let mut file = Vec::new();
        cp.write_to(&mut file).unwrap();
        file[10] = 7; // unknown kind
        refix_trailer(&mut file);
        let err = Checkpoint::read_from(&file[..]).unwrap_err();
        assert!(err.to_string().contains("kind"), "{err}");
    }

    #[test]
    fn empty_input_is_corrupt_not_panic() {
        assert!(matches!(
            Checkpoint::read_from(&[][..]),
            Err(Error::Corrupt { .. })
        ));
    }
}
