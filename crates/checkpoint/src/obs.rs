//! Metrics export for the checkpoint layer.
//!
//! The checkpoint store itself is passive — indexes are built and
//! partial checkpoints assembled on behalf of a session — so the
//! observability hooks here are free functions a caller invokes at the
//! moment the corresponding artifact exists. Keeping them here (rather
//! than in the session) pins the metric names and label schema next to
//! the data structures they describe.

use vecycle_obs::MetricsRegistry;

use crate::{ChecksumIndex, PartialCheckpoint};

/// Records a freshly built [`ChecksumIndex`]: bumps
/// `checkpoint_index_builds_total{source}` and sets
/// `checkpoint_index_entries{source}` to the number of indexed pages.
/// `source` distinguishes where the digests came from (`"checkpoint"`
/// for a stored image, `"partial"` for a resumed transfer).
pub fn observe_index(metrics: &MetricsRegistry, source: &str, index: &ChecksumIndex) {
    let labels = [("source", source)];
    metrics.inc("checkpoint_index_builds_total", &labels, 1);
    metrics.set_gauge(
        "checkpoint_index_entries",
        &labels,
        index.total_pages() as f64,
    );
}

/// Records a [`PartialCheckpoint`] left behind by an interrupted
/// migration: the landed-page count feeds
/// `checkpoint_partial_landed_pages_total` and the coverage ratio the
/// `checkpoint_partial_coverage` gauge, so a failure sweep can show how
/// much of an aborted leg's work the resume path gets to keep.
pub fn observe_partial(metrics: &MetricsRegistry, partial: &PartialCheckpoint) {
    metrics.inc(
        "checkpoint_partial_landed_pages_total",
        &[],
        partial.landed_pages().as_u64(),
    );
    metrics.set_gauge(
        "checkpoint_partial_coverage",
        &[],
        partial.coverage().as_f64(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecycle_types::{PageDigest, VmId};

    fn digest(id: u64) -> PageDigest {
        PageDigest::from_content_id(id)
    }

    #[test]
    fn index_export_sets_entries_gauge() {
        let index = ChecksumIndex::build(vec![digest(1), digest(2), digest(3)]);
        let m = MetricsRegistry::new();
        observe_index(&m, "checkpoint", &index);
        observe_index(&m, "checkpoint", &index);
        assert_eq!(
            m.counter("checkpoint_index_builds_total", &[("source", "checkpoint")]),
            2
        );
        let snap = m.snapshot();
        let entries = snap
            .gauges
            .iter()
            .find(|g| g.name == "checkpoint_index_entries")
            .unwrap();
        assert!((entries.value - 3.0).abs() < 1e-12);
    }

    #[test]
    fn partial_export_tracks_coverage() {
        let landed = vec![Some(digest(7)), None, Some(digest(9)), None];
        let partial = PartialCheckpoint::new(VmId::new(1), landed);
        let m = MetricsRegistry::new();
        observe_partial(&m, &partial);
        assert_eq!(m.counter("checkpoint_partial_landed_pages_total", &[]), 2);
        let snap = m.snapshot();
        let coverage = snap
            .gauges
            .iter()
            .find(|g| g.name == "checkpoint_partial_coverage")
            .unwrap();
        assert!((coverage.value - 0.5).abs() < 1e-12);
    }
}
