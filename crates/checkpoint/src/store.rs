//! [`CheckpointStore`]: the per-host checkpoint collection.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use vecycle_types::{Bytes, SimTime, VmId};

use crate::Checkpoint;

/// The checkpoints a host keeps on its local disk.
///
/// The paper's scheme stores one checkpoint per VM per visited host and
/// replaces it on every outgoing migration; we additionally keep a small
/// version history (newest first) with byte-budget eviction, since "local
/// storage is cheap" but not infinite.
///
/// The store is internally synchronized — hosts are shared between the
/// scenario driver and the migration engine.
///
/// # Examples
///
/// ```
/// use vecycle_checkpoint::{Checkpoint, CheckpointStore};
/// use vecycle_mem::DigestMemory;
/// use vecycle_types::{PageCount, SimTime, VmId};
///
/// let store = CheckpointStore::new();
/// let vm = VmId::new(3);
/// let mem = DigestMemory::with_distinct_content(PageCount::new(8), 1);
/// store.save(Checkpoint::capture(vm, SimTime::EPOCH, &mem));
/// assert!(store.latest(vm).is_some());
/// assert!(store.latest(VmId::new(9)).is_none());
/// ```
#[derive(Debug)]
pub struct CheckpointStore {
    inner: RwLock<Inner>,
}

#[derive(Debug)]
struct Inner {
    by_vm: HashMap<VmId, Vec<Arc<Checkpoint>>>,
    versions_per_vm: usize,
    used: Bytes,
}

impl CheckpointStore {
    /// Creates a store keeping one checkpoint version per VM (the
    /// paper's behaviour).
    pub fn new() -> Self {
        CheckpointStore::with_versions(1)
    }

    /// Creates a store keeping up to `versions_per_vm` checkpoints per
    /// VM, newest first.
    ///
    /// # Panics
    ///
    /// Panics if `versions_per_vm` is zero.
    pub fn with_versions(versions_per_vm: usize) -> Self {
        assert!(versions_per_vm > 0, "must keep at least one version");
        CheckpointStore {
            inner: RwLock::new(Inner {
                by_vm: HashMap::new(),
                versions_per_vm,
                used: Bytes::ZERO,
            }),
        }
    }

    /// Saves a checkpoint, evicting the oldest version beyond the limit.
    pub fn save(&self, checkpoint: Checkpoint) {
        let mut inner = self.inner.write();
        let size = checkpoint.storage_size();
        let cap = inner.versions_per_vm;
        let versions = inner.by_vm.entry(checkpoint.vm()).or_default();
        versions.insert(0, Arc::new(checkpoint));
        let mut freed = Bytes::ZERO;
        while versions.len() > cap {
            let evicted = versions.pop().expect("len > cap >= 1");
            freed += evicted.storage_size();
        }
        inner.used = (inner.used + size).saturating_sub(freed);
    }

    /// The most recent checkpoint for `vm`, if any.
    pub fn latest(&self, vm: VmId) -> Option<Arc<Checkpoint>> {
        self.inner.read().by_vm.get(&vm)?.first().cloned()
    }

    /// The most recent checkpoint for `vm` taken at or before `at`.
    ///
    /// Scenario drivers use this to ask "what would the host have had on
    /// disk at that point of the schedule?".
    pub fn latest_before(&self, vm: VmId, at: SimTime) -> Option<Arc<Checkpoint>> {
        self.inner
            .read()
            .by_vm
            .get(&vm)?
            .iter()
            .find(|c| c.taken_at() <= at)
            .cloned()
    }

    /// Removes all checkpoints for `vm`, returning how many were dropped.
    pub fn remove(&self, vm: VmId) -> usize {
        let mut inner = self.inner.write();
        match inner.by_vm.remove(&vm) {
            Some(versions) => {
                let freed: Bytes = versions.iter().map(|c| c.storage_size()).sum();
                inner.used = inner.used.saturating_sub(freed);
                versions.len()
            }
            None => 0,
        }
    }

    /// Total bytes of checkpoint data currently stored.
    pub fn used(&self) -> Bytes {
        self.inner.read().used
    }

    /// Number of VMs with at least one checkpoint.
    pub fn vm_count(&self) -> usize {
        self.inner.read().by_vm.len()
    }
}

impl Default for CheckpointStore {
    fn default() -> Self {
        CheckpointStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecycle_mem::DigestMemory;
    use vecycle_types::{PageCount, SimDuration};

    fn cp(vm: u32, hour: u64, seed: u64) -> Checkpoint {
        let mem = DigestMemory::with_distinct_content(PageCount::new(8), seed);
        Checkpoint::capture(
            VmId::new(vm),
            SimTime::EPOCH + SimDuration::from_hours(hour),
            &mem,
        )
    }

    #[test]
    fn latest_returns_newest() {
        let store = CheckpointStore::with_versions(2);
        store.save(cp(1, 0, 10));
        store.save(cp(1, 5, 11));
        let latest = store.latest(VmId::new(1)).unwrap();
        assert_eq!(
            latest.taken_at(),
            SimTime::EPOCH + SimDuration::from_hours(5)
        );
    }

    #[test]
    fn version_limit_evicts_oldest() {
        let store = CheckpointStore::new(); // 1 version
        store.save(cp(1, 0, 10));
        let used_one = store.used();
        store.save(cp(1, 5, 11));
        assert_eq!(store.used(), used_one); // replaced, not accumulated
        let latest = store.latest(VmId::new(1)).unwrap();
        assert_eq!(
            latest.taken_at(),
            SimTime::EPOCH + SimDuration::from_hours(5)
        );
    }

    #[test]
    fn latest_before_respects_time() {
        let store = CheckpointStore::with_versions(3);
        store.save(cp(1, 0, 10));
        store.save(cp(1, 10, 11));
        let at5 = store
            .latest_before(VmId::new(1), SimTime::EPOCH + SimDuration::from_hours(5))
            .unwrap();
        assert_eq!(at5.taken_at(), SimTime::EPOCH);
        assert!(store.latest_before(VmId::new(2), SimTime::EPOCH).is_none());
    }

    #[test]
    fn remove_frees_bytes() {
        let store = CheckpointStore::with_versions(2);
        store.save(cp(1, 0, 10));
        store.save(cp(2, 0, 20));
        assert_eq!(store.vm_count(), 2);
        assert_eq!(store.remove(VmId::new(1)), 1);
        assert_eq!(store.vm_count(), 1);
        store.remove(VmId::new(2));
        assert_eq!(store.used(), Bytes::ZERO);
    }

    #[test]
    fn vms_are_isolated() {
        let store = CheckpointStore::new();
        store.save(cp(1, 0, 10));
        store.save(cp(2, 3, 20));
        assert_eq!(store.latest(VmId::new(1)).unwrap().vm(), VmId::new(1));
        assert_eq!(store.latest(VmId::new(2)).unwrap().vm(), VmId::new(2));
    }

    #[test]
    #[should_panic(expected = "at least one version")]
    fn zero_versions_panics() {
        let _ = CheckpointStore::with_versions(0);
    }
}
