//! [`CheckpointStore`]: the per-host checkpoint collection.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use vecycle_types::{Bytes, SimTime, VmId};

use crate::lifecycle::{EvictionPolicy, EvictionReason, EvictionRecord, GoneReason, SaveOutcome};
use crate::Checkpoint;

/// The checkpoints a host keeps on its local disk.
///
/// The paper's scheme stores one checkpoint per VM per visited host and
/// replaces it on every outgoing migration; we additionally keep a small
/// version history (newest first) with byte-budget eviction, since "local
/// storage is cheap" but not infinite. An optional byte quota turns every
/// save into an admission decision: victims are chosen by a deterministic
/// [`EvictionPolicy`] and reported back so the host layer can mirror the
/// eviction to its [`DiskStore`](crate::DiskStore).
///
/// A VM whose last checkpoint was evicted (or quarantined by a scrub
/// pass) leaves a [`GoneReason`] tombstone, so a later migration can tell
/// "never had one" from "had one and lost it" and degrade with the right
/// cause.
///
/// The store is internally synchronized — hosts are shared between the
/// scenario driver and the migration engine.
///
/// # Examples
///
/// ```
/// use vecycle_checkpoint::{Checkpoint, CheckpointStore};
/// use vecycle_mem::DigestMemory;
/// use vecycle_types::{PageCount, SimTime, VmId};
///
/// let store = CheckpointStore::new();
/// let vm = VmId::new(3);
/// let mem = DigestMemory::with_distinct_content(PageCount::new(8), 1);
/// store.save(Checkpoint::capture(vm, SimTime::EPOCH, &mem));
/// assert!(store.latest(vm).is_some());
/// assert!(store.latest(VmId::new(9)).is_none());
/// ```
#[derive(Debug)]
pub struct CheckpointStore {
    inner: RwLock<Inner>,
}

/// One stored checkpoint plus the bookkeeping eviction policies need.
#[derive(Debug)]
struct Entry {
    checkpoint: Arc<Checkpoint>,
    /// Monotonic insertion sequence — the final, always-distinct
    /// tie-breaker for every policy.
    seq: u64,
    /// Monotonic touch sequence of the last recycle hit (0 = never
    /// recycled), driving [`EvictionPolicy::LruByRecycle`].
    recycled: u64,
}

/// Running estimate of how often a VM's checkpoints land on this host —
/// the "return period" of workload-cycle studies. A plain mean of
/// save-to-save gaps in nanoseconds; deterministic because simulated
/// time is.
#[derive(Debug, Clone, Copy)]
struct ReturnPeriod {
    last_save: SimTime,
    mean_nanos: f64,
    gaps: u64,
}

#[derive(Debug)]
struct Inner {
    // BTreeMaps keep every iteration (victim scans, catalog listings)
    // in VmId order — eviction must be deterministic.
    by_vm: BTreeMap<VmId, Vec<Entry>>,
    versions_per_vm: usize,
    used: Bytes,
    quota: Option<Bytes>,
    policy: EvictionPolicy,
    gone: BTreeMap<VmId, GoneReason>,
    periods: BTreeMap<VmId, ReturnPeriod>,
    next_seq: u64,
    next_touch: u64,
}

impl Inner {
    /// Picks the next eviction victim under `policy`, excluding the
    /// just-saved checkpoint (`protect_vm`'s newest entry). Returns the
    /// owning VM and version index.
    ///
    /// Scores are built so that the *maximum* wins and ties break
    /// deterministically: every comparison ends in the unique insertion
    /// `seq`.
    fn pick_victim(&self, protect_vm: VmId, now: SimTime) -> Option<(VmId, usize)> {
        let mut best: Option<((u64, u64, u64), VmId, usize)> = None;
        for (&vm, versions) in &self.by_vm {
            for (idx, entry) in versions.iter().enumerate() {
                if vm == protect_vm && idx == 0 {
                    continue; // never evict what admission just let in
                }
                let key = self.victim_score(vm, entry, now);
                if best.as_ref().is_none_or(|(b, _, _)| key > *b) {
                    best = Some((key, vm, idx));
                }
            }
        }
        best.map(|(_, vm, idx)| (vm, idx))
    }

    /// Lexicographic score: higher evicts first. The last component is
    /// "older insertion wins", encoded as `u64::MAX - seq` so it still
    /// sorts under "maximum wins".
    fn victim_score(&self, vm: VmId, entry: &Entry, now: SimTime) -> (u64, u64, u64) {
        let age = now
            .checked_duration_since(entry.checkpoint.taken_at())
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        let older = u64::MAX - entry.seq;
        match self.policy {
            EvictionPolicy::OldestFirst => (age, older, 0),
            // Never-recycled entries have recycled == 0, so
            // `MAX - recycled` puts them first; among equals, oldest.
            EvictionPolicy::LruByRecycle => (u64::MAX - entry.recycled, age, older),
            EvictionPolicy::LargestFirst => (entry.checkpoint.storage_size().as_u64(), age, older),
            EvictionPolicy::StalenessScore => {
                let period = self
                    .periods
                    .get(&vm)
                    .filter(|p| p.gaps > 0)
                    .map(|p| p.mean_nanos)
                    .unwrap_or(EvictionPolicy::DEFAULT_RETURN_PERIOD.as_nanos() as f64)
                    .max(1.0);
                // Fixed-point age/period ratio (millionths) keeps the
                // score integral and totally ordered.
                let score = (age as f64 / period * 1e6) as u64;
                (score, age, older)
            }
        }
    }

    /// Removes version `idx` of `vm`, updating byte accounting and
    /// leaving a tombstone when it was the last version.
    fn evict_at(&mut self, vm: VmId, idx: usize, reason: EvictionReason) -> EvictionRecord {
        let versions = self.by_vm.get_mut(&vm).expect("victim exists");
        let entry = versions.remove(idx);
        let size = entry.checkpoint.storage_size();
        self.used = self.used.saturating_sub(size);
        let last_version = versions.is_empty();
        if last_version {
            self.by_vm.remove(&vm);
            self.gone.insert(vm, GoneReason::Evicted);
        }
        EvictionRecord {
            vm,
            taken_at: entry.checkpoint.taken_at(),
            size,
            reason,
            last_version,
        }
    }

    fn note_save_time(&mut self, vm: VmId, at: SimTime) {
        match self.periods.get_mut(&vm) {
            Some(p) => {
                if let Some(gap) = at.checked_duration_since(p.last_save) {
                    let gap = gap.as_nanos() as f64;
                    p.gaps += 1;
                    p.mean_nanos += (gap - p.mean_nanos) / p.gaps as f64;
                }
                p.last_save = at;
            }
            None => {
                self.periods.insert(
                    vm,
                    ReturnPeriod {
                        last_save: at,
                        mean_nanos: 0.0,
                        gaps: 0,
                    },
                );
            }
        }
    }
}

impl CheckpointStore {
    /// Creates a store keeping one checkpoint version per VM (the
    /// paper's behaviour), with no byte quota.
    pub fn new() -> Self {
        CheckpointStore::with_versions(1)
    }

    /// Creates a store keeping up to `versions_per_vm` checkpoints per
    /// VM, newest first.
    ///
    /// # Panics
    ///
    /// Panics if `versions_per_vm` is zero.
    pub fn with_versions(versions_per_vm: usize) -> Self {
        assert!(versions_per_vm > 0, "must keep at least one version");
        CheckpointStore {
            inner: RwLock::new(Inner {
                by_vm: BTreeMap::new(),
                versions_per_vm,
                used: Bytes::ZERO,
                quota: None,
                policy: EvictionPolicy::default(),
                gone: BTreeMap::new(),
                periods: BTreeMap::new(),
                next_seq: 0,
                next_touch: 0,
            }),
        }
    }

    /// Caps the store at `quota` bytes, evicting under `policy` when a
    /// save would exceed it.
    pub fn with_quota(self, quota: Bytes, policy: EvictionPolicy) -> Self {
        {
            let mut inner = self.inner.write();
            inner.quota = Some(quota);
            inner.policy = policy;
        }
        self
    }

    /// The configured byte quota, if any.
    pub fn quota(&self) -> Option<Bytes> {
        self.inner.read().quota
    }

    /// The eviction policy applied under quota pressure.
    pub fn policy(&self) -> EvictionPolicy {
        self.inner.read().policy
    }

    /// Saves a checkpoint, evicting the oldest version beyond the limit.
    /// Convenience wrapper over [`CheckpointStore::save_with_outcome`]
    /// for callers that don't track evictions.
    pub fn save(&self, checkpoint: Checkpoint) {
        self.save_with_outcome(checkpoint);
    }

    /// Saves a checkpoint through admission + eviction.
    ///
    /// A checkpoint larger than the whole quota is refused outright
    /// (`stored == false`, nothing evicted). Otherwise it is stored,
    /// versions beyond the per-VM limit are dropped
    /// ([`EvictionReason::Version`]), and then victims are evicted under
    /// the configured [`EvictionPolicy`] until the store fits its quota
    /// ([`EvictionReason::Quota`]) — never the checkpoint just saved.
    /// Saving clears any tombstone for the VM.
    pub fn save_with_outcome(&self, checkpoint: Checkpoint) -> SaveOutcome {
        let mut inner = self.inner.write();
        let size = checkpoint.storage_size();
        let now = checkpoint.taken_at();
        if inner.quota.is_some_and(|q| size > q) {
            return SaveOutcome::refused();
        }
        let vm = checkpoint.vm();
        inner.note_save_time(vm, now);
        inner.gone.remove(&vm);
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let cap = inner.versions_per_vm;
        let versions = inner.by_vm.entry(vm).or_default();
        versions.insert(
            0,
            Entry {
                checkpoint: Arc::new(checkpoint),
                seq,
                recycled: 0,
            },
        );
        let mut evicted = Vec::new();
        let mut freed = Bytes::ZERO;
        while versions.len() > cap {
            let entry = versions.pop().expect("len > cap >= 1");
            let dropped = entry.checkpoint.storage_size();
            evicted.push(EvictionRecord {
                vm,
                taken_at: entry.checkpoint.taken_at(),
                size: dropped,
                reason: EvictionReason::Version,
                // A newer version was just inserted above, so this can
                // never be the last one.
                last_version: false,
            });
            freed += dropped;
        }
        inner.used = (inner.used + size).saturating_sub(freed);
        while inner.quota.is_some_and(|q| inner.used > q) {
            let (victim_vm, idx) = inner
                .pick_victim(vm, now)
                .expect("admission guaranteed the new checkpoint fits alone");
            evicted.push(inner.evict_at(victim_vm, idx, EvictionReason::Quota));
        }
        SaveOutcome {
            stored: true,
            evicted,
        }
    }

    /// The most recent checkpoint for `vm`, if any.
    pub fn latest(&self, vm: VmId) -> Option<Arc<Checkpoint>> {
        let inner = self.inner.read();
        Some(inner.by_vm.get(&vm)?.first()?.checkpoint.clone())
    }

    /// The most recent checkpoint for `vm` taken at or before `at`.
    ///
    /// Scenario drivers use this to ask "what would the host have had on
    /// disk at that point of the schedule?".
    pub fn latest_before(&self, vm: VmId, at: SimTime) -> Option<Arc<Checkpoint>> {
        self.inner
            .read()
            .by_vm
            .get(&vm)?
            .iter()
            .find(|e| e.checkpoint.taken_at() <= at)
            .map(|e| e.checkpoint.clone())
    }

    /// Marks `vm`'s newest checkpoint as just recycled by a migration,
    /// feeding [`EvictionPolicy::LruByRecycle`]. A no-op for unknown VMs.
    pub fn mark_recycled(&self, vm: VmId) {
        let mut inner = self.inner.write();
        inner.next_touch += 1;
        let touch = inner.next_touch;
        if let Some(entry) = inner.by_vm.get_mut(&vm).and_then(|v| v.first_mut()) {
            entry.recycled = touch;
        }
    }

    /// Removes all checkpoints for `vm`, returning how many were dropped.
    /// Leaves no tombstone — this is administrative removal, not
    /// pressure eviction.
    pub fn remove(&self, vm: VmId) -> usize {
        let mut inner = self.inner.write();
        match inner.by_vm.remove(&vm) {
            Some(versions) => {
                let freed: Bytes = versions.iter().map(|e| e.checkpoint.storage_size()).sum();
                inner.used = inner.used.saturating_sub(freed);
                versions.len()
            }
            None => 0,
        }
    }

    /// Drops the entire in-memory catalog — what a host crash does to
    /// RAM-resident state. Tombstones and return-period estimates die
    /// with it; only the [`DiskStore`](crate::DiskStore) survives.
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        inner.by_vm.clear();
        inner.gone.clear();
        inner.periods.clear();
        inner.used = Bytes::ZERO;
    }

    /// The tombstone for `vm`, if its last checkpoint was evicted or
    /// quarantined since the last successful save.
    pub fn gone(&self, vm: VmId) -> Option<GoneReason> {
        self.inner.read().gone.get(&vm).copied()
    }

    /// Records that `vm`'s checkpoint was dropped under disk pressure
    /// without ever being admitted (e.g. a re-warm after restart found
    /// it no longer fits the quota): any in-memory versions are dropped
    /// and a [`GoneReason::Evicted`] tombstone is left.
    pub fn note_evicted(&self, vm: VmId) {
        self.remove(vm);
        self.inner.write().gone.insert(vm, GoneReason::Evicted);
    }

    /// Records that `vm`'s checkpoint was quarantined by a scrub pass
    /// (corrupt on disk): any in-memory versions are dropped and a
    /// [`GoneReason::Quarantined`] tombstone is left.
    pub fn note_quarantined(&self, vm: VmId) {
        self.remove(vm);
        self.inner.write().gone.insert(vm, GoneReason::Quarantined);
    }

    /// Total bytes of checkpoint data currently stored.
    pub fn used(&self) -> Bytes {
        self.inner.read().used
    }

    /// Number of VMs with at least one checkpoint.
    pub fn vm_count(&self) -> usize {
        self.inner.read().by_vm.len()
    }

    /// The VMs with at least one checkpoint, in id order — the
    /// in-memory catalog, for comparison against
    /// [`DiskStore::vm_ids`](crate::DiskStore::vm_ids).
    pub fn vm_ids(&self) -> Vec<VmId> {
        self.inner.read().by_vm.keys().copied().collect()
    }
}

impl Default for CheckpointStore {
    fn default() -> Self {
        CheckpointStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecycle_mem::DigestMemory;
    use vecycle_types::{PageCount, SimDuration};

    fn cp(vm: u32, hour: u64, seed: u64) -> Checkpoint {
        cp_pages(vm, hour, seed, 8)
    }

    fn cp_pages(vm: u32, hour: u64, seed: u64, pages: u64) -> Checkpoint {
        let mem = DigestMemory::with_distinct_content(PageCount::new(pages), seed);
        Checkpoint::capture(
            VmId::new(vm),
            SimTime::EPOCH + SimDuration::from_hours(hour),
            &mem,
        )
    }

    #[test]
    fn latest_returns_newest() {
        let store = CheckpointStore::with_versions(2);
        store.save(cp(1, 0, 10));
        store.save(cp(1, 5, 11));
        let latest = store.latest(VmId::new(1)).unwrap();
        assert_eq!(
            latest.taken_at(),
            SimTime::EPOCH + SimDuration::from_hours(5)
        );
    }

    #[test]
    fn version_limit_evicts_oldest() {
        let store = CheckpointStore::new(); // 1 version
        store.save(cp(1, 0, 10));
        let used_one = store.used();
        let outcome = store.save_with_outcome(cp(1, 5, 11));
        assert_eq!(store.used(), used_one); // replaced, not accumulated
        assert!(outcome.stored);
        assert_eq!(outcome.evicted.len(), 1);
        assert_eq!(outcome.evicted[0].reason, EvictionReason::Version);
        assert!(!outcome.evicted[0].last_version);
        let latest = store.latest(VmId::new(1)).unwrap();
        assert_eq!(
            latest.taken_at(),
            SimTime::EPOCH + SimDuration::from_hours(5)
        );
    }

    #[test]
    fn latest_before_respects_time() {
        let store = CheckpointStore::with_versions(3);
        store.save(cp(1, 0, 10));
        store.save(cp(1, 10, 11));
        let at5 = store
            .latest_before(VmId::new(1), SimTime::EPOCH + SimDuration::from_hours(5))
            .unwrap();
        assert_eq!(at5.taken_at(), SimTime::EPOCH);
        assert!(store.latest_before(VmId::new(2), SimTime::EPOCH).is_none());
    }

    #[test]
    fn remove_frees_bytes() {
        let store = CheckpointStore::with_versions(2);
        store.save(cp(1, 0, 10));
        store.save(cp(2, 0, 20));
        assert_eq!(store.vm_count(), 2);
        assert_eq!(store.remove(VmId::new(1)), 1);
        assert_eq!(store.vm_count(), 1);
        store.remove(VmId::new(2));
        assert_eq!(store.used(), Bytes::ZERO);
    }

    #[test]
    fn vms_are_isolated() {
        let store = CheckpointStore::new();
        store.save(cp(1, 0, 10));
        store.save(cp(2, 3, 20));
        assert_eq!(store.latest(VmId::new(1)).unwrap().vm(), VmId::new(1));
        assert_eq!(store.latest(VmId::new(2)).unwrap().vm(), VmId::new(2));
    }

    #[test]
    #[should_panic(expected = "at least one version")]
    fn zero_versions_panics() {
        let _ = CheckpointStore::with_versions(0);
    }

    /// Quota for exactly `n` eight-page digest checkpoints.
    fn quota_for(n: u64) -> Bytes {
        let one = cp(0, 0, 1).storage_size();
        Bytes::new(one.as_u64() * n)
    }

    #[test]
    fn quota_evicts_oldest_first() {
        let store =
            CheckpointStore::with_versions(4).with_quota(quota_for(2), EvictionPolicy::OldestFirst);
        store.save(cp(1, 0, 10));
        store.save(cp(2, 1, 20));
        let outcome = store.save_with_outcome(cp(3, 2, 30));
        assert!(outcome.stored);
        assert_eq!(outcome.evicted.len(), 1);
        let record = &outcome.evicted[0];
        assert_eq!(record.vm, VmId::new(1));
        assert_eq!(record.reason, EvictionReason::Quota);
        assert!(record.last_version);
        assert_eq!(store.gone(VmId::new(1)), Some(GoneReason::Evicted));
        assert!(store.used() <= quota_for(2));
        // A later save for vm 1 clears the tombstone.
        store.save(cp(1, 3, 11));
        assert_eq!(store.gone(VmId::new(1)), None);
    }

    #[test]
    fn oversized_checkpoint_is_refused() {
        let store = CheckpointStore::new().with_quota(Bytes::new(16), EvictionPolicy::OldestFirst);
        store.save(cp(7, 0, 1)); // 8 pages * 16 bytes = 128 > 16
        let outcome = store.save_with_outcome(cp(7, 1, 2));
        assert!(!outcome.stored);
        assert!(outcome.evicted.is_empty());
        assert_eq!(store.vm_count(), 0);
        assert_eq!(store.used(), Bytes::ZERO);
    }

    #[test]
    fn lru_by_recycle_protects_the_hot_checkpoint() {
        let store = CheckpointStore::with_versions(4)
            .with_quota(quota_for(2), EvictionPolicy::LruByRecycle);
        store.save(cp(1, 0, 10));
        store.save(cp(2, 1, 20));
        store.mark_recycled(VmId::new(1)); // vm 1 is hot, vm 2 is cold
        let outcome = store.save_with_outcome(cp(3, 2, 30));
        assert_eq!(outcome.evicted[0].vm, VmId::new(2));
        assert!(store.latest(VmId::new(1)).is_some());
    }

    #[test]
    fn largest_first_evicts_the_big_one() {
        let big = cp_pages(1, 5, 10, 64);
        let quota = Bytes::new(big.storage_size().as_u64() + 2 * quota_for(1).as_u64());
        let store =
            CheckpointStore::with_versions(4).with_quota(quota, EvictionPolicy::LargestFirst);
        store.save(big);
        store.save(cp(2, 6, 20));
        store.save(cp(3, 7, 30));
        // One more small save overflows; the big (and newest!) vm-1
        // checkpoint goes first under LargestFirst.
        let outcome = store.save_with_outcome(cp(4, 8, 40));
        assert_eq!(outcome.evicted[0].vm, VmId::new(1));
    }

    #[test]
    fn staleness_score_weighs_age_against_return_period() {
        let store = CheckpointStore::with_versions(4)
            .with_quota(quota_for(2), EvictionPolicy::StalenessScore);
        // vm 1 returns hourly (period ~1h); vm 2 has no observed period
        // (assumed 24h). At hour 30, vm 1's newest checkpoint is 2h ≈
        // 2 periods stale; vm 2's is 25h ≈ 1.04 periods stale. The
        // cycle-aware policy evicts vm 1 even though vm 2 is older.
        for h in 0..=28 {
            store.save(cp(1, h, h));
        }
        store.save(cp(2, 5, 99));
        let outcome = store.save_with_outcome(cp(3, 30, 42));
        assert_eq!(outcome.evicted[0].vm, VmId::new(1));
        // OldestFirst would have picked vm 2's hour-5 checkpoint.
    }

    #[test]
    fn quarantine_leaves_tombstone_and_frees_bytes() {
        let store = CheckpointStore::new();
        store.save(cp(4, 0, 1));
        store.note_quarantined(VmId::new(4));
        assert!(store.latest(VmId::new(4)).is_none());
        assert_eq!(store.gone(VmId::new(4)), Some(GoneReason::Quarantined));
        assert_eq!(store.used(), Bytes::ZERO);
        // clear() wipes tombstones too — a crash loses that knowledge.
        store.clear();
        assert_eq!(store.gone(VmId::new(4)), None);
    }

    #[test]
    fn eviction_order_is_deterministic() {
        let run = || {
            let store = CheckpointStore::with_versions(4)
                .with_quota(quota_for(3), EvictionPolicy::OldestFirst);
            let mut order = Vec::new();
            for i in 0..12u32 {
                let outcome = store.save_with_outcome(cp(i % 5, i as u64, i as u64));
                order.extend(outcome.evicted.iter().map(|r| (r.vm, r.taken_at)));
            }
            order
        };
        assert_eq!(run(), run());
    }
}
