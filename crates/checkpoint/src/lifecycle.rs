//! Checkpoint lifecycle vocabulary: eviction policies, eviction
//! records, and tombstones.
//!
//! "Local storage is cheap" (§2) but not infinite: once a host carries
//! a byte budget, every save becomes an admission decision and *which*
//! checkpoint gets evicted under pressure decides how much of the
//! paper's traffic reduction survives. Workload-cycle studies (Baruchi
//! et al.) show VMs return to hosts on predictable periods, so the
//! cycle-aware [`EvictionPolicy::StalenessScore`] weighs a checkpoint's
//! age against its VM's observed return period instead of treating all
//! staleness alike.
//!
//! Everything here is deterministic: victim selection depends only on
//! store contents and simulated time, never on wall clock or map
//! iteration order.

use vecycle_types::{Bytes, SimDuration, SimTime, VmId};

/// How a [`CheckpointStore`](crate::CheckpointStore) picks eviction
/// victims when a save pushes it over its byte quota.
///
/// All policies are deterministic; ties break towards the oldest
/// checkpoint, then insertion order. The just-saved checkpoint is never
/// a victim — admission already guaranteed it fits the quota alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvictionPolicy {
    /// Evict the checkpoint with the oldest capture time.
    #[default]
    OldestFirst,
    /// Evict the checkpoint least recently recycled by a migration
    /// (never-recycled checkpoints go first, oldest capture first).
    LruByRecycle,
    /// Evict the checkpoint occupying the most bytes.
    LargestFirst,
    /// Evict the checkpoint with the worst age-to-return-period ratio:
    /// a checkpoint two return periods stale is deader than one half a
    /// period stale, even if the latter is older in absolute terms.
    /// VMs with no observed period yet assume
    /// [`EvictionPolicy::DEFAULT_RETURN_PERIOD`].
    StalenessScore,
}

impl EvictionPolicy {
    /// Assumed return period for a VM the store has only seen once —
    /// the paper's headline experiment revisits hosts on a daily cycle.
    pub const DEFAULT_RETURN_PERIOD: SimDuration = SimDuration::from_hours(24);

    /// Stable snake_case label for metrics
    /// (`ckpt_evictions_total{policy=…}`) and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            EvictionPolicy::OldestFirst => "oldest_first",
            EvictionPolicy::LruByRecycle => "lru_by_recycle",
            EvictionPolicy::LargestFirst => "largest_first",
            EvictionPolicy::StalenessScore => "staleness_score",
        }
    }

    /// Parses a CLI-flag spelling (`oldest`, `lru`, `largest`,
    /// `staleness`, or any full label).
    pub fn parse(s: &str) -> Option<EvictionPolicy> {
        match s {
            "oldest" | "oldest_first" => Some(EvictionPolicy::OldestFirst),
            "lru" | "lru_by_recycle" => Some(EvictionPolicy::LruByRecycle),
            "largest" | "largest_first" => Some(EvictionPolicy::LargestFirst),
            "staleness" | "staleness_score" => Some(EvictionPolicy::StalenessScore),
            _ => None,
        }
    }
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a checkpoint left the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvictionReason {
    /// Pushed out of the per-VM version history by a newer save.
    Version,
    /// Evicted to bring the store back under its byte quota.
    Quota,
}

impl EvictionReason {
    /// Stable snake_case label for metrics
    /// (`ckpt_evictions_total{reason=…}`).
    pub fn label(&self) -> &'static str {
        match self {
            EvictionReason::Version => "version",
            EvictionReason::Quota => "quota",
        }
    }
}

/// One checkpoint evicted during a save — enough for the host layer to
/// mirror the eviction to disk and for the session to narrate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictionRecord {
    /// The VM whose checkpoint was evicted.
    pub vm: VmId,
    /// When the evicted checkpoint was captured.
    pub taken_at: SimTime,
    /// Bytes freed.
    pub size: Bytes,
    /// Why it was evicted.
    pub reason: EvictionReason,
    /// True when this was the VM's last stored version — the host must
    /// delete the VM's disk file, and the store leaves an
    /// [`Evicted`](GoneReason::Evicted) tombstone.
    pub last_version: bool,
}

/// Why a VM has *no* checkpoint where one used to be. Distinguishes "we
/// chose to drop it" from "it rotted on disk" so a later migration can
/// degrade with the right cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GoneReason {
    /// Evicted under disk pressure.
    Evicted,
    /// Failed checksum verification during a scrub pass and was
    /// quarantined (file deleted, never restored from).
    Quarantined,
}

impl GoneReason {
    /// Stable snake_case label for events and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            GoneReason::Evicted => "evicted",
            GoneReason::Quarantined => "quarantined",
        }
    }
}

/// What a quota-governed save did: whether the checkpoint was admitted,
/// and which victims were evicted to make room.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SaveOutcome {
    /// False when the checkpoint alone exceeds the quota and admission
    /// refused it outright (nothing was evicted for a refused save).
    pub stored: bool,
    /// Checkpoints evicted by this save, in eviction order.
    pub evicted: Vec<EvictionRecord>,
}

impl SaveOutcome {
    /// A refused admission: nothing stored, nothing evicted.
    pub fn refused() -> SaveOutcome {
        SaveOutcome {
            stored: false,
            evicted: Vec::new(),
        }
    }

    /// VMs whose *last* version this save evicted — the set whose disk
    /// files must be removed to keep disk ≡ catalog.
    pub fn fully_evicted_vms(&self) -> impl Iterator<Item = VmId> + '_ {
        self.evicted.iter().filter(|r| r.last_version).map(|r| r.vm)
    }
}
