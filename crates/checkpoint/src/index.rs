//! Checksum → page-offset indexes over a checkpoint (§3.3).

use std::collections::HashMap;

use vecycle_types::{PageDigest, PageIndex};

/// Common interface of the checkpoint indexes.
///
/// The destination builds one of these while sequentially reading the
/// checkpoint file, then answers two queries per received message: *is
/// this checksum present?* and *at which checkpoint offset?* (Listing 1's
/// `lookup(checksum)`).
pub trait PageLookup {
    /// True if any page with this digest exists in the checkpoint.
    fn contains(&self, digest: PageDigest) -> bool;

    /// The checkpoint page holding this digest (first occurrence), if any.
    fn lookup(&self, digest: PageDigest) -> Option<PageIndex>;

    /// Number of distinct digests indexed.
    fn distinct(&self) -> usize;
}

/// The paper's index: a sorted array searched with binary search.
///
/// §3.3: "We currently keep the checksums and their offsets in a sorted
/// list, such that we can use binary search to quickly find the offset
/// for a given checksum."
///
/// # Examples
///
/// ```
/// use vecycle_checkpoint::{ChecksumIndex, PageLookup};
/// use vecycle_types::{PageDigest, PageIndex};
///
/// let digests = vec![
///     PageDigest::from_content_id(10),
///     PageDigest::from_content_id(20),
///     PageDigest::from_content_id(10), // duplicate content
/// ];
/// let index = ChecksumIndex::build(digests);
/// assert_eq!(index.distinct(), 2);
/// // Duplicate digests resolve to their first offset.
/// assert_eq!(
///     index.lookup(PageDigest::from_content_id(10)),
///     Some(PageIndex::new(0))
/// );
/// assert!(index.lookup(PageDigest::from_content_id(99)).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct ChecksumIndex {
    // Sorted by digest; for duplicate digests only the smallest offset
    // is kept (any copy of the content serves a restore equally well).
    entries: Vec<(PageDigest, PageIndex)>,
    total_pages: u64,
}

impl ChecksumIndex {
    /// Builds the index from per-page digests in page order.
    pub fn build(digests: Vec<PageDigest>) -> Self {
        let total_pages = digests.len() as u64;
        let mut entries: Vec<(PageDigest, PageIndex)> = digests
            .into_iter()
            .enumerate()
            .map(|(i, d)| (d, PageIndex::new(i as u64)))
            .collect();
        // Sort by digest, then offset, so dedup keeps the first offset.
        entries.sort_unstable();
        entries.dedup_by_key(|(d, _)| *d);
        ChecksumIndex {
            entries,
            total_pages,
        }
    }

    /// Number of pages the underlying checkpoint holds (with duplicates).
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// All indexed digests in sorted order — what the destination sends
    /// to the source in the bulk checksum pre-exchange (§3.2).
    pub fn digests(&self) -> impl Iterator<Item = PageDigest> + '_ {
        self.entries.iter().map(|(d, _)| *d)
    }

    /// Wire size of the bulk checksum exchange: 16 bytes per distinct
    /// digest (the paper estimates 16 MiB for a 4 GiB VM with unique
    /// pages).
    pub fn wire_size(&self) -> vecycle_types::Bytes {
        vecycle_types::Bytes::new(self.entries.len() as u64 * 16)
    }
}

impl PageLookup for ChecksumIndex {
    fn contains(&self, digest: PageDigest) -> bool {
        self.entries
            .binary_search_by_key(&digest, |(d, _)| *d)
            .is_ok()
    }

    fn lookup(&self, digest: PageDigest) -> Option<PageIndex> {
        self.entries
            .binary_search_by_key(&digest, |(d, _)| *d)
            .ok()
            .map(|i| self.entries[i].1)
    }

    fn distinct(&self) -> usize {
        self.entries.len()
    }
}

/// A hash-map index — the ablation alternative to the sorted array.
///
/// Same semantics as [`ChecksumIndex`]; O(1) expected lookups at the
/// cost of a larger build-time allocation. The `index_lookup` bench
/// compares the two.
#[derive(Debug, Clone)]
pub struct HashChecksumIndex {
    map: HashMap<PageDigest, PageIndex>,
}

impl HashChecksumIndex {
    /// Builds the index from per-page digests in page order.
    pub fn build(digests: Vec<PageDigest>) -> Self {
        let mut map = HashMap::with_capacity(digests.len());
        for (i, d) in digests.into_iter().enumerate() {
            // Keep the first offset for duplicate contents.
            map.entry(d).or_insert_with(|| PageIndex::new(i as u64));
        }
        HashChecksumIndex { map }
    }
}

impl PageLookup for HashChecksumIndex {
    fn contains(&self, digest: PageDigest) -> bool {
        self.map.contains_key(&digest)
    }

    fn lookup(&self, digest: PageDigest) -> Option<PageIndex> {
        self.map.get(&digest).copied()
    }

    fn distinct(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(id: u64) -> PageDigest {
        PageDigest::from_content_id(id)
    }

    #[test]
    fn build_and_lookup() {
        let index = ChecksumIndex::build(vec![d(5), d(3), d(5), d(1)]);
        assert_eq!(index.total_pages(), 4);
        assert_eq!(index.distinct(), 3);
        assert_eq!(index.lookup(d(3)), Some(PageIndex::new(1)));
        assert_eq!(index.lookup(d(5)), Some(PageIndex::new(0)));
        assert!(!index.contains(d(42)));
    }

    #[test]
    fn digests_are_sorted() {
        let index = ChecksumIndex::build(vec![d(9), d(2), d(7)]);
        let v: Vec<_> = index.digests().collect();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn wire_size_is_16_bytes_per_distinct() {
        let index = ChecksumIndex::build(vec![d(1), d(1), d(2)]);
        assert_eq!(index.wire_size().as_u64(), 32);
    }

    #[test]
    fn paper_wire_size_example() {
        // "a 4 GiB VM has 2^20 pages ... 2^20 * 2^4 bytes = 16 MiB of MD5
        // checksums" — with all-unique pages.
        let n = 1u64 << 20;
        let digests: Vec<_> = (0..n).map(|i| d(i + 1)).collect();
        let index = ChecksumIndex::build(digests);
        assert_eq!(
            index.wire_size(),
            vecycle_types::Bytes::from_mib(16)
        );
    }

    #[test]
    fn hash_index_agrees_with_sorted_index() {
        let digests: Vec<_> = [5u64, 3, 5, 1, 8, 3].iter().map(|&i| d(i)).collect();
        let sorted = ChecksumIndex::build(digests.clone());
        let hashed = HashChecksumIndex::build(digests.clone());
        assert_eq!(sorted.distinct(), hashed.distinct());
        for probe in [1u64, 2, 3, 4, 5, 8, 9] {
            assert_eq!(sorted.contains(d(probe)), hashed.contains(d(probe)));
            assert_eq!(sorted.lookup(d(probe)), hashed.lookup(d(probe)));
        }
    }

    #[test]
    fn empty_index_is_empty() {
        let index = ChecksumIndex::build(Vec::new());
        assert_eq!(index.distinct(), 0);
        assert!(!index.contains(d(1)));
    }
}
