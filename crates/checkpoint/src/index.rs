//! Checksum → page-offset indexes over a checkpoint (§3.3).

use vecycle_types::{PageDigest, PageIndex};

use crate::swiss::DigestTable;

/// Common interface of the checkpoint indexes.
///
/// The destination builds one of these while sequentially reading the
/// checkpoint file, then answers two queries per received message: *is
/// this checksum present?* and *at which checkpoint offset?* (Listing 1's
/// `lookup(checksum)`).
pub trait PageLookup {
    /// True if any page with this digest exists in the checkpoint.
    fn contains(&self, digest: PageDigest) -> bool;

    /// The checkpoint page holding this digest (first occurrence), if any.
    fn lookup(&self, digest: PageDigest) -> Option<PageIndex>;

    /// Number of distinct digests indexed.
    fn distinct(&self) -> usize;
}

/// The paper's index: a sorted array searched with binary search.
///
/// §3.3: "We currently keep the checksums and their offsets in a sorted
/// list, such that we can use binary search to quickly find the offset
/// for a given checksum."
///
/// # Examples
///
/// ```
/// use vecycle_checkpoint::{ChecksumIndex, PageLookup};
/// use vecycle_types::{PageDigest, PageIndex};
///
/// let digests = vec![
///     PageDigest::from_content_id(10),
///     PageDigest::from_content_id(20),
///     PageDigest::from_content_id(10), // duplicate content
/// ];
/// let index = ChecksumIndex::build(digests);
/// assert_eq!(index.distinct(), 2);
/// // Duplicate digests resolve to their first offset.
/// assert_eq!(
///     index.lookup(PageDigest::from_content_id(10)),
///     Some(PageIndex::new(0))
/// );
/// assert!(index.lookup(PageDigest::from_content_id(99)).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct ChecksumIndex {
    // Sorted by digest; for duplicate digests only the smallest offset
    // is kept (any copy of the content serves a restore equally well).
    // The sorted order is load-bearing: `digests()` feeds the bulk
    // checksum pre-exchange and the parallel build merges by it.
    entries: Vec<(PageDigest, PageIndex)>,
    // Swiss-table accelerator over the same entries: per-message
    // `lookup`/`contains` queries hit this in O(1) instead of a binary
    // search over a cache-cold sorted array.
    table: DigestTable<PageIndex>,
    total_pages: u64,
}

impl ChecksumIndex {
    /// Builds the index from per-page digests in page order.
    pub fn build(digests: Vec<PageDigest>) -> Self {
        let total_pages = digests.len() as u64;
        let mut entries: Vec<(PageDigest, PageIndex)> = digests
            .into_iter()
            .enumerate()
            .map(|(i, d)| (d, PageIndex::new(i as u64)))
            .collect();
        // Sort by digest, then offset, so dedup keeps the first offset.
        entries.sort_unstable();
        entries.dedup_by_key(|(d, _)| *d);
        ChecksumIndex::from_entries(entries, total_pages)
    }

    /// Finishes construction from deduplicated sorted entries, building
    /// the lookup accelerator over them.
    fn from_entries(entries: Vec<(PageDigest, PageIndex)>, total_pages: u64) -> Self {
        let mut table = DigestTable::with_capacity(entries.len());
        for &(d, i) in &entries {
            table.insert(d, i);
        }
        ChecksumIndex {
            entries,
            table,
            total_pages,
        }
    }

    /// Builds the index on `threads` scoped worker threads.
    ///
    /// Bit-identical to [`ChecksumIndex::build`] for any thread count:
    /// each worker sorts one contiguous chunk of `(digest, offset)` pairs,
    /// the sorted runs are k-way merged by full tuple order, and the
    /// dedup pass then sees digests grouped with ascending offsets — so
    /// it keeps the first (smallest) offset, exactly as the sequential
    /// sort-then-dedup does.
    pub fn build_parallel(digests: Vec<PageDigest>, threads: usize) -> Self {
        let total_pages = digests.len() as u64;
        // Below this size the merge overhead beats the parallel sort.
        const MIN_PARALLEL: usize = 1 << 14;
        if threads <= 1 || digests.len() < MIN_PARALLEL {
            return ChecksumIndex::build(digests);
        }
        let chunk = digests.len().div_ceil(threads);
        let runs: Vec<Vec<(PageDigest, PageIndex)>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = digests
                .chunks(chunk)
                .enumerate()
                .map(|(k, part)| {
                    let base = (k * chunk) as u64;
                    scope.spawn(move |_| {
                        let mut run: Vec<(PageDigest, PageIndex)> = part
                            .iter()
                            .enumerate()
                            .map(|(i, &d)| (d, PageIndex::new(base + i as u64)))
                            .collect();
                        run.sort_unstable();
                        run
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sort worker panicked"))
                .collect()
        })
        .expect("scoped sort threads");
        let mut entries = merge_sorted_runs(runs);
        entries.dedup_by_key(|(d, _)| *d);
        ChecksumIndex::from_entries(entries, total_pages)
    }

    /// Number of pages the underlying checkpoint holds (with duplicates).
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// All indexed digests in sorted order — what the destination sends
    /// to the source in the bulk checksum pre-exchange (§3.2).
    pub fn digests(&self) -> impl Iterator<Item = PageDigest> + '_ {
        self.entries.iter().map(|(d, _)| *d)
    }

    /// Wire size of the bulk checksum exchange: 16 bytes per distinct
    /// digest (the paper estimates 16 MiB for a 4 GiB VM with unique
    /// pages).
    pub fn wire_size(&self) -> vecycle_types::Bytes {
        vecycle_types::Bytes::new(self.entries.len() as u64 * 16)
    }
}

impl PageLookup for ChecksumIndex {
    fn contains(&self, digest: PageDigest) -> bool {
        self.table.contains(digest)
    }

    fn lookup(&self, digest: PageDigest) -> Option<PageIndex> {
        self.table.get(digest).copied()
    }

    fn distinct(&self) -> usize {
        self.entries.len()
    }
}

/// K-way merges per-chunk sorted runs into one globally sorted vector.
///
/// Runs are compared by full `(digest, offset)` tuples, so equal digests
/// emerge in ascending offset order regardless of which run they came
/// from. The linear scan over run heads is O(total × runs); with runs
/// bounded by the thread count this is cheaper than a heap for the
/// handful of threads a page scan uses.
fn merge_sorted_runs(runs: Vec<Vec<(PageDigest, PageIndex)>>) -> Vec<(PageDigest, PageIndex)> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors = vec![0usize; runs.len()];
    loop {
        let mut best: Option<usize> = None;
        for (r, run) in runs.iter().enumerate() {
            if cursors[r] < run.len() && best.is_none_or(|b| run[cursors[r]] < runs[b][cursors[b]])
            {
                best = Some(r);
            }
        }
        match best {
            Some(r) => {
                out.push(runs[r][cursors[r]]);
                cursors[r] += 1;
            }
            None => break,
        }
    }
    out
}

/// A hash-map index — the ablation alternative to the sorted array.
///
/// Same semantics as [`ChecksumIndex`]; O(1) expected lookups at the
/// cost of a larger build-time allocation. The `index_lookup` bench
/// compares the two. Backed by the crate's [`DigestTable`], which keys
/// buckets directly off the digest's own entropy instead of re-hashing
/// through SipHash.
#[derive(Debug, Clone)]
pub struct HashChecksumIndex {
    map: DigestTable<PageIndex>,
}

impl HashChecksumIndex {
    /// Builds the index from per-page digests in page order.
    pub fn build(digests: Vec<PageDigest>) -> Self {
        let mut map = DigestTable::with_capacity(digests.len());
        for (i, d) in digests.into_iter().enumerate() {
            // Keep the first offset for duplicate contents.
            map.or_insert(d, PageIndex::new(i as u64));
        }
        HashChecksumIndex { map }
    }
}

impl PageLookup for HashChecksumIndex {
    fn contains(&self, digest: PageDigest) -> bool {
        self.map.contains(digest)
    }

    fn lookup(&self, digest: PageDigest) -> Option<PageIndex> {
        self.map.get(digest).copied()
    }

    fn distinct(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(id: u64) -> PageDigest {
        PageDigest::from_content_id(id)
    }

    #[test]
    fn build_and_lookup() {
        let index = ChecksumIndex::build(vec![d(5), d(3), d(5), d(1)]);
        assert_eq!(index.total_pages(), 4);
        assert_eq!(index.distinct(), 3);
        assert_eq!(index.lookup(d(3)), Some(PageIndex::new(1)));
        assert_eq!(index.lookup(d(5)), Some(PageIndex::new(0)));
        assert!(!index.contains(d(42)));
    }

    #[test]
    fn digests_are_sorted() {
        let index = ChecksumIndex::build(vec![d(9), d(2), d(7)]);
        let v: Vec<_> = index.digests().collect();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn wire_size_is_16_bytes_per_distinct() {
        let index = ChecksumIndex::build(vec![d(1), d(1), d(2)]);
        assert_eq!(index.wire_size().as_u64(), 32);
    }

    #[test]
    fn paper_wire_size_example() {
        // "a 4 GiB VM has 2^20 pages ... 2^20 * 2^4 bytes = 16 MiB of MD5
        // checksums" — with all-unique pages.
        let n = 1u64 << 20;
        let digests: Vec<_> = (0..n).map(|i| d(i + 1)).collect();
        let index = ChecksumIndex::build(digests);
        assert_eq!(index.wire_size(), vecycle_types::Bytes::from_mib(16));
    }

    #[test]
    fn hash_index_agrees_with_sorted_index() {
        let digests: Vec<_> = [5u64, 3, 5, 1, 8, 3].iter().map(|&i| d(i)).collect();
        let sorted = ChecksumIndex::build(digests.clone());
        let hashed = HashChecksumIndex::build(digests.clone());
        assert_eq!(sorted.distinct(), hashed.distinct());
        for probe in [1u64, 2, 3, 4, 5, 8, 9] {
            assert_eq!(sorted.contains(d(probe)), hashed.contains(d(probe)));
            assert_eq!(sorted.lookup(d(probe)), hashed.lookup(d(probe)));
        }
    }

    #[test]
    fn empty_index_is_empty() {
        let index = ChecksumIndex::build(Vec::new());
        assert_eq!(index.distinct(), 0);
        assert!(!index.contains(d(1)));
    }

    /// A digest mix with heavy duplication and zero pages, large enough
    /// to clear `build_parallel`'s sequential-fallback threshold.
    fn parallel_workload() -> Vec<PageDigest> {
        (0..40_000u64)
            .map(|i| {
                // ~25% zero pages, heavy duplication among the rest, and
                // an order that scatters duplicates across chunks.
                let content = (i.wrapping_mul(2_654_435_761)) % 4_096;
                d(if content < 1_024 { 0 } else { content })
            })
            .collect()
    }

    #[test]
    fn parallel_build_is_bit_identical_to_sequential() {
        let digests = parallel_workload();
        let seq = ChecksumIndex::build(digests.clone());
        for threads in [1, 2, 3, 4, 8] {
            let par = ChecksumIndex::build_parallel(digests.clone(), threads);
            assert_eq!(par.total_pages(), seq.total_pages());
            assert_eq!(par.entries, seq.entries, "threads={threads}");
        }
    }

    #[test]
    fn parallel_build_small_input_falls_back() {
        let digests = vec![d(5), d(3), d(5), d(1)];
        let par = ChecksumIndex::build_parallel(digests.clone(), 8);
        let seq = ChecksumIndex::build(digests);
        assert_eq!(par.entries, seq.entries);
    }

    /// The swiss-table accelerator answers exactly what a binary search
    /// over the sorted entries would, for hits and misses alike.
    #[test]
    fn table_lookup_agrees_with_binary_search() {
        let index = ChecksumIndex::build(parallel_workload());
        for probe in 0..8_192u64 {
            let digest = d(probe);
            let by_search = index
                .entries
                .binary_search_by_key(&digest, |(dg, _)| *dg)
                .ok()
                .map(|i| index.entries[i].1);
            assert_eq!(index.lookup(digest), by_search, "probe {probe}");
            assert_eq!(index.contains(digest), by_search.is_some(), "probe {probe}");
        }
    }

    #[test]
    fn merge_sorted_runs_orders_duplicates_by_offset() {
        let runs = vec![
            vec![(d(1), PageIndex::new(4)), (d(2), PageIndex::new(5))],
            vec![(d(1), PageIndex::new(0)), (d(3), PageIndex::new(1))],
            vec![],
        ];
        let merged = merge_sorted_runs(runs);
        assert!(merged.windows(2).all(|w| w[0] <= w[1]));
        let mut deduped = merged;
        deduped.dedup_by_key(|(dg, _)| *dg);
        // d(1) appears at offsets 0 and 4; dedup must keep 0.
        let kept = deduped.iter().find(|(dg, _)| *dg == d(1)).unwrap();
        assert_eq!(kept.1, PageIndex::new(0));
    }
}
