//! Open-addressing digest table with group-of-16 control-byte probing.
//!
//! The hot maps on the scan/digest path are keyed by [`PageDigest`] —
//! a value that *is already a hash* (MD5 or a truncated SHA). Routing it
//! through `std::collections::HashMap` re-hashes those 16
//! high-entropy bytes with SipHash on every probe, which shows up as a
//! large fraction of single-core scan time. [`DigestTable`] skips the
//! hasher entirely: the digest's own leading bytes pick the bucket
//! group, and a swiss-table-style control-byte array lets one pair of
//! 64-bit compares reject 16 slots at a time.
//!
//! Layout: slots are grouped 16 at a time. A parallel `ctrl` array
//! holds one byte per slot — `0x80` for an empty slot, or the low 7
//! bits of the key's secondary hash (`h2`) for a full slot. A probe
//! loads a group's 16 control bytes as two `u64`s and SWAR-matches the
//! wanted `h2` tag (full 16-byte keys are compared only on candidate
//! hits, so SWAR false positives cost one compare and never
//! correctness). The table never stores tombstones — no deletion is
//! needed on the scan path — so a probe can stop at the first group
//! containing an empty slot.
//!
//! Everything here is safe code: the SWAR tricks are plain integer
//! arithmetic on bytes loaded with `u64::from_le_bytes`, keeping the
//! crate's `#![forbid(unsafe_code)]` intact.

use vecycle_types::PageDigest;

/// Slots per probe group; one group's control bytes fit two `u64`s.
const GROUP: usize = 16;

/// Control byte of an empty slot. The high bit distinguishes it from
/// every full tag (`h2` keeps only the low 7 bits).
const EMPTY: u8 = 0x80;

/// Grow when occupancy reaches 7/8 of the slots.
const LOAD_NUM: usize = 7;
const LOAD_DEN: usize = 8;

/// Broadcasts `tag` and returns a mask with the high bit set in every
/// byte of `word` equal to `tag`.
///
/// The classic zero-byte SWAR test applied to `word ^ splat(tag)`.
/// Borrow propagation can set spurious high bits in bytes *above* a
/// true match, but never clears the bit of a real match; callers treat
/// hits as candidates and verify.
#[inline(always)]
fn match_tag(word: u64, tag: u8) -> u64 {
    const LSB: u64 = 0x0101_0101_0101_0101;
    const MSB: u64 = 0x8080_8080_8080_8080;
    let x = word ^ (LSB * u64::from(tag));
    x.wrapping_sub(LSB) & !x & MSB
}

/// True if any byte of `word` equals [`EMPTY`].
///
/// Exact (no false positives): control bytes are either `0x80` or
/// `< 0x80`, and for that domain the SWAR zero test after XOR with
/// `0x80` cannot misfire — non-empty bytes map to `0x80..=0xff`, whose
/// complement has a clear high bit.
#[inline(always)]
fn has_empty(word: u64) -> bool {
    match_tag(word, EMPTY) != 0
}

/// A hash map from [`PageDigest`] to a small copyable value, specialised
/// for keys that are already uniformly distributed.
///
/// Semantically a subset of `HashMap<PageDigest, V>`: insert, lookup,
/// entry-style `or_insert`, iteration — but no removal. Iteration order
/// is unspecified (as with `HashMap`), so callers that need determinism
/// must sort, exactly as they already did.
///
/// # Examples
///
/// ```
/// use vecycle_checkpoint::DigestTable;
/// use vecycle_types::{PageDigest, PageIndex};
///
/// let mut table: DigestTable<PageIndex> = DigestTable::new();
/// let d = PageDigest::from_content_id(9);
/// assert_eq!(table.insert(d, PageIndex::new(4)), None);
/// assert_eq!(table.get(d), Some(&PageIndex::new(4)));
/// // Entry-style first-insert-wins:
/// assert_eq!(*table.or_insert(d, PageIndex::new(7)), PageIndex::new(4));
/// ```
#[derive(Debug, Clone)]
pub struct DigestTable<V> {
    /// One byte per slot: `EMPTY` or the slot key's `h2` tag.
    ctrl: Vec<u8>,
    /// Key/value pairs; only meaningful where `ctrl` marks a full slot.
    slots: Vec<(PageDigest, V)>,
    /// Number of full slots.
    len: usize,
    /// `group count - 1`; group count is a power of two.
    group_mask: usize,
}

impl<V: Copy + Default> Default for DigestTable<V> {
    fn default() -> Self {
        DigestTable::new()
    }
}

impl<V: Copy + Default> DigestTable<V> {
    /// An empty table with one group preallocated.
    pub fn new() -> Self {
        DigestTable::with_groups(1)
    }

    /// An empty table sized so `n` insertions do not trigger a resize.
    pub fn with_capacity(n: usize) -> Self {
        let slots_needed = (n * LOAD_DEN).div_ceil(LOAD_NUM) + 1;
        let groups = slots_needed.div_ceil(GROUP).next_power_of_two();
        DigestTable::with_groups(groups)
    }

    fn with_groups(groups: usize) -> Self {
        debug_assert!(groups.is_power_of_two());
        DigestTable {
            ctrl: vec![EMPTY; groups * GROUP],
            slots: vec![(PageDigest::ZERO_PAGE, V::default()); groups * GROUP],
            len: 0,
            group_mask: groups - 1,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Splits the digest's own entropy into a group index and a 7-bit
    /// control tag. No hashing: digests are already uniform.
    #[inline(always)]
    fn decompose(&self, digest: PageDigest) -> (usize, u8) {
        let h = digest.short_key();
        let group = (h >> 7) as usize & self.group_mask;
        let tag = (h & 0x7f) as u8;
        (group, tag)
    }

    /// Loads group `g`'s control bytes as two little-endian words.
    #[inline(always)]
    fn ctrl_words(&self, g: usize) -> (u64, u64) {
        let base = g * GROUP;
        let lo = u64::from_le_bytes(self.ctrl[base..base + 8].try_into().expect("8 bytes"));
        let hi = u64::from_le_bytes(self.ctrl[base + 8..base + 16].try_into().expect("8 bytes"));
        (lo, hi)
    }

    /// Slot index of `digest` if present.
    #[inline]
    fn find(&self, digest: PageDigest) -> Option<usize> {
        let (mut g, tag) = self.decompose(digest);
        let mut step = 0usize;
        loop {
            let (lo, hi) = self.ctrl_words(g);
            let base = g * GROUP;
            let mut hits = match_tag(lo, tag);
            while hits != 0 {
                let slot = base + (hits.trailing_zeros() as usize) / 8;
                if self.slots[slot].0 == digest {
                    return Some(slot);
                }
                hits &= hits - 1;
            }
            let mut hits = match_tag(hi, tag);
            while hits != 0 {
                let slot = base + 8 + (hits.trailing_zeros() as usize) / 8;
                if self.slots[slot].0 == digest {
                    return Some(slot);
                }
                hits &= hits - 1;
            }
            if has_empty(lo) || has_empty(hi) {
                return None;
            }
            // Triangular probing over groups: visits every group once
            // because the group count is a power of two.
            step += 1;
            g = (g + step) & self.group_mask;
        }
    }

    /// First empty slot along `digest`'s probe sequence. The caller
    /// guarantees the key is absent and the table is below the load
    /// limit (so an empty slot exists).
    #[inline]
    fn find_empty(&self, digest: PageDigest) -> usize {
        let (mut g, _) = self.decompose(digest);
        let mut step = 0usize;
        loop {
            let base = g * GROUP;
            let (lo, hi) = self.ctrl_words(g);
            if has_empty(lo) || has_empty(hi) {
                for i in 0..GROUP {
                    if self.ctrl[base + i] == EMPTY {
                        return base + i;
                    }
                }
                unreachable!("has_empty is exact");
            }
            step += 1;
            g = (g + step) & self.group_mask;
        }
    }

    fn grow(&mut self) {
        let groups = (self.group_mask + 1) * 2;
        let mut bigger = DigestTable::with_groups(groups);
        for (slot, &(key, val)) in self.slots.iter().enumerate() {
            if self.ctrl[slot] != EMPTY {
                let at = bigger.find_empty(key);
                let (_, tag) = bigger.decompose(key);
                bigger.ctrl[at] = tag;
                bigger.slots[at] = (key, val);
            }
        }
        bigger.len = self.len;
        *self = bigger;
    }

    #[inline]
    fn reserve_one(&mut self) {
        if (self.len + 1) * LOAD_DEN >= self.slots.len() * LOAD_NUM {
            self.grow();
        }
    }

    /// True if `digest` is present.
    pub fn contains(&self, digest: PageDigest) -> bool {
        self.find(digest).is_some()
    }

    /// The value stored for `digest`, if any.
    pub fn get(&self, digest: PageDigest) -> Option<&V> {
        self.find(digest).map(|slot| &self.slots[slot].1)
    }

    /// Mutable access to the value stored for `digest`, if any.
    pub fn get_mut(&mut self, digest: PageDigest) -> Option<&mut V> {
        self.find(digest).map(|slot| &mut self.slots[slot].1)
    }

    /// Inserts or replaces, returning the previous value if present —
    /// `HashMap::insert` semantics.
    pub fn insert(&mut self, digest: PageDigest, value: V) -> Option<V> {
        if let Some(slot) = self.find(digest) {
            return Some(std::mem::replace(&mut self.slots[slot].1, value));
        }
        self.reserve_one();
        let at = self.find_empty(digest);
        let (_, tag) = self.decompose(digest);
        self.ctrl[at] = tag;
        self.slots[at] = (digest, value);
        self.len += 1;
        None
    }

    /// Inserts `value` unless the key is present; returns a mutable
    /// reference to the stored value — `entry(..).or_insert(..)`
    /// semantics, which is the per-page operation of the dedup scan.
    pub fn or_insert(&mut self, digest: PageDigest, value: V) -> &mut V {
        match self.find(digest) {
            Some(slot) => &mut self.slots[slot].1,
            None => {
                self.reserve_one();
                let at = self.find_empty(digest);
                let (_, tag) = self.decompose(digest);
                self.ctrl[at] = tag;
                self.slots[at] = (digest, value);
                self.len += 1;
                &mut self.slots[at].1
            }
        }
    }

    /// All entries, in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (PageDigest, &V)> + '_ {
        self.ctrl
            .iter()
            .zip(self.slots.iter())
            .filter(|(&c, _)| c != EMPTY)
            .map(|(_, (d, v))| (*d, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use vecycle_types::PageIndex;

    fn d(id: u64) -> PageDigest {
        PageDigest::from_content_id(id)
    }

    fn p(i: u64) -> PageIndex {
        PageIndex::new(i)
    }

    #[test]
    fn insert_get_replace() {
        let mut t: DigestTable<PageIndex> = DigestTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(d(1), p(10)), None);
        assert_eq!(t.insert(d(1), p(20)), Some(p(10)));
        assert_eq!(t.get(d(1)), Some(&p(20)));
        assert_eq!(t.len(), 1);
        assert!(t.contains(d(1)));
        assert!(!t.contains(d(2)));
    }

    #[test]
    fn or_insert_first_wins_and_is_mutable() {
        let mut t: DigestTable<PageIndex> = DigestTable::new();
        assert_eq!(*t.or_insert(d(5), p(9)), p(9));
        assert_eq!(*t.or_insert(d(5), p(3)), p(9));
        // insert_min via the returned reference.
        let slot = t.or_insert(d(5), p(3));
        if p(3) < *slot {
            *slot = p(3);
        }
        assert_eq!(t.get(d(5)), Some(&p(3)));
    }

    #[test]
    fn zero_page_sentinel_is_a_valid_key() {
        // ZERO_PAGE has short_key 0 — the weakest possible entropy; it
        // must still be distinguishable from the ZERO_PAGE filler in
        // never-written slots.
        let mut t: DigestTable<PageIndex> = DigestTable::new();
        assert!(!t.contains(PageDigest::ZERO_PAGE));
        t.insert(PageDigest::ZERO_PAGE, p(7));
        assert_eq!(t.get(PageDigest::ZERO_PAGE), Some(&p(7)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn growth_preserves_all_entries() {
        let mut t: DigestTable<PageIndex> = DigestTable::new();
        // Crosses several resize thresholds from the 16-slot start.
        for i in 0..10_000u64 {
            t.insert(d(i + 1), p(i));
        }
        assert_eq!(t.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(t.get(d(i + 1)), Some(&p(i)), "key {i}");
        }
        assert!(!t.contains(d(10_001)));
    }

    /// Keys crafted to share group and tag (identical leading 8 bytes)
    /// force the full-probe + key-compare path.
    #[test]
    fn colliding_short_keys_disambiguate_by_full_compare() {
        let mut t: DigestTable<PageIndex> = DigestTable::new();
        let keys: Vec<PageDigest> = (0..40u8)
            .map(|i| {
                let mut bytes = [0xabu8; 16];
                bytes[15] = i;
                PageDigest::new(bytes)
            })
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(t.insert(k, p(i as u64)), None);
        }
        assert_eq!(t.len(), keys.len());
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(t.get(k), Some(&p(i as u64)), "collider {i}");
        }
    }

    #[test]
    fn iter_yields_every_entry_once() {
        let mut t: DigestTable<PageIndex> = DigestTable::new();
        for i in 0..500u64 {
            t.insert(d(i + 1), p(i));
        }
        let mut seen: Vec<_> = t.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(seen.len(), 500);
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 500, "no duplicates");
    }

    /// Differential model test: a scripted mix of insert / or_insert /
    /// get tracks `HashMap` exactly, across growth.
    #[test]
    fn matches_hashmap_model() {
        let mut t: DigestTable<PageIndex> = DigestTable::new();
        let mut model: HashMap<PageDigest, PageIndex> = HashMap::new();
        // Deterministic pseudo-random op stream.
        let mut state = 0x243f_6a88_85a3_08d3u64;
        for step in 0..20_000u64 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let key = d(state % 4_096); // heavy duplication, includes 0
            let val = p(step);
            match state >> 62 {
                0 => {
                    assert_eq!(t.insert(key, val), model.insert(key, val), "step {step}");
                }
                1 => {
                    let got = *t.or_insert(key, val);
                    let want = *model.entry(key).or_insert(val);
                    assert_eq!(got, want, "step {step}");
                }
                _ => {
                    assert_eq!(t.get(key), model.get(&key), "step {step}");
                }
            }
            assert_eq!(t.len(), model.len(), "step {step}");
        }
        for (&k, v) in &model {
            assert_eq!(t.get(k), Some(v));
        }
    }

    #[test]
    fn with_capacity_avoids_growth() {
        let mut t: DigestTable<PageIndex> = DigestTable::with_capacity(1_000);
        let slots_before = t.slots.len();
        for i in 0..1_000u64 {
            t.insert(d(i + 1), p(i));
        }
        assert_eq!(t.slots.len(), slots_before, "no resize for stated capacity");
    }

    #[test]
    fn swar_tag_match_finds_all_positions() {
        for pos in 0..8 {
            for tag in [0u8, 1, 0x55, 0x7f] {
                let mut bytes = [0x11u8; 8];
                bytes[pos] = tag;
                let hits = match_tag(u64::from_le_bytes(bytes), tag);
                assert_ne!(hits & (0x80 << (pos * 8)), 0, "tag {tag:#x} pos {pos}");
            }
        }
    }

    #[test]
    fn swar_empty_check_is_exact() {
        // Domain: control bytes are EMPTY or < 0x80.
        let full = [0x00u8, 0x3c, 0x7f, 0x01, 0x42, 0x13, 0x77, 0x05];
        assert!(!has_empty(u64::from_le_bytes(full)));
        for pos in 0..8 {
            let mut bytes = full;
            bytes[pos] = EMPTY;
            assert!(has_empty(u64::from_le_bytes(bytes)), "pos {pos}");
        }
    }
}
