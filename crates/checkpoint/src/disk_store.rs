//! [`DiskStore`]: checkpoints persisted as real files.
//!
//! The in-memory [`crate::CheckpointStore`] models a host inside the
//! simulator; this store actually writes the §3 checkpoint files to a
//! directory — what a deployment would do — using the corruption-checked
//! wire format. Loads that fail validation report [`Error::Corrupt`] so
//! callers can fall back to a full migration instead of restoring
//! garbage.

use std::path::{Path, PathBuf};

use vecycle_types::{Error, VmId};

use crate::{wire, Checkpoint};

/// What a [`DiskStore::scrub`] pass found: the checkpoints that passed
/// re-verification and the VMs whose files were quarantined.
#[derive(Debug, Default)]
pub struct ScrubOutcome {
    /// Checkpoints that re-verified clean, in VM-id order.
    pub clean: Vec<Checkpoint>,
    /// VMs whose files failed validation and were deleted.
    pub quarantined: Vec<VmId>,
    /// Estimated pages across quarantined files (from file length — the
    /// corrupt payload itself is untrustworthy).
    pub corrupt_pages: u64,
}

impl ScrubOutcome {
    /// Pages across the checkpoints that re-verified clean.
    pub fn clean_pages(&self) -> u64 {
        self.clean.iter().map(|c| c.page_count().as_u64()).sum()
    }
}

/// A directory of checkpoint files, one per VM.
///
/// Layout: `<root>/vm-<id>.ckpt`, atomically replaced on save (write to
/// a temp file, then rename) so a crash mid-save never leaves a torn
/// checkpoint where a good one stood.
///
/// # Examples
///
/// ```
/// use vecycle_checkpoint::{Checkpoint, DiskStore};
/// use vecycle_mem::DigestMemory;
/// use vecycle_types::{PageCount, SimTime, VmId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dir = std::env::temp_dir().join("vecycle-diskstore-doc");
/// let store = DiskStore::open(&dir)?;
/// let mem = DigestMemory::with_distinct_content(PageCount::new(8), 1);
/// store.save(&Checkpoint::capture(VmId::new(5), SimTime::EPOCH, &mem))?;
/// let back = store.load(VmId::new(5))?.expect("checkpoint exists");
/// assert_eq!(back.page_count(), PageCount::new(8));
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
}

impl DiskStore {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(root: impl AsRef<Path>) -> vecycle_types::Result<Self> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(DiskStore { root })
    }

    /// The directory backing this store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_for(&self, vm: VmId) -> PathBuf {
        self.root.join(format!("vm-{}.ckpt", vm.as_u32()))
    }

    /// Saves (atomically replaces) the checkpoint for its VM.
    ///
    /// Crash-durability invariant: at every instant there is either the
    /// old complete checkpoint or the new complete checkpoint at the
    /// final path, never a torn one and never neither. This needs all
    /// three steps below — `fsync(tmp)` so the rename cannot promote a
    /// file whose data blocks are still in the page cache, an atomic
    /// `rename(2)`, and `fsync(parent dir)` so the rename itself is on
    /// stable storage. Skipping the directory fsync would let a host
    /// crash roll the directory entry back to the temp name, losing the
    /// new checkpoint *and* (because the temp write already replaced
    /// nothing) leaving a stray `.tmp` — but never corrupting the old one.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; a failed save leaves any previous
    /// checkpoint intact.
    pub fn save(&self, checkpoint: &Checkpoint) -> vecycle_types::Result<()> {
        let tmp = self
            .root
            .join(format!(".vm-{}.tmp", checkpoint.vm().as_u32()));
        {
            let file = std::fs::File::create(&tmp)?;
            let mut writer = std::io::BufWriter::new(file);
            checkpoint.write_to(&mut writer)?;
            use std::io::Write;
            writer.flush()?;
            writer.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, self.path_for(checkpoint.vm()))?;
        // Persist the rename: fsync the directory entry. Directories can
        // be opened and fsynced on unix; elsewhere the rename alone is
        // the best the platform offers.
        #[cfg(unix)]
        std::fs::File::open(&self.root)?.sync_all()?;
        Ok(())
    }

    /// Loads the checkpoint for `vm`, if one exists.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] if the file exists but fails
    /// validation — callers should treat that as "no usable checkpoint"
    /// and may call [`DiskStore::remove`] to clear it.
    pub fn load(&self, vm: VmId) -> vecycle_types::Result<Option<Checkpoint>> {
        let path = self.path_for(vm);
        let file = match std::fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let cp = Checkpoint::read_from(std::io::BufReader::new(file))?;
        if cp.vm() != vm {
            return Err(Error::Corrupt {
                detail: format!("checkpoint file for {vm} contains {}", cp.vm()),
            });
        }
        Ok(Some(cp))
    }

    /// Removes the checkpoint for `vm`. Removing a missing checkpoint is
    /// not an error.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than "not found".
    pub fn remove(&self, vm: VmId) -> vecycle_types::Result<()> {
        match std::fs::remove_file(self.path_for(vm)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// The VMs with a stored checkpoint file, in id order — the on-disk
    /// catalog, for comparison against
    /// [`CheckpointStore::vm_ids`](crate::CheckpointStore::vm_ids).
    ///
    /// # Errors
    ///
    /// Propagates directory-read errors.
    pub fn vm_ids(&self) -> vecycle_types::Result<Vec<VmId>> {
        self.list()
    }

    /// Re-verifies every checkpoint file against its wire trailer
    /// checksum — what a host runs after restarting from a crash, when
    /// it can no longer trust that disk matches memory.
    ///
    /// Files that fail validation are *quarantined*: deleted from disk
    /// (never restored from) and reported in
    /// [`ScrubOutcome::quarantined`]. Clean checkpoints are returned in
    /// VM-id order so the caller can re-warm an in-memory catalog.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than validation failures
    /// (those are quarantines, not errors).
    pub fn scrub(&self) -> vecycle_types::Result<ScrubOutcome> {
        let mut outcome = ScrubOutcome::default();
        for vm in self.list()? {
            match self.load(vm) {
                Ok(Some(cp)) => outcome.clean.push(cp),
                Ok(None) => {} // raced away; nothing to verify
                Err(Error::Corrupt { .. }) => {
                    // Estimate the page count from the file size (header
                    // + 16-byte digests) before deleting — the payload
                    // itself is untrustworthy.
                    let len = std::fs::metadata(self.path_for(vm))
                        .map(|m| m.len())
                        .unwrap_or(0);
                    outcome.corrupt_pages += len.saturating_sub(wire::HEADER_AND_TRAILER) / 16;
                    self.remove(vm)?;
                    outcome.quarantined.push(vm);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(outcome)
    }

    /// Lists the VMs with a stored checkpoint file.
    ///
    /// # Errors
    ///
    /// Propagates directory-read errors.
    pub fn list(&self) -> vecycle_types::Result<Vec<VmId>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = name
                .strip_prefix("vm-")
                .and_then(|s| s.strip_suffix(".ckpt"))
                .and_then(|s| s.parse::<u32>().ok())
            {
                out.push(VmId::new(id));
            }
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecycle_mem::DigestMemory;
    use vecycle_types::{PageCount, SimTime};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vecycle-diskstore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cp(vm: u32, seed: u64) -> Checkpoint {
        let mem = DigestMemory::with_distinct_content(PageCount::new(16), seed);
        Checkpoint::capture(VmId::new(vm), SimTime::EPOCH, &mem)
    }

    #[test]
    fn save_load_remove_cycle() {
        let dir = tmpdir("cycle");
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.load(VmId::new(1)).unwrap().is_none());
        store.save(&cp(1, 10)).unwrap();
        let loaded = store.load(VmId::new(1)).unwrap().unwrap();
        assert_eq!(loaded, cp(1, 10));
        store.remove(VmId::new(1)).unwrap();
        assert!(store.load(VmId::new(1)).unwrap().is_none());
        store.remove(VmId::new(1)).unwrap(); // idempotent
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn save_replaces_previous_version() {
        let dir = tmpdir("replace");
        let store = DiskStore::open(&dir).unwrap();
        store.save(&cp(2, 10)).unwrap();
        store.save(&cp(2, 11)).unwrap();
        assert_eq!(store.load(VmId::new(2)).unwrap().unwrap(), cp(2, 11));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_file_is_reported_not_returned() {
        let dir = tmpdir("corrupt");
        let store = DiskStore::open(&dir).unwrap();
        store.save(&cp(3, 10)).unwrap();
        // Flip a byte on disk.
        let path = dir.join("vm-3.ckpt");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, bytes).unwrap();
        let err = store.load(VmId::new(3)).unwrap_err();
        assert!(matches!(err, Error::Corrupt { .. }));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn vm_id_mismatch_is_corrupt() {
        let dir = tmpdir("mismatch");
        let store = DiskStore::open(&dir).unwrap();
        store.save(&cp(4, 10)).unwrap();
        // Rename vm-4's file to claim vm-5.
        std::fs::rename(dir.join("vm-4.ckpt"), dir.join("vm-5.ckpt")).unwrap();
        let err = store.load(VmId::new(5)).unwrap_err();
        assert!(err.to_string().contains("contains vm-4"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn list_enumerates_saved_vms() {
        let dir = tmpdir("list");
        let store = DiskStore::open(&dir).unwrap();
        store.save(&cp(7, 1)).unwrap();
        store.save(&cp(2, 2)).unwrap();
        store.save(&cp(9, 3)).unwrap();
        assert_eq!(
            store.list().unwrap(),
            vec![VmId::new(2), VmId::new(7), VmId::new(9)]
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn scrub_quarantines_corrupt_keeps_clean() {
        let dir = tmpdir("scrub");
        let store = DiskStore::open(&dir).unwrap();
        store.save(&cp(1, 10)).unwrap();
        store.save(&cp(2, 20)).unwrap();
        store.save(&cp(3, 30)).unwrap();
        // Rot vm-2's file.
        let path = dir.join("vm-2.ckpt");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, bytes).unwrap();

        let outcome = store.scrub().unwrap();
        assert_eq!(outcome.quarantined, vec![VmId::new(2)]);
        assert_eq!(outcome.clean.len(), 2);
        assert_eq!(outcome.clean_pages(), 32);
        // corrupt_pages is estimated from the file length.
        assert_eq!(outcome.corrupt_pages, 16);
        // The quarantined file is gone; clean ones survive.
        assert_eq!(store.vm_ids().unwrap(), vec![VmId::new(1), VmId::new(3)]);
        // A second scrub finds nothing to quarantine.
        let again = store.scrub().unwrap();
        assert!(again.quarantined.is_empty());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn stray_files_are_ignored_by_list() {
        let dir = tmpdir("stray");
        let store = DiskStore::open(&dir).unwrap();
        std::fs::write(dir.join("notes.txt"), b"hi").unwrap();
        std::fs::write(dir.join("vm-x.ckpt"), b"junk").unwrap();
        store.save(&cp(1, 1)).unwrap();
        assert_eq!(store.list().unwrap(), vec![VmId::new(1)]);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
