//! [`DiskStore`]: checkpoints persisted as real files.
//!
//! The in-memory [`crate::CheckpointStore`] models a host inside the
//! simulator; this store actually writes the §3 checkpoint files to a
//! directory — what a deployment would do — using the corruption-checked
//! wire format. Loads that fail validation report [`Error::Corrupt`] so
//! callers can fall back to a full migration instead of restoring
//! garbage.

use std::path::{Path, PathBuf};

use vecycle_types::{Error, VmId};

use crate::Checkpoint;

/// A directory of checkpoint files, one per VM.
///
/// Layout: `<root>/vm-<id>.ckpt`, atomically replaced on save (write to
/// a temp file, then rename) so a crash mid-save never leaves a torn
/// checkpoint where a good one stood.
///
/// # Examples
///
/// ```
/// use vecycle_checkpoint::{Checkpoint, DiskStore};
/// use vecycle_mem::DigestMemory;
/// use vecycle_types::{PageCount, SimTime, VmId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dir = std::env::temp_dir().join("vecycle-diskstore-doc");
/// let store = DiskStore::open(&dir)?;
/// let mem = DigestMemory::with_distinct_content(PageCount::new(8), 1);
/// store.save(&Checkpoint::capture(VmId::new(5), SimTime::EPOCH, &mem))?;
/// let back = store.load(VmId::new(5))?.expect("checkpoint exists");
/// assert_eq!(back.page_count(), PageCount::new(8));
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
}

impl DiskStore {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(root: impl AsRef<Path>) -> vecycle_types::Result<Self> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(DiskStore { root })
    }

    /// The directory backing this store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_for(&self, vm: VmId) -> PathBuf {
        self.root.join(format!("vm-{}.ckpt", vm.as_u32()))
    }

    /// Saves (atomically replaces) the checkpoint for its VM.
    ///
    /// Crash-durability invariant: at every instant there is either the
    /// old complete checkpoint or the new complete checkpoint at the
    /// final path, never a torn one and never neither. This needs all
    /// three steps below — `fsync(tmp)` so the rename cannot promote a
    /// file whose data blocks are still in the page cache, an atomic
    /// `rename(2)`, and `fsync(parent dir)` so the rename itself is on
    /// stable storage. Skipping the directory fsync would let a host
    /// crash roll the directory entry back to the temp name, losing the
    /// new checkpoint *and* (because the temp write already replaced
    /// nothing) leaving a stray `.tmp` — but never corrupting the old one.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; a failed save leaves any previous
    /// checkpoint intact.
    pub fn save(&self, checkpoint: &Checkpoint) -> vecycle_types::Result<()> {
        let tmp = self
            .root
            .join(format!(".vm-{}.tmp", checkpoint.vm().as_u32()));
        {
            let file = std::fs::File::create(&tmp)?;
            let mut writer = std::io::BufWriter::new(file);
            checkpoint.write_to(&mut writer)?;
            use std::io::Write;
            writer.flush()?;
            writer.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, self.path_for(checkpoint.vm()))?;
        // Persist the rename: fsync the directory entry. Directories can
        // be opened and fsynced on unix; elsewhere the rename alone is
        // the best the platform offers.
        #[cfg(unix)]
        std::fs::File::open(&self.root)?.sync_all()?;
        Ok(())
    }

    /// Loads the checkpoint for `vm`, if one exists.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] if the file exists but fails
    /// validation — callers should treat that as "no usable checkpoint"
    /// and may call [`DiskStore::remove`] to clear it.
    pub fn load(&self, vm: VmId) -> vecycle_types::Result<Option<Checkpoint>> {
        let path = self.path_for(vm);
        let file = match std::fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let cp = Checkpoint::read_from(std::io::BufReader::new(file))?;
        if cp.vm() != vm {
            return Err(Error::Corrupt {
                detail: format!("checkpoint file for {vm} contains {}", cp.vm()),
            });
        }
        Ok(Some(cp))
    }

    /// Removes the checkpoint for `vm`. Removing a missing checkpoint is
    /// not an error.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than "not found".
    pub fn remove(&self, vm: VmId) -> vecycle_types::Result<()> {
        match std::fs::remove_file(self.path_for(vm)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Lists the VMs with a stored checkpoint file.
    ///
    /// # Errors
    ///
    /// Propagates directory-read errors.
    pub fn list(&self) -> vecycle_types::Result<Vec<VmId>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = name
                .strip_prefix("vm-")
                .and_then(|s| s.strip_suffix(".ckpt"))
                .and_then(|s| s.parse::<u32>().ok())
            {
                out.push(VmId::new(id));
            }
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecycle_mem::DigestMemory;
    use vecycle_types::{PageCount, SimTime};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vecycle-diskstore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cp(vm: u32, seed: u64) -> Checkpoint {
        let mem = DigestMemory::with_distinct_content(PageCount::new(16), seed);
        Checkpoint::capture(VmId::new(vm), SimTime::EPOCH, &mem)
    }

    #[test]
    fn save_load_remove_cycle() {
        let dir = tmpdir("cycle");
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.load(VmId::new(1)).unwrap().is_none());
        store.save(&cp(1, 10)).unwrap();
        let loaded = store.load(VmId::new(1)).unwrap().unwrap();
        assert_eq!(loaded, cp(1, 10));
        store.remove(VmId::new(1)).unwrap();
        assert!(store.load(VmId::new(1)).unwrap().is_none());
        store.remove(VmId::new(1)).unwrap(); // idempotent
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn save_replaces_previous_version() {
        let dir = tmpdir("replace");
        let store = DiskStore::open(&dir).unwrap();
        store.save(&cp(2, 10)).unwrap();
        store.save(&cp(2, 11)).unwrap();
        assert_eq!(store.load(VmId::new(2)).unwrap().unwrap(), cp(2, 11));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_file_is_reported_not_returned() {
        let dir = tmpdir("corrupt");
        let store = DiskStore::open(&dir).unwrap();
        store.save(&cp(3, 10)).unwrap();
        // Flip a byte on disk.
        let path = dir.join("vm-3.ckpt");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, bytes).unwrap();
        let err = store.load(VmId::new(3)).unwrap_err();
        assert!(matches!(err, Error::Corrupt { .. }));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn vm_id_mismatch_is_corrupt() {
        let dir = tmpdir("mismatch");
        let store = DiskStore::open(&dir).unwrap();
        store.save(&cp(4, 10)).unwrap();
        // Rename vm-4's file to claim vm-5.
        std::fs::rename(dir.join("vm-4.ckpt"), dir.join("vm-5.ckpt")).unwrap();
        let err = store.load(VmId::new(5)).unwrap_err();
        assert!(err.to_string().contains("contains vm-4"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn list_enumerates_saved_vms() {
        let dir = tmpdir("list");
        let store = DiskStore::open(&dir).unwrap();
        store.save(&cp(7, 1)).unwrap();
        store.save(&cp(2, 2)).unwrap();
        store.save(&cp(9, 3)).unwrap();
        assert_eq!(
            store.list().unwrap(),
            vec![VmId::new(2), VmId::new(7), VmId::new(9)]
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn stray_files_are_ignored_by_list() {
        let dir = tmpdir("stray");
        let store = DiskStore::open(&dir).unwrap();
        std::fs::write(dir.join("notes.txt"), b"hi").unwrap();
        std::fs::write(dir.join("vm-x.ckpt"), b"junk").unwrap();
        store.save(&cp(1, 1)).unwrap();
        assert_eq!(store.list().unwrap(), vec![VmId::new(1)]);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
