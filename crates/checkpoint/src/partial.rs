//! [`PartialCheckpoint`]: the pages an aborted migration left behind.
//!
//! When a migration dies mid-transfer, the destination is not empty: every
//! page that made it across the link before the cut is sitting in its
//! memory, content-addressable by digest. That is *exactly* the raw
//! material the paper recycles from old checkpoints (§3) — so the retry
//! path treats an aborted transfer's residue as a checkpoint of its own,
//! builds a [`ChecksumIndex`] over it, and re-sends only what never
//! arrived. Recycling applied to our own failures.

use vecycle_types::{PageCount, PageDigest, Ratio, VmId};

use crate::ChecksumIndex;

/// The destination-side residue of an aborted migration: for each guest
/// page, the digest of the content that landed before the link died (or
/// `None` if the page never made it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialCheckpoint {
    vm: VmId,
    landed: Vec<Option<PageDigest>>,
}

impl PartialCheckpoint {
    /// Wraps the landed-page map of an aborted transfer. `landed` must
    /// have one slot per guest page, in page order.
    pub fn new(vm: VmId, landed: Vec<Option<PageDigest>>) -> Self {
        PartialCheckpoint { vm, landed }
    }

    /// The VM whose migration aborted.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// Total guest pages (landed or not).
    pub fn page_count(&self) -> PageCount {
        PageCount::new(self.landed.len() as u64)
    }

    /// Pages whose content reached the destination.
    pub fn landed_pages(&self) -> PageCount {
        PageCount::new(self.landed.iter().filter(|d| d.is_some()).count() as u64)
    }

    /// Fraction of guest pages that landed.
    pub fn coverage(&self) -> Ratio {
        if self.landed.is_empty() {
            return Ratio::new(0.0);
        }
        Ratio::new(self.landed_pages().as_u64() as f64 / self.landed.len() as f64)
    }

    /// The landed digests, in page order, gaps skipped.
    pub fn digests(&self) -> Vec<PageDigest> {
        self.landed.iter().flatten().copied().collect()
    }

    /// Per-page landed map (page order).
    pub fn landed(&self) -> &[Option<PageDigest>] {
        &self.landed
    }

    /// Builds a checksum index over the landed pages, ready to be handed
    /// to a vecycle strategy like any recycled checkpoint's index.
    pub fn build_index(&self) -> ChecksumIndex {
        ChecksumIndex::build(self.digests())
    }

    /// Builds an index over the landed pages *plus* extra digests (e.g.
    /// an older full checkpoint of the same VM), so a retry can draw on
    /// both sources of destination-resident content.
    pub fn build_index_with(&self, extra: &[PageDigest]) -> ChecksumIndex {
        let mut all = self.digests();
        all.extend_from_slice(extra);
        ChecksumIndex::build(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PageLookup;

    fn digest(id: u64) -> PageDigest {
        PageDigest::from_content_id(id)
    }

    #[test]
    fn counts_and_coverage() {
        let pc = PartialCheckpoint::new(
            VmId::new(1),
            vec![Some(digest(1)), None, Some(digest(2)), None],
        );
        assert_eq!(pc.page_count(), PageCount::new(4));
        assert_eq!(pc.landed_pages(), PageCount::new(2));
        assert!((pc.coverage().as_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_partial_has_zero_coverage() {
        let pc = PartialCheckpoint::new(VmId::new(1), Vec::new());
        assert_eq!(pc.landed_pages(), PageCount::ZERO);
        assert_eq!(pc.coverage().as_f64(), 0.0);
    }

    #[test]
    fn index_contains_only_landed_content() {
        let pc =
            PartialCheckpoint::new(VmId::new(1), vec![Some(digest(10)), None, Some(digest(11))]);
        let idx = pc.build_index();
        assert!(idx.contains(digest(10)));
        assert!(idx.contains(digest(11)));
        assert!(!idx.contains(digest(12)));
    }

    #[test]
    fn combined_index_unions_both_sources() {
        let pc = PartialCheckpoint::new(VmId::new(1), vec![Some(digest(10)), None]);
        let idx = pc.build_index_with(&[digest(99)]);
        assert!(idx.contains(digest(10)));
        assert!(idx.contains(digest(99)));
        assert!(!idx.contains(digest(50)));
    }
}
