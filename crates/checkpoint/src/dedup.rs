//! Sender-side dedup state: digest → first page that carried the content.
//!
//! During a migration the source remembers, for every digest it has
//! placed on the wire (or announced as a checksum), the first guest page
//! that carried that content. Later pages with the same digest become
//! [`DedupRef`] back-references instead of full pages (§3.4's
//! deduplication extension).
//!
//! The map is sharded by a digest-prefix so the parallel page scan can
//! hand disjoint shard groups to worker threads without locking; the
//! *semantics* stay those of a single `HashMap::entry(..).or_insert(..)`:
//! the first inserter of a digest wins, and every later query sees that
//! winner.
//!
//! [`DedupRef`]: https://example.invalid/vecycle

use vecycle_types::{PageDigest, PageIndex};

use crate::swiss::DigestTable;

/// Number of shards; a power of two so the prefix maps by mask.
const SHARD_COUNT: usize = 16;

/// Digest → first-sender map, sharded by digest prefix.
///
/// Equivalent to `HashMap<PageDigest, PageIndex>` with first-insert-wins
/// semantics, but split into `SHARD_COUNT` independent sub-maps keyed
/// by the digest's leading byte. Shards are what make a deterministic
/// parallel merge possible: workers produce per-shard candidate sets and
/// the merge resolves each digest exactly once, in scan order.
///
/// # Examples
///
/// ```
/// use vecycle_checkpoint::DedupIndex;
/// use vecycle_types::{PageDigest, PageIndex};
///
/// let mut sent = DedupIndex::new();
/// let d = PageDigest::from_content_id(7);
/// assert_eq!(sent.insert_first(d, PageIndex::new(3)), PageIndex::new(3));
/// // A later page with the same content resolves to the first sender.
/// assert_eq!(sent.insert_first(d, PageIndex::new(9)), PageIndex::new(3));
/// assert_eq!(sent.get(d), Some(PageIndex::new(3)));
/// assert_eq!(sent.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DedupIndex {
    shards: Vec<DigestTable<PageIndex>>,
}

impl DedupIndex {
    /// An empty index.
    pub fn new() -> Self {
        DedupIndex {
            shards: (0..SHARD_COUNT).map(|_| DigestTable::new()).collect(),
        }
    }

    /// The shard a digest belongs to (stable across runs and threads).
    ///
    /// Folds all eight leading digest bytes down to the shard mask
    /// rather than masking the low bits of byte 0 alone: digests from
    /// truncated SHA variants are uniform in every byte, but synthetic
    /// workloads (and any future digest source with structure in its
    /// first byte) would pile into a few shards under a one-byte mask,
    /// serialising the parallel scan. Determinism is what the merge
    /// needs, and this stays a pure function of the digest.
    pub fn shard_of(digest: PageDigest) -> usize {
        let k = digest.short_key();
        let folded = k ^ (k >> 32);
        let folded = folded ^ (folded >> 16);
        let folded = folded ^ (folded >> 8);
        folded as usize & (SHARD_COUNT - 1)
    }

    /// Number of shards an index is split into.
    pub const fn shard_count() -> usize {
        SHARD_COUNT
    }

    /// The page that first carried this content, if any was recorded.
    pub fn get(&self, digest: PageDigest) -> Option<PageIndex> {
        self.shards[Self::shard_of(digest)].get(digest).copied()
    }

    /// True if the digest has been recorded.
    pub fn contains(&self, digest: PageDigest) -> bool {
        self.get(digest).is_some()
    }

    /// Records `idx` as the sender of `digest` unless one is already
    /// recorded; returns the winning (earliest-recorded) page.
    ///
    /// This mirrors `HashMap::entry(digest).or_insert(idx)` — the exact
    /// operation the sequential scan performs per page.
    pub fn insert_first(&mut self, digest: PageDigest, idx: PageIndex) -> PageIndex {
        *self.shards[Self::shard_of(digest)].or_insert(digest, idx)
    }

    /// Records `idx` for `digest`, keeping the smaller page number if the
    /// digest is already present.
    ///
    /// Used when merging per-shard candidate sets produced out of scan
    /// order: the minimum page index is exactly the page the sequential
    /// scan would have inserted first.
    pub fn insert_min(&mut self, digest: PageDigest, idx: PageIndex) {
        let cur = self.shards[Self::shard_of(digest)].or_insert(digest, idx);
        if idx < *cur {
            *cur = idx;
        }
    }

    /// Number of distinct digests recorded.
    pub fn len(&self) -> usize {
        self.shards.iter().map(DigestTable::len).sum()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(DigestTable::is_empty)
    }

    /// All recorded (digest, first sender) pairs, in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (PageDigest, PageIndex)> + '_ {
        self.shards
            .iter()
            .flat_map(|s| s.iter().map(|(d, i)| (d, *i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(id: u64) -> PageDigest {
        PageDigest::from_content_id(id)
    }

    fn p(i: u64) -> PageIndex {
        PageIndex::new(i)
    }

    #[test]
    fn first_insert_wins() {
        let mut idx = DedupIndex::new();
        assert_eq!(idx.insert_first(d(1), p(5)), p(5));
        assert_eq!(idx.insert_first(d(1), p(2)), p(5));
        assert_eq!(idx.get(d(1)), Some(p(5)));
    }

    #[test]
    fn insert_min_keeps_smallest() {
        let mut idx = DedupIndex::new();
        idx.insert_min(d(1), p(9));
        idx.insert_min(d(1), p(4));
        idx.insert_min(d(1), p(7));
        assert_eq!(idx.get(d(1)), Some(p(4)));
    }

    #[test]
    fn len_spans_shards() {
        let mut idx = DedupIndex::new();
        assert!(idx.is_empty());
        // Content IDs diffuse into digest prefixes, so these land in
        // several shards; len must sum across all of them.
        for i in 1..=100 {
            idx.insert_first(d(i), p(i));
        }
        assert_eq!(idx.len(), 100);
        assert!(!idx.is_empty());
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for i in 0..1000 {
            let s = DedupIndex::shard_of(d(i));
            assert!(s < DedupIndex::shard_count());
            assert_eq!(s, DedupIndex::shard_of(d(i)));
        }
    }

    #[test]
    fn iter_yields_all_pairs() {
        let mut idx = DedupIndex::new();
        for i in 1..=10 {
            idx.insert_first(d(i), p(i * 10));
        }
        let mut pairs: Vec<_> = idx.iter().collect();
        pairs.sort();
        assert_eq!(pairs.len(), 10);
        for (k, (digest, page)) in pairs.iter().enumerate() {
            let _ = k;
            assert_eq!(idx.get(*digest), Some(*page));
        }
    }

    #[test]
    fn matches_plain_hashmap_semantics() {
        use std::collections::HashMap;
        let inserts: Vec<(u64, u64)> = vec![(3, 0), (1, 1), (3, 2), (2, 3), (1, 4), (3, 5), (4, 6)];
        let mut sharded = DedupIndex::new();
        let mut plain: HashMap<PageDigest, PageIndex> = HashMap::new();
        for &(content, page) in &inserts {
            let winner = sharded.insert_first(d(content), p(page));
            let expect = *plain.entry(d(content)).or_insert(p(page));
            assert_eq!(winner, expect);
        }
        assert_eq!(sharded.len(), plain.len());
        for (&digest, &page) in &plain {
            assert_eq!(sharded.get(digest), Some(page));
        }
    }

    /// Same differential model at a scale that drives the swiss-table
    /// shards through several resizes, interleaving `insert_first` and
    /// `insert_min` the way the scan's sequential and merge paths do.
    #[test]
    fn matches_plain_hashmap_semantics_at_scale() {
        use std::collections::HashMap;
        let mut sharded = DedupIndex::new();
        let mut plain: HashMap<PageDigest, PageIndex> = HashMap::new();
        let mut state = 0x9e37_79b9u64;
        for page in 0..30_000u64 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let content = state % 2_048; // heavy duplication incl. zero
            if state & 1 == 0 {
                let winner = sharded.insert_first(d(content), p(page));
                let expect = *plain.entry(d(content)).or_insert(p(page));
                assert_eq!(winner, expect, "page {page}");
            } else {
                sharded.insert_min(d(content), p(page));
                plain
                    .entry(d(content))
                    .and_modify(|cur| *cur = (*cur).min(p(page)))
                    .or_insert(p(page));
            }
        }
        assert_eq!(sharded.len(), plain.len());
        for (&digest, &page) in &plain {
            assert_eq!(sharded.get(digest), Some(page));
        }
    }

    /// The deterministic parallel merge — per-chunk `insert_min`
    /// candidates folded into a global index in arbitrary chunk order —
    /// produces exactly the sequential `insert_first` result, for real
    /// digests from every configured checksum algorithm. Pins the
    /// shard-routing change: shard choice must never affect outcomes.
    #[test]
    fn parallel_merge_matches_sequential_for_all_algorithms() {
        use vecycle_hash::ChecksumAlgorithm;
        // Synthetic guest pages with heavy duplication and zero pages.
        let pages: Vec<Vec<u8>> = (0..600u64)
            .map(|i| {
                let content = (i.wrapping_mul(2_654_435_761)) % 97;
                if content < 13 {
                    vec![0u8; 4096]
                } else {
                    (0..4096)
                        .map(|j| (content as u8).wrapping_mul(j as u8))
                        .collect()
                }
            })
            .collect();
        for algo in ChecksumAlgorithm::ALL {
            let digests: Vec<PageDigest> = pages.iter().map(|pg| algo.page_digest(pg)).collect();

            let mut sequential = DedupIndex::new();
            for (i, &digest) in digests.iter().enumerate() {
                sequential.insert_first(digest, p(i as u64));
            }

            for chunk_size in [1usize, 7, 100, 600] {
                // Workers each reduce one chunk; the merge folds chunks
                // in reversed order to prove order-independence.
                let candidates: Vec<DedupIndex> = digests
                    .chunks(chunk_size)
                    .enumerate()
                    .map(|(k, part)| {
                        let base = (k * chunk_size) as u64;
                        let mut local = DedupIndex::new();
                        for (i, &digest) in part.iter().enumerate() {
                            local.insert_min(digest, p(base + i as u64));
                        }
                        local
                    })
                    .collect();
                let mut merged = DedupIndex::new();
                for local in candidates.iter().rev() {
                    for (digest, idx) in local.iter() {
                        merged.insert_min(digest, idx);
                    }
                }

                assert_eq!(merged.len(), sequential.len(), "{algo} chunk {chunk_size}");
                let mut seq_pairs: Vec<_> = sequential.iter().collect();
                let mut par_pairs: Vec<_> = merged.iter().collect();
                seq_pairs.sort();
                par_pairs.sort();
                assert_eq!(seq_pairs, par_pairs, "{algo} chunk {chunk_size}");
            }
        }
    }

    /// The new shard routing spreads uniformly-distributed digests
    /// across every shard instead of collapsing onto a few.
    #[test]
    fn shard_routing_uses_more_than_one_byte() {
        // Digests identical in byte 0 but different elsewhere must not
        // all land in one shard.
        let shards: std::collections::HashSet<usize> = (0..64u8)
            .map(|i| {
                let mut bytes = [0u8; 16];
                bytes[0] = 0x42;
                bytes[5] = i;
                DedupIndex::shard_of(PageDigest::new(bytes))
            })
            .collect();
        assert!(shards.len() > 4, "only {} shards hit", shards.len());
    }
}
