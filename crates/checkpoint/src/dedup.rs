//! Sender-side dedup state: digest → first page that carried the content.
//!
//! During a migration the source remembers, for every digest it has
//! placed on the wire (or announced as a checksum), the first guest page
//! that carried that content. Later pages with the same digest become
//! [`DedupRef`] back-references instead of full pages (§3.4's
//! deduplication extension).
//!
//! The map is sharded by a digest-prefix so the parallel page scan can
//! hand disjoint shard groups to worker threads without locking; the
//! *semantics* stay those of a single `HashMap::entry(..).or_insert(..)`:
//! the first inserter of a digest wins, and every later query sees that
//! winner.
//!
//! [`DedupRef`]: https://example.invalid/vecycle

use std::collections::HashMap;

use vecycle_types::{PageDigest, PageIndex};

/// Number of shards; a power of two so the prefix maps by mask.
const SHARD_COUNT: usize = 16;

/// Digest → first-sender map, sharded by digest prefix.
///
/// Equivalent to `HashMap<PageDigest, PageIndex>` with first-insert-wins
/// semantics, but split into `SHARD_COUNT` independent sub-maps keyed
/// by the digest's leading byte. Shards are what make a deterministic
/// parallel merge possible: workers produce per-shard candidate sets and
/// the merge resolves each digest exactly once, in scan order.
///
/// # Examples
///
/// ```
/// use vecycle_checkpoint::DedupIndex;
/// use vecycle_types::{PageDigest, PageIndex};
///
/// let mut sent = DedupIndex::new();
/// let d = PageDigest::from_content_id(7);
/// assert_eq!(sent.insert_first(d, PageIndex::new(3)), PageIndex::new(3));
/// // A later page with the same content resolves to the first sender.
/// assert_eq!(sent.insert_first(d, PageIndex::new(9)), PageIndex::new(3));
/// assert_eq!(sent.get(d), Some(PageIndex::new(3)));
/// assert_eq!(sent.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DedupIndex {
    shards: Vec<HashMap<PageDigest, PageIndex>>,
}

impl DedupIndex {
    /// An empty index.
    pub fn new() -> Self {
        DedupIndex {
            shards: (0..SHARD_COUNT).map(|_| HashMap::new()).collect(),
        }
    }

    /// The shard a digest belongs to (stable across runs and threads).
    pub fn shard_of(digest: PageDigest) -> usize {
        digest.as_bytes()[0] as usize & (SHARD_COUNT - 1)
    }

    /// Number of shards an index is split into.
    pub const fn shard_count() -> usize {
        SHARD_COUNT
    }

    /// The page that first carried this content, if any was recorded.
    pub fn get(&self, digest: PageDigest) -> Option<PageIndex> {
        self.shards[Self::shard_of(digest)].get(&digest).copied()
    }

    /// True if the digest has been recorded.
    pub fn contains(&self, digest: PageDigest) -> bool {
        self.get(digest).is_some()
    }

    /// Records `idx` as the sender of `digest` unless one is already
    /// recorded; returns the winning (earliest-recorded) page.
    ///
    /// This mirrors `HashMap::entry(digest).or_insert(idx)` — the exact
    /// operation the sequential scan performs per page.
    pub fn insert_first(&mut self, digest: PageDigest, idx: PageIndex) -> PageIndex {
        *self.shards[Self::shard_of(digest)]
            .entry(digest)
            .or_insert(idx)
    }

    /// Records `idx` for `digest`, keeping the smaller page number if the
    /// digest is already present.
    ///
    /// Used when merging per-shard candidate sets produced out of scan
    /// order: the minimum page index is exactly the page the sequential
    /// scan would have inserted first.
    pub fn insert_min(&mut self, digest: PageDigest, idx: PageIndex) {
        self.shards[Self::shard_of(digest)]
            .entry(digest)
            .and_modify(|cur| {
                if idx < *cur {
                    *cur = idx;
                }
            })
            .or_insert(idx);
    }

    /// Number of distinct digests recorded.
    pub fn len(&self) -> usize {
        self.shards.iter().map(HashMap::len).sum()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(HashMap::is_empty)
    }

    /// All recorded (digest, first sender) pairs, in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (PageDigest, PageIndex)> + '_ {
        self.shards
            .iter()
            .flat_map(|s| s.iter().map(|(d, i)| (*d, *i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(id: u64) -> PageDigest {
        PageDigest::from_content_id(id)
    }

    fn p(i: u64) -> PageIndex {
        PageIndex::new(i)
    }

    #[test]
    fn first_insert_wins() {
        let mut idx = DedupIndex::new();
        assert_eq!(idx.insert_first(d(1), p(5)), p(5));
        assert_eq!(idx.insert_first(d(1), p(2)), p(5));
        assert_eq!(idx.get(d(1)), Some(p(5)));
    }

    #[test]
    fn insert_min_keeps_smallest() {
        let mut idx = DedupIndex::new();
        idx.insert_min(d(1), p(9));
        idx.insert_min(d(1), p(4));
        idx.insert_min(d(1), p(7));
        assert_eq!(idx.get(d(1)), Some(p(4)));
    }

    #[test]
    fn len_spans_shards() {
        let mut idx = DedupIndex::new();
        assert!(idx.is_empty());
        // Content IDs diffuse into digest prefixes, so these land in
        // several shards; len must sum across all of them.
        for i in 1..=100 {
            idx.insert_first(d(i), p(i));
        }
        assert_eq!(idx.len(), 100);
        assert!(!idx.is_empty());
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for i in 0..1000 {
            let s = DedupIndex::shard_of(d(i));
            assert!(s < DedupIndex::shard_count());
            assert_eq!(s, DedupIndex::shard_of(d(i)));
        }
    }

    #[test]
    fn iter_yields_all_pairs() {
        let mut idx = DedupIndex::new();
        for i in 1..=10 {
            idx.insert_first(d(i), p(i * 10));
        }
        let mut pairs: Vec<_> = idx.iter().collect();
        pairs.sort();
        assert_eq!(pairs.len(), 10);
        for (k, (digest, page)) in pairs.iter().enumerate() {
            let _ = k;
            assert_eq!(idx.get(*digest), Some(*page));
        }
    }

    #[test]
    fn matches_plain_hashmap_semantics() {
        use std::collections::HashMap;
        let inserts: Vec<(u64, u64)> = vec![(3, 0), (1, 1), (3, 2), (2, 3), (1, 4), (3, 5), (4, 6)];
        let mut sharded = DedupIndex::new();
        let mut plain: HashMap<PageDigest, PageIndex> = HashMap::new();
        for &(content, page) in &inserts {
            let winner = sharded.insert_first(d(content), p(page));
            let expect = *plain.entry(d(content)).or_insert(p(page));
            assert_eq!(winner, expect);
        }
        assert_eq!(sharded.len(), plain.len());
        for (&digest, &page) in &plain {
            assert_eq!(sharded.get(digest), Some(page));
        }
    }
}
