//! Property tests: the wire decoder is total — arbitrary bytes never
//! panic, they fail cleanly.

use proptest::collection::vec;
use proptest::prelude::*;

use vecycle_checkpoint::{Checkpoint, ChecksumIndex, PageLookup};
use vecycle_mem::DigestMemory;
use vecycle_types::{PageDigest, SimTime, VmId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Feeding garbage to the checkpoint decoder returns an error (never
    /// panics, never fabricates a checkpoint).
    #[test]
    fn decoder_is_total_on_garbage(bytes in vec(any::<u8>(), 0..4096)) {
        let _ = Checkpoint::read_from(&bytes[..]);
    }

    /// A valid file with any suffix/truncation either round-trips
    /// exactly or errors — never a silently different checkpoint.
    #[test]
    fn decoder_never_misreads(ids in vec(0u64..100, 1..64), cut in any::<usize>()) {
        let mem = DigestMemory::from_digests(
            ids.iter().map(|&i| PageDigest::from_content_id(i)).collect(),
        );
        let cp = Checkpoint::capture(VmId::new(1), SimTime::EPOCH, &mem);
        let mut buf = Vec::new();
        cp.write_to(&mut buf).unwrap();
        let cut = cut % (buf.len() + 1);
        if let Ok(decoded) = Checkpoint::read_from(&buf[..cut]) {
            prop_assert_eq!(decoded, cp);
        }
    }

    /// Index lookups agree with membership in the original digest list.
    #[test]
    fn index_matches_membership(ids in vec(0u64..64, 1..128), probe in 0u64..128) {
        let digests: Vec<PageDigest> =
            ids.iter().map(|&i| PageDigest::from_content_id(i)).collect();
        let index = ChecksumIndex::build(digests.clone());
        let d = PageDigest::from_content_id(probe);
        prop_assert_eq!(index.contains(d), digests.contains(&d));
        if let Some(offset) = index.lookup(d) {
            prop_assert_eq!(digests[offset.as_usize()], d);
            // First occurrence.
            prop_assert!(digests[..offset.as_usize()].iter().all(|x| *x != d));
        }
    }
}
