//! Round-trip and corruption properties of the checkpoint wire format.
//!
//! Three contracts, checked over generated inputs:
//!
//! 1. `write_to → read_from` is the identity for every checkpoint kind
//!    (digest-level and full-byte), including the empty and single-page
//!    edges and digests produced by every [`ChecksumAlgorithm`];
//! 2. flipping any *single bit* of a valid file yields
//!    [`Error::Corrupt`] — never a panic, never a silently different
//!    checkpoint (the FNV trailer has no blind spots);
//! 3. the decoder's error is equally clean when whole bytes are
//!    corrupted at random positions.

use proptest::collection::vec;
use proptest::prelude::*;

use vecycle_checkpoint::{Checkpoint, CheckpointData};
use vecycle_hash::ChecksumAlgorithm;
use vecycle_types::{Error, PageDigest, SimDuration, SimTime, VmId};

fn encode(cp: &Checkpoint) -> Vec<u8> {
    let mut buf = Vec::new();
    cp.write_to(&mut buf).expect("writing to a Vec cannot fail");
    buf
}

fn digest_checkpoint(ids: &[u64], vm: u32, at_hours: u64) -> Checkpoint {
    let digests: Vec<PageDigest> = ids
        .iter()
        .map(|&i| PageDigest::from_content_id(i))
        .collect();
    Checkpoint::from_parts(
        VmId::new(vm),
        SimTime::EPOCH + SimDuration::from_hours(at_hours),
        CheckpointData::Digests(digests),
    )
    .expect("digest payloads are always valid")
}

fn page_checkpoint(pages: &[u8], vm: u32) -> Checkpoint {
    // Each input byte inflates to one 4 KiB page filled with it.
    let bytes: Vec<u8> = pages.iter().flat_map(|&b| [b; 4096]).collect();
    Checkpoint::from_parts(VmId::new(vm), SimTime::EPOCH, CheckpointData::Pages(bytes))
        .expect("whole pages are always valid")
}

#[test]
fn empty_and_single_page_edges_round_trip() {
    for cp in [
        digest_checkpoint(&[], 0, 0),
        digest_checkpoint(&[7], 1, 1),
        page_checkpoint(&[], 2),
        page_checkpoint(&[0xab], 3),
    ] {
        let buf = encode(&cp);
        assert_eq!(Checkpoint::read_from(&buf[..]).unwrap(), cp);
    }
}

#[test]
fn every_checksum_algorithm_round_trips() {
    // Digests from all four algorithms are opaque 16-byte values to the
    // wire format; none may confuse the codec (an early XXH3 draft
    // produced all-zero digests for some inputs — exactly the kind of
    // value the zero-page special case could trip over).
    let page_a = [0x5au8; 4096];
    let page_b = [0x00u8; 4096];
    for alg in ChecksumAlgorithm::ALL {
        let digests = vec![
            alg.page_digest(&page_a),
            alg.page_digest(&page_b),
            PageDigest::ZERO_PAGE,
            alg.page_digest(&page_a),
        ];
        let cp = Checkpoint::from_parts(
            VmId::new(9),
            SimTime::EPOCH,
            CheckpointData::Digests(digests),
        )
        .unwrap();
        let buf = encode(&cp);
        assert_eq!(Checkpoint::read_from(&buf[..]).unwrap(), cp, "{alg:?}");
    }
}

#[test]
fn single_bit_flips_are_always_corrupt_exhaustively() {
    // Small checkpoints keep the exhaustive sweep cheap: every bit of
    // every byte, for both kinds.
    for cp in [
        digest_checkpoint(&[1, 2, 0, 2], 5, 3),
        page_checkpoint(&[0x11], 6),
    ] {
        let buf = encode(&cp);
        for i in 0..buf.len() {
            for bit in 0..8 {
                let mut flipped = buf.clone();
                flipped[i] ^= 1 << bit;
                match Checkpoint::read_from(&flipped[..]) {
                    Err(Error::Corrupt { .. }) => {}
                    Err(other) => panic!("bit {bit} of byte {i}: non-Corrupt error {other}"),
                    Ok(decoded) => panic!(
                        "bit {bit} of byte {i}: decoded silently to {:?} pages",
                        decoded.page_count()
                    ),
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Digest checkpoints of arbitrary content and metadata round-trip.
    #[test]
    fn digest_round_trip(ids in vec(any::<u64>(), 0..96), vm in any::<u32>(), hours in 0u64..100_000) {
        let cp = digest_checkpoint(&ids, vm, hours);
        let buf = encode(&cp);
        prop_assert_eq!(Checkpoint::read_from(&buf[..]).unwrap(), cp);
    }

    /// Full-byte checkpoints round-trip.
    #[test]
    fn pages_round_trip(fills in vec(any::<u8>(), 0..8), vm in any::<u32>()) {
        let cp = page_checkpoint(&fills, vm);
        let buf = encode(&cp);
        prop_assert_eq!(Checkpoint::read_from(&buf[..]).unwrap(), cp);
    }

    /// A single bit flip anywhere in a generated file is Corrupt.
    #[test]
    fn random_bit_flip_is_corrupt(ids in vec(any::<u64>(), 0..64), pos in any::<usize>(), bit in 0u8..8) {
        let buf = encode(&digest_checkpoint(&ids, 1, 0));
        let mut flipped = buf.clone();
        let i = pos % flipped.len();
        flipped[i] ^= 1 << bit;
        match Checkpoint::read_from(&flipped[..]) {
            Err(Error::Corrupt { .. }) => {}
            Err(other) => prop_assert!(false, "non-Corrupt error {}", other),
            Ok(_) => prop_assert!(false, "flipped file decoded"),
        }
    }
}
