//! [`RetryPolicy`]: how the session retries failed migration attempts.

use vecycle_types::SimDuration;

/// Retry behaviour for failed migration attempts: a bounded number of
/// attempts with capped exponential backoff in *simulated* time, and a
/// switch controlling whether retries resume from the partial checkpoint
/// an aborted transfer left at the destination (the paper's recycling
/// idea turned inward) or start from scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (`1` = never retry).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per further attempt.
    pub base_backoff: SimDuration,
    /// Ceiling on any single backoff.
    pub max_backoff: SimDuration,
    /// Recycle the aborted transfer's landed pages on retry.
    pub resume_from_partial: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: SimDuration::from_secs(1),
            max_backoff: SimDuration::from_secs(60),
            resume_from_partial: true,
        }
    }
}

impl RetryPolicy {
    /// Give up after the first failure.
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Default policy but restarting every retry from scratch — the
    /// baseline the failure-sweep experiment compares resume against.
    pub fn from_scratch() -> Self {
        RetryPolicy {
            resume_from_partial: false,
            ..RetryPolicy::default()
        }
    }

    /// A copy with a different attempt budget.
    #[must_use]
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// The backoff to wait before attempt `attempt` (1-based). The first
    /// attempt starts immediately; attempt `n ≥ 2` waits
    /// `min(base · 2^(n-2), max)`.
    pub fn backoff_before(&self, attempt: u32) -> SimDuration {
        if attempt <= 1 {
            return SimDuration::ZERO;
        }
        let exp = (attempt - 2).min(u32::BITS - 1);
        let factor = 1u64.checked_shl(exp).unwrap_or(u64::MAX);
        let ns = self.base_backoff.as_nanos().saturating_mul(factor);
        SimDuration::from_nanos(ns).min(self.max_backoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_attempt_has_no_backoff() {
        assert_eq!(RetryPolicy::default().backoff_before(1), SimDuration::ZERO);
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: SimDuration::from_secs(1),
            max_backoff: SimDuration::from_secs(5),
            resume_from_partial: true,
        };
        assert_eq!(p.backoff_before(2), SimDuration::from_secs(1));
        assert_eq!(p.backoff_before(3), SimDuration::from_secs(2));
        assert_eq!(p.backoff_before(4), SimDuration::from_secs(4));
        assert_eq!(p.backoff_before(5), SimDuration::from_secs(5)); // capped
        assert_eq!(p.backoff_before(60), SimDuration::from_secs(5)); // shift-safe
    }

    #[test]
    fn no_retry_is_single_attempt() {
        assert_eq!(RetryPolicy::no_retry().max_attempts, 1);
        assert!(!RetryPolicy::from_scratch().resume_from_partial);
    }

    #[test]
    fn with_max_attempts_floors_at_one() {
        assert_eq!(RetryPolicy::default().with_max_attempts(0).max_attempts, 1);
    }
}
