//! Deterministic fault injection for the VeCycle simulation.
//!
//! The paper's premise is that state left behind by earlier transfers can
//! be recycled (§3) and that the system degrades gracefully when no
//! checkpoint is usable (§4.6). This crate supplies the *failure* half of
//! that story: a seeded, reproducible [`FaultPlan`] that injects faults at
//! precise points of a migration schedule, and the [`RetryPolicy`] the
//! session layer uses to recover from them.
//!
//! Everything here is pure data plus a tiny splitmix/xorshift generator —
//! no clocks, no OS randomness — so a `(seed, FaultPlan)` pair always
//! produces the same failure trace, bit for bit, at any thread count.
//!
//! # Fault taxonomy
//!
//! | Fault | Injection point | Recovery |
//! |---|---|---|
//! | [`FaultKind::LinkDrop`] | after N bytes / a RAM fraction on the wire | abort, leave a partial checkpoint, retry resumes from it |
//! | [`FaultKind::LinkDegrade`] | from a pre-copy round onwards | none needed — rounds just slow down |
//! | [`FaultKind::CheckpointCorrupt`] | on checkpoint load at the destination | discard, fall back to dedup-only |
//! | [`FaultKind::CrashDuringSave`] | while persisting the post-migration checkpoint | old checkpoint survives (atomic rename), new one is lost |
//! | [`FaultKind::DirtySpike`] | guest dirty rate multiplies mid-migration | convergence guard forces stop-and-copy |
//!
//! # Examples
//!
//! ```
//! use vecycle_faults::{DropPoint, FaultKind, FaultPlan, FaultRates};
//!
//! // Hand-crafted: leg 2's first attempt dies halfway through RAM.
//! let plan = FaultPlan::none().inject(
//!     2,
//!     FaultKind::LinkDrop { after: DropPoint::RamFraction(0.5), attempts: 1 },
//! );
//! assert_eq!(plan.faults(2).len(), 1);
//! assert!(plan.faults(0).is_empty());
//!
//! // Seeded: 30% of 100 legs suffer a link drop, reproducibly.
//! let rates = FaultRates { link_drop: 0.3, ..FaultRates::default() };
//! let a = FaultPlan::seeded(7, &rates, 100);
//! let b = FaultPlan::seeded(7, &rates, 100);
//! assert_eq!(a, b);
//! ```

mod obs;
mod plan;
mod retry;

pub use obs::observe_plan;
pub use plan::{AttemptFaults, DropPoint, FaultKind, FaultPlan, FaultRates};
pub use retry::RetryPolicy;

use std::fmt;

/// Why a migration attempt aborted or degraded.
///
/// Causes are deliberately field-less so they stay `Copy + Eq + Hash` and
/// can be embedded in reports and transcripts without breaking their
/// derives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultCause {
    /// The migration link dropped mid-transfer.
    LinkFailure,
    /// The destination checkpoint failed validation on load.
    CorruptCheckpoint,
    /// The similarity probe found the checkpoint too stale to recycle.
    LowSimilarity,
    /// Pre-copy hit its round/time budget without converging.
    NonConvergence,
    /// The destination host crashed mid-transfer and restarted from its
    /// disk store.
    HostCrash,
    /// The checkpoint the destination would have recycled was evicted
    /// under disk pressure before the migration arrived.
    CheckpointEvicted,
}

impl fmt::Display for FaultCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultCause::LinkFailure => "link failure",
            FaultCause::CorruptCheckpoint => "corrupt checkpoint",
            FaultCause::LowSimilarity => "low similarity",
            FaultCause::NonConvergence => "non-convergence",
            FaultCause::HostCrash => "host crash",
            FaultCause::CheckpointEvicted => "checkpoint evicted",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn causes_display_as_prose() {
        assert_eq!(FaultCause::LinkFailure.to_string(), "link failure");
        assert_eq!(FaultCause::NonConvergence.to_string(), "non-convergence");
    }
}
