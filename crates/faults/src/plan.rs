//! [`FaultPlan`]: which faults strike which migration legs.

use std::collections::BTreeMap;

use vecycle_types::Bytes;

/// Where on the wire a [`FaultKind::LinkDrop`] cuts the transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DropPoint {
    /// After this many forward-path payload bytes have been sent.
    Bytes(Bytes),
    /// After a fraction of the guest's RAM size worth of payload bytes.
    ///
    /// Resolved against the actual RAM size when the attempt starts, so
    /// the same plan scales across VM sizes.
    RamFraction(f64),
}

impl DropPoint {
    /// Resolves the cut point to a concrete byte count for a guest with
    /// `ram` bytes of memory.
    pub fn resolve(self, ram: Bytes) -> Bytes {
        match self {
            DropPoint::Bytes(b) => b,
            DropPoint::RamFraction(f) => Bytes::new((ram.as_f64() * f.clamp(0.0, 1.0)) as u64),
        }
    }
}

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The link drops after [`DropPoint`] bytes; the first `attempts`
    /// attempts of the leg are affected, later retries get a clean link
    /// (the transient-failure model).
    LinkDrop { after: DropPoint, attempts: u32 },
    /// From pre-copy round `from_round` (1-based) onwards, link bandwidth
    /// is multiplied by `factor` (`0 < factor <= 1`).
    LinkDegrade { factor: f64, from_round: u32 },
    /// The destination's stored checkpoint is corrupt and fails
    /// validation on load.
    CheckpointCorrupt,
    /// The source host crashes while persisting the post-migration
    /// checkpoint: the new checkpoint is lost, the previous one survives
    /// (guaranteed by `DiskStore`'s fsync + atomic-rename protocol).
    CrashDuringSave,
    /// From pre-copy round `from_round` onwards the guest dirties pages
    /// `factor`× faster, typically defeating convergence.
    DirtySpike { factor: f64, from_round: u32 },
    /// The *destination host* dies after [`DropPoint`] bytes have
    /// landed: the transfer aborts like a link drop, but the host also
    /// loses its in-memory checkpoint catalog and must restart from its
    /// disk store (scrub pass included) before the retry. The first
    /// `attempts` attempts are affected.
    HostCrash { after: DropPoint, attempts: u32 },
}

/// Per-fault-type probabilities for [`FaultPlan::seeded`], each in
/// `[0, 1]` and applied independently per migration leg.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Probability a leg's first attempt suffers a mid-transfer link drop.
    pub link_drop: f64,
    /// Probability the link degrades partway through pre-copy.
    pub link_degrade: f64,
    /// Probability the destination checkpoint is corrupt on load.
    pub corrupt_checkpoint: f64,
    /// Probability the guest's dirty rate spikes mid-migration.
    pub dirty_spike: f64,
    /// Probability the source crashes while saving the new checkpoint.
    pub crash_on_save: f64,
    /// Probability the destination host crashes mid-transfer and has to
    /// restart (with a disk scrub) before the retry.
    pub host_crash: f64,
}

impl FaultRates {
    /// No faults at all.
    pub fn none() -> Self {
        FaultRates::default()
    }

    /// A uniform rate `p` for every fault type [`FaultPlan::seeded`]'s
    /// original draw stream covers. [`FaultRates::host_crash`] stays
    /// zero — it rides a second, independent stream (see
    /// [`FaultPlan::with_host_crashes`]) so historic seeded plans stay
    /// byte-identical.
    pub fn uniform(p: f64) -> Self {
        FaultRates {
            link_drop: p,
            link_degrade: p,
            corrupt_checkpoint: p,
            dirty_spike: p,
            crash_on_save: p,
            host_crash: 0.0,
        }
    }
}

/// A deterministic map from migration-leg index to the faults that strike
/// it. Built by hand with [`FaultPlan::inject`] or generated from a seed
/// with [`FaultPlan::seeded`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    legs: BTreeMap<usize, Vec<FaultKind>>,
}

impl FaultPlan {
    /// The empty plan: every migration runs clean.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault to leg `leg` (builder style).
    #[must_use]
    pub fn inject(mut self, leg: usize, fault: FaultKind) -> Self {
        self.legs.entry(leg).or_default().push(fault);
        self
    }

    /// The faults striking leg `leg` (empty for clean legs).
    pub fn faults(&self, leg: usize) -> &[FaultKind] {
        self.legs.get(&leg).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True if no leg has any fault.
    pub fn is_empty(&self) -> bool {
        self.legs.values().all(Vec::is_empty)
    }

    /// Number of legs with at least one fault.
    pub fn faulted_legs(&self) -> usize {
        self.legs.values().filter(|v| !v.is_empty()).count()
    }

    /// Every armed fault with its leg index, in ascending leg order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &FaultKind)> {
        self.legs
            .iter()
            .flat_map(|(&leg, faults)| faults.iter().map(move |f| (leg, f)))
    }

    /// Generates a plan for `legs` migration legs from a seed and
    /// per-fault rates. Same `(seed, rates, legs)` → same plan, always:
    /// the generator is a self-contained xorshift with a fixed draw order
    /// (one draw per fault type per leg, plus parameter draws), so adding
    /// legs never perturbs earlier ones.
    pub fn seeded(seed: u64, rates: &FaultRates, legs: usize) -> Self {
        let mut rng = SplitXorshift::new(seed);
        let mut plan = FaultPlan::none();
        for leg in 0..legs {
            // Draw parameters unconditionally so each leg consumes a fixed
            // number of draws regardless of which faults fire.
            let drop_p = rng.next_f64();
            let drop_frac = 0.1 + 0.8 * rng.next_f64();
            let degrade_p = rng.next_f64();
            let degrade_factor = 0.2 + 0.3 * rng.next_f64();
            let corrupt_p = rng.next_f64();
            let spike_p = rng.next_f64();
            let spike_factor = 4.0 + 8.0 * rng.next_f64();
            let crash_p = rng.next_f64();

            if drop_p < rates.link_drop {
                plan = plan.inject(
                    leg,
                    FaultKind::LinkDrop {
                        after: DropPoint::RamFraction(drop_frac),
                        attempts: 1,
                    },
                );
            }
            if degrade_p < rates.link_degrade {
                plan = plan.inject(
                    leg,
                    FaultKind::LinkDegrade {
                        factor: degrade_factor,
                        from_round: 2,
                    },
                );
            }
            if corrupt_p < rates.corrupt_checkpoint {
                plan = plan.inject(leg, FaultKind::CheckpointCorrupt);
            }
            if spike_p < rates.dirty_spike {
                plan = plan.inject(
                    leg,
                    FaultKind::DirtySpike {
                        factor: spike_factor,
                        from_round: 2,
                    },
                );
            }
            if crash_p < rates.crash_on_save {
                plan = plan.inject(leg, FaultKind::CrashDuringSave);
            }
        }
        // Host crashes ride a second, independent generator appended
        // after the main loop: a plan seeded before host crashes
        // existed reproduces byte-identically (rate 0 draws nothing
        // from the old stream), and enabling them never perturbs the
        // faults above.
        if rates.host_crash > 0.0 {
            plan = plan.with_host_crashes(seed, rates.host_crash, legs);
        }
        plan
    }

    /// Adds seeded destination-host crashes on top of an existing plan,
    /// using a generator stream independent of [`FaultPlan::seeded`]'s:
    /// same `(seed, rate, legs)` → same crash set, and the faults
    /// already in the plan are untouched.
    #[must_use]
    pub fn with_host_crashes(mut self, seed: u64, rate: f64, legs: usize) -> Self {
        let mut rng = SplitXorshift::new(seed ^ 0x48c5_0000_c3a5_0001);
        for leg in 0..legs {
            // Fixed two draws per leg, fired or not.
            let crash_p = rng.next_f64();
            let crash_frac = 0.15 + 0.7 * rng.next_f64();
            if crash_p < rate {
                self = self.inject(
                    leg,
                    FaultKind::HostCrash {
                        after: DropPoint::RamFraction(crash_frac),
                        attempts: 1,
                    },
                );
            }
        }
        self
    }

    /// Projects the leg's faults onto one numbered attempt (1-based),
    /// producing the subset the migration *engine* consumes. Session-level
    /// faults ([`FaultKind::CheckpointCorrupt`], [`FaultKind::CrashDuringSave`])
    /// are not part of the result; the session handles those itself.
    pub fn for_attempt(&self, leg: usize, attempt: u32) -> AttemptFaults {
        let mut out = AttemptFaults::none();
        for fault in self.faults(leg) {
            match *fault {
                // A host crash subsumes a link drop armed on the same
                // leg (the link to a dead host is down either way), so
                // its cut point and cause win regardless of injection
                // order.
                FaultKind::LinkDrop { after, attempts } if attempt <= attempts => {
                    if out.cut_cause != Some(crate::FaultCause::HostCrash) {
                        out.cut_after = Some(after);
                        out.cut_cause = Some(crate::FaultCause::LinkFailure);
                    }
                }
                FaultKind::LinkDrop { .. } => {}
                FaultKind::HostCrash { after, attempts } if attempt <= attempts => {
                    out.cut_after = Some(after);
                    out.cut_cause = Some(crate::FaultCause::HostCrash);
                }
                FaultKind::HostCrash { .. } => {}
                FaultKind::LinkDegrade { factor, from_round } => {
                    out.degrade = Some((factor, from_round));
                }
                FaultKind::DirtySpike { factor, from_round } => {
                    out.dirty_spike = Some((factor, from_round));
                }
                FaultKind::CheckpointCorrupt | FaultKind::CrashDuringSave => {}
            }
        }
        out
    }

    /// True if any fault on `leg` matches `pred`.
    pub fn has(&self, leg: usize, pred: impl Fn(&FaultKind) -> bool) -> bool {
        self.faults(leg).iter().any(pred)
    }
}

/// The engine-visible faults for a single migration attempt.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AttemptFaults {
    /// Cut the forward transfer after this many payload bytes.
    pub cut_after: Option<DropPoint>,
    /// What to blame when `cut_after` fires (defaults to
    /// [`FaultCause::LinkFailure`](crate::FaultCause::LinkFailure); a
    /// [`FaultKind::HostCrash`] sets
    /// [`FaultCause::HostCrash`](crate::FaultCause::HostCrash) so the
    /// session knows to crash/restart the destination).
    pub cut_cause: Option<crate::FaultCause>,
    /// `(bandwidth factor, from_round)` link degradation.
    pub degrade: Option<(f64, u32)>,
    /// `(dirty-rate factor, from_round)` workload spike.
    pub dirty_spike: Option<(f64, u32)>,
}

impl AttemptFaults {
    /// No engine-level faults this attempt.
    pub fn none() -> Self {
        AttemptFaults::default()
    }

    /// True if this attempt runs with a completely clean engine path.
    pub fn is_clean(&self) -> bool {
        self.cut_after.is_none() && self.degrade.is_none() && self.dirty_spike.is_none()
    }

    /// The cause to report when the armed cut fires.
    pub fn abort_cause(&self) -> crate::FaultCause {
        self.cut_cause.unwrap_or(crate::FaultCause::LinkFailure)
    }
}

/// Self-contained deterministic generator: splitmix64 seeding (so seed 0
/// works) feeding the same xorshift64 the schedule generator uses.
struct SplitXorshift {
    state: u64,
}

impl SplitXorshift {
    fn new(seed: u64) -> Self {
        // splitmix64 finalizer — decorrelates adjacent seeds and never
        // yields the all-zero xorshift fixpoint.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        SplitXorshift { state: z | 1 }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_clean_everywhere() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.faulted_legs(), 0);
        assert!(plan.faults(17).is_empty());
        assert!(plan.for_attempt(17, 1).is_clean());
    }

    #[test]
    fn inject_targets_one_leg() {
        let plan = FaultPlan::none().inject(3, FaultKind::CheckpointCorrupt);
        assert_eq!(plan.faults(3), &[FaultKind::CheckpointCorrupt]);
        assert!(plan.faults(2).is_empty());
        assert_eq!(plan.faulted_legs(), 1);
    }

    #[test]
    fn link_drop_clears_after_configured_attempts() {
        let plan = FaultPlan::none().inject(
            0,
            FaultKind::LinkDrop {
                after: DropPoint::Bytes(Bytes::from_mib(1)),
                attempts: 2,
            },
        );
        assert!(plan.for_attempt(0, 1).cut_after.is_some());
        assert!(plan.for_attempt(0, 2).cut_after.is_some());
        assert!(plan.for_attempt(0, 3).cut_after.is_none());
    }

    #[test]
    fn degrade_and_spike_persist_across_attempts() {
        let plan = FaultPlan::none()
            .inject(
                0,
                FaultKind::LinkDegrade {
                    factor: 0.5,
                    from_round: 2,
                },
            )
            .inject(
                0,
                FaultKind::DirtySpike {
                    factor: 8.0,
                    from_round: 3,
                },
            );
        for attempt in 1..=4 {
            let f = plan.for_attempt(0, attempt);
            assert_eq!(f.degrade, Some((0.5, 2)));
            assert_eq!(f.dirty_spike, Some((8.0, 3)));
        }
    }

    #[test]
    fn seeded_is_reproducible() {
        let rates = FaultRates::uniform(0.4);
        let a = FaultPlan::seeded(42, &rates, 64);
        let b = FaultPlan::seeded(42, &rates, 64);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(43, &rates, 64);
        assert_ne!(a, c, "different seeds should differ at 40% rates");
    }

    #[test]
    fn seeded_prefix_is_stable_under_leg_growth() {
        let rates = FaultRates::uniform(0.5);
        let short = FaultPlan::seeded(7, &rates, 10);
        let long = FaultPlan::seeded(7, &rates, 50);
        for leg in 0..10 {
            assert_eq!(short.faults(leg), long.faults(leg), "leg {leg}");
        }
    }

    #[test]
    fn seeded_rate_roughly_honoured() {
        let rates = FaultRates {
            link_drop: 0.5,
            ..FaultRates::default()
        };
        let plan = FaultPlan::seeded(1, &rates, 1000);
        let hits = plan.faulted_legs();
        assert!((350..650).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn zero_rates_yield_empty_plan() {
        assert!(FaultPlan::seeded(9, &FaultRates::none(), 100).is_empty());
    }

    #[test]
    fn host_crash_stream_is_independent_of_the_legacy_stream() {
        // Turning host crashes on must not perturb the faults the
        // original five-type stream generated — every historical seeded
        // plan keeps its exact fault set.
        let base = FaultRates::uniform(0.4);
        let with_crashes = FaultRates {
            host_crash: 0.5,
            ..base
        };
        let old = FaultPlan::seeded(21, &base, 40);
        let new = FaultPlan::seeded(21, &with_crashes, 40);
        for leg in 0..40 {
            let old_faults = old.faults(leg);
            let kept: Vec<_> = new
                .faults(leg)
                .iter()
                .filter(|f| !matches!(f, FaultKind::HostCrash { .. }))
                .copied()
                .collect();
            assert_eq!(old_faults, kept.as_slice(), "leg {leg}");
        }
        assert!(new
            .iter()
            .any(|(_, f)| matches!(f, FaultKind::HostCrash { .. })));
    }

    #[test]
    fn host_crash_cut_carries_its_cause_and_wins_over_link_drop() {
        let crash = FaultKind::HostCrash {
            after: DropPoint::RamFraction(0.3),
            attempts: 1,
        };
        let drop = FaultKind::LinkDrop {
            after: DropPoint::Bytes(Bytes::from_mib(1)),
            attempts: 2,
        };
        for plan in [
            FaultPlan::none().inject(0, crash).inject(0, drop),
            FaultPlan::none().inject(0, drop).inject(0, crash),
        ] {
            let f = plan.for_attempt(0, 1);
            assert_eq!(f.cut_after, Some(DropPoint::RamFraction(0.3)));
            assert_eq!(f.abort_cause(), crate::FaultCause::HostCrash);
            // Attempt 2: the crash cleared, the 2-attempt drop remains.
            let f2 = plan.for_attempt(0, 2);
            assert_eq!(f2.cut_after, Some(DropPoint::Bytes(Bytes::from_mib(1))));
            assert_eq!(f2.abort_cause(), crate::FaultCause::LinkFailure);
        }
    }

    #[test]
    fn plain_cut_defaults_to_link_failure_cause() {
        assert_eq!(
            AttemptFaults::none().abort_cause(),
            crate::FaultCause::LinkFailure
        );
    }

    #[test]
    fn drop_point_resolution() {
        let ram = Bytes::from_mib(256);
        assert_eq!(
            DropPoint::Bytes(Bytes::from_mib(3)).resolve(ram),
            Bytes::from_mib(3)
        );
        assert_eq!(
            DropPoint::RamFraction(0.5).resolve(ram),
            Bytes::from_mib(128)
        );
        assert_eq!(DropPoint::RamFraction(2.0).resolve(ram), ram);
    }
}
