//! Metrics for fault injection: what was *planned* vs what actually
//! *struck*.
//!
//! The plan side is recorded here ([`observe_plan`]); the observed side
//! is recorded by the session layer when an attempt actually aborts or
//! degrades (`faults_observed_total{cause=…}`). Comparing the two
//! separates "the harness armed a fault" from "the fault bit" — e.g. a
//! `LinkDrop` armed on a leg the schedule ended up skipping never shows
//! up on the observed side.

use vecycle_obs::MetricsRegistry;

use crate::{FaultCause, FaultKind, FaultPlan};

impl FaultKind {
    /// Stable snake_case label for metrics (`faults_injected_total{kind=…}`).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::LinkDrop { .. } => "link_drop",
            FaultKind::LinkDegrade { .. } => "link_degrade",
            FaultKind::CheckpointCorrupt => "checkpoint_corrupt",
            FaultKind::CrashDuringSave => "crash_during_save",
            FaultKind::DirtySpike { .. } => "dirty_spike",
            FaultKind::HostCrash { .. } => "host_crash",
        }
    }
}

impl FaultCause {
    /// Stable snake_case label for metrics (`faults_observed_total{cause=…}`).
    pub fn label(&self) -> &'static str {
        match self {
            FaultCause::LinkFailure => "link_failure",
            FaultCause::CorruptCheckpoint => "corrupt_checkpoint",
            FaultCause::LowSimilarity => "low_similarity",
            FaultCause::NonConvergence => "non_convergence",
            FaultCause::HostCrash => "host_crash",
            FaultCause::CheckpointEvicted => "checkpoint_evicted",
        }
    }
}

/// Records every fault the plan has armed, by kind, into
/// `faults_injected_total{kind=…}`, plus the armed-leg count in
/// `faults_injected_legs_total`. Call once per schedule run.
///
/// An empty plan records *nothing* — not even zero-valued series — so a
/// run under a null plan is observationally identical to a run that
/// never had a plan at all (the session layer's clean-is-faulted
/// symmetry depends on this).
pub fn observe_plan(metrics: &MetricsRegistry, plan: &FaultPlan) {
    if plan.is_empty() {
        return;
    }
    metrics.inc(
        "faults_injected_legs_total",
        &[],
        plan.faulted_legs() as u64,
    );
    for (_leg, fault) in plan.iter() {
        metrics.inc("faults_injected_total", &[("kind", fault.label())], 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DropPoint, FaultRates};
    use vecycle_types::Bytes;

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            FaultKind::LinkDrop {
                after: DropPoint::Bytes(Bytes::new(1)),
                attempts: 1
            }
            .label(),
            "link_drop"
        );
        assert_eq!(FaultCause::NonConvergence.label(), "non_convergence");
    }

    #[test]
    fn observe_plan_counts_by_kind() {
        let plan = FaultPlan::none()
            .inject(0, FaultKind::CheckpointCorrupt)
            .inject(2, FaultKind::CheckpointCorrupt)
            .inject(2, FaultKind::CrashDuringSave);
        let m = MetricsRegistry::new();
        observe_plan(&m, &plan);
        assert_eq!(
            m.counter("faults_injected_total", &[("kind", "checkpoint_corrupt")]),
            2
        );
        assert_eq!(
            m.counter("faults_injected_total", &[("kind", "crash_during_save")]),
            1
        );
        assert_eq!(m.counter("faults_injected_legs_total", &[]), 2);
    }

    #[test]
    fn observe_empty_plan_is_quiet() {
        let m = MetricsRegistry::new();
        observe_plan(&m, &FaultPlan::none());
        assert_eq!(m.counter_total("faults_injected_total"), 0);
        // No zero-valued series either: the snapshot is truly empty.
        assert_eq!(
            m.snapshot().to_canonical_json(),
            MetricsRegistry::new().snapshot().to_canonical_json()
        );
    }

    #[test]
    fn seeded_plan_observation_is_deterministic() {
        let plan = FaultPlan::seeded(9, &FaultRates::uniform(0.5), 12);
        let m1 = MetricsRegistry::new();
        let m2 = MetricsRegistry::new();
        observe_plan(&m1, &plan);
        observe_plan(&m2, &plan);
        assert_eq!(
            m1.snapshot().to_canonical_json(),
            m2.snapshot().to_canonical_json()
        );
    }
}
