//! [`Summary`]: streaming min/mean/max aggregation.

/// Running min/mean/max over a stream of samples.
///
/// # Examples
///
/// ```
/// use vecycle_analysis::Summary;
///
/// let mut s = Summary::new();
/// for v in [2.0, 4.0, 6.0] {
///     s.add(v);
/// }
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.max(), 6.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample. NaNs are ignored.
    pub fn add(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample (∞ if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (−∞ if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.add(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn nan_is_ignored() {
        let mut s = Summary::new();
        s.add(f64::NAN);
        s.add(5.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 5.0);
    }
}
