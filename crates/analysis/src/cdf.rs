//! [`Cdf`]: empirical cumulative distribution functions.

/// An empirical CDF over a sample of `f64` values.
///
/// # Examples
///
/// ```
/// use vecycle_analysis::Cdf;
///
/// let cdf = Cdf::from_values(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
/// assert_eq!(cdf.percentile(50.0), 2.0);
/// assert_eq!(cdf.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from raw samples. NaNs are dropped.
    pub fn from_values(values: Vec<f64>) -> Self {
        let mut sorted: Vec<f64> = values.into_iter().filter(|v| !v.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs after filter"));
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `≤ x`, in `[0, 1]`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|v| *v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `p`-th percentile (nearest-rank), `p` in `[0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `p` is out of range.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "percentile of empty CDF");
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if p == 0.0 {
            return self.sorted[0];
        }
        let rank = ((p / 100.0) * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// The sorted samples (for plotting the full curve).
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// `(x, F(x))` points at each distinct sample — the staircase curve.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            if i + 1 == self.sorted.len() || self.sorted[i + 1] != x {
                out.push((x, (i + 1) as f64 / n));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_and_percentiles() {
        let cdf = Cdf::from_values(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(cdf.fraction_at_or_below(5.0), 0.0);
        assert_eq!(cdf.fraction_at_or_below(30.0), 0.6);
        assert_eq!(cdf.fraction_at_or_below(100.0), 1.0);
        assert_eq!(cdf.percentile(0.0), 10.0);
        assert_eq!(cdf.percentile(50.0), 30.0);
        assert_eq!(cdf.percentile(100.0), 50.0);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let cdf = Cdf::from_values(vec![3.0, 1.0, 2.0]);
        assert_eq!(cdf.samples(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn nans_are_dropped() {
        let cdf = Cdf::from_values(vec![1.0, f64::NAN, 2.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn points_collapse_duplicates() {
        let cdf = Cdf::from_values(vec![1.0, 1.0, 2.0]);
        assert_eq!(cdf.points(), vec![(1.0, 2.0 / 3.0), (2.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "empty CDF")]
    fn empty_percentile_panics() {
        let _ = Cdf::from_values(vec![]).percentile(50.0);
    }

    #[test]
    fn empty_fraction_is_zero() {
        assert_eq!(Cdf::from_values(vec![]).fraction_at_or_below(1.0), 0.0);
    }
}
