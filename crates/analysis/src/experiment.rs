//! [`ExperimentLog`]: machine-readable results for `EXPERIMENTS.md`.

use serde::{Deserialize, Serialize};

/// One named measurement of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Which experiment this belongs to (e.g. `"fig6"`).
    pub experiment: String,
    /// A point label (e.g. `"lan/4096MiB/vecycle"`).
    pub label: String,
    /// Metric name (e.g. `"migration_time_s"`).
    pub metric: String,
    /// The measured value.
    pub value: f64,
}

/// An append-only log of experiment results, serializable to JSON.
///
/// # Examples
///
/// ```
/// use vecycle_analysis::ExperimentLog;
///
/// let mut log = ExperimentLog::new();
/// log.record("fig6", "lan/1024/vecycle", "time_s", 3.1);
/// let json = log.to_json().unwrap();
/// assert!(json.contains("fig6"));
/// let back = ExperimentLog::from_json(&json).unwrap();
/// assert_eq!(back.records().len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExperimentLog {
    records: Vec<ExperimentRecord>,
}

impl ExperimentLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        ExperimentLog::default()
    }

    /// Appends one record.
    pub fn record(
        &mut self,
        experiment: impl Into<String>,
        label: impl Into<String>,
        metric: impl Into<String>,
        value: f64,
    ) {
        self.records.push(ExperimentRecord {
            experiment: experiment.into(),
            label: label.into(),
            metric: metric.into(),
            value,
        });
    }

    /// All records, in insertion order.
    pub fn records(&self) -> &[ExperimentRecord] {
        &self.records
    }

    /// Records for one experiment.
    pub fn for_experiment<'a>(
        &'a self,
        experiment: &'a str,
    ) -> impl Iterator<Item = &'a ExperimentRecord> + 'a {
        self.records
            .iter()
            .filter(move |r| r.experiment == experiment)
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (practically unreachable for
    /// this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a log back from JSON.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Renders the log as a Markdown section per experiment, one table
    /// each — the format `EXPERIMENTS.md` embeds.
    pub fn render_markdown(&self) -> String {
        use std::collections::BTreeMap;
        let mut by_exp: BTreeMap<&str, Vec<&ExperimentRecord>> = BTreeMap::new();
        for r in &self.records {
            by_exp.entry(&r.experiment).or_default().push(r);
        }
        let mut out = String::new();
        for (exp, records) in by_exp {
            out.push_str(&format!("## {exp}\n\n"));
            out.push_str("| label | metric | value |\n|---|---|---|\n");
            for r in records {
                out.push_str(&format!(
                    "| {} | {} | {:.4} |\n",
                    r.label, r.metric, r.value
                ));
            }
            out.push('\n');
        }
        out
    }

    /// Writes the log as JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization failures.
    pub fn write_json_file(&self, path: &std::path::Path) -> vecycle_types::Result<()> {
        let json = self
            .to_json()
            .map_err(|e| vecycle_types::Error::InvalidConfig {
                reason: format!("serialization failed: {e}"),
            })?;
        std::fs::write(path, json)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut log = ExperimentLog::new();
        log.record("fig1", "server-a/24h", "avg_similarity", 0.31);
        log.record("fig6", "lan/1024/full", "time_s", 9.6);
        let json = log.to_json().unwrap();
        let back = ExperimentLog::from_json(&json).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn filter_by_experiment() {
        let mut log = ExperimentLog::new();
        log.record("a", "x", "m", 1.0);
        log.record("b", "y", "m", 2.0);
        log.record("a", "z", "m", 3.0);
        let a: Vec<_> = log.for_experiment("a").collect();
        assert_eq!(a.len(), 2);
        assert_eq!(a[1].value, 3.0);
    }

    #[test]
    fn markdown_groups_by_experiment() {
        let mut log = ExperimentLog::new();
        log.record("fig6", "lan/1024/qemu", "time_s", 8.6);
        log.record("fig1", "server-a/24h", "avg", 0.34);
        log.record("fig6", "lan/1024/vecycle", "time_s", 2.9);
        let md = log.render_markdown();
        // Experiments sorted, each with its own section and rows.
        let fig1_pos = md.find("## fig1").unwrap();
        let fig6_pos = md.find("## fig6").unwrap();
        assert!(fig1_pos < fig6_pos);
        assert_eq!(md.matches("| lan/").count(), 2);
        assert!(md.contains("| server-a/24h | avg | 0.3400 |"));
    }

    #[test]
    fn file_round_trip() {
        let mut log = ExperimentLog::new();
        log.record("fig8", "migration-3", "traffic_pct", 24.0);
        let dir = std::env::temp_dir().join("vecycle-analysis-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.json");
        log.write_json_file(&path).unwrap();
        let back = ExperimentLog::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, log);
    }
}
