//! [`Table`]: the ASCII renderer the `fig*` binaries print with.

/// A simple right-padded ASCII table.
///
/// # Examples
///
/// ```
/// use vecycle_analysis::Table;
///
/// let mut t = Table::new(vec!["machine", "similarity"]);
/// t.row(vec!["Server A".into(), "0.42".into()]);
/// let s = t.render();
/// assert!(s.contains("Server A"));
/// assert!(s.lines().count() >= 3); // header, rule, one row
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header rule.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..*w {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxx".into(), "y".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["one"]);
        t.row(vec!["a".into(), "b".into()]);
    }

    #[test]
    fn empty_table_still_renders_header() {
        let t = Table::new(vec!["col"]);
        assert!(t.is_empty());
        assert!(t.render().contains("col"));
    }
}
