//! [`Histogram`]: fixed-width binned counts for distribution reports.

/// A fixed-width histogram over `f64` samples.
///
/// # Examples
///
/// ```
/// use vecycle_analysis::Histogram;
///
/// let mut h = Histogram::new(0.0, 1.0, 4);
/// for v in [0.1, 0.1, 0.6, 0.9, 2.0] {
///     h.add(v);
/// }
/// assert_eq!(h.counts(), &[2, 0, 1, 1]);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo ≥ hi`, either bound is not finite, or `bins` is 0.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        assert!(bins > 0, "need at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one sample. NaNs are ignored.
    pub fn add(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let bin = (((v - self.lo) / width) as usize).min(self.counts.len() - 1);
            self.counts[bin] += 1;
        }
    }

    /// Per-bin counts, low to high.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples observed (including out-of-range).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The `[lo, hi)` bounds of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin {i} out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// Renders a compact ASCII bar chart, one line per bin.
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.bin_bounds(i);
            let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!("{lo:>8.2}–{hi:<8.2} {c:>7} {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in 0..10 {
            h.add(v as f64);
        }
        assert_eq!(h.counts(), &[2, 2, 2, 2, 2]);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn out_of_range_samples_are_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-0.5);
        h.add(1.0); // hi is exclusive
        h.add(f64::NAN);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn bin_bounds_are_contiguous() {
        let h = Histogram::new(2.0, 6.0, 4);
        let mut last_hi = 2.0;
        for i in 0..4 {
            let (lo, hi) = h.bin_bounds(i);
            assert!((lo - last_hi).abs() < 1e-12);
            last_hi = hi;
        }
        assert!((last_hi - 6.0).abs() < 1e-12);
    }

    #[test]
    fn render_scales_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.add(0.5);
        h.add(0.5);
        h.add(1.5);
        let text = h.render(10);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].matches('#').count() > lines[1].matches('#').count());
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn inverted_range_panics() {
        let _ = Histogram::new(1.0, 0.0, 2);
    }
}
