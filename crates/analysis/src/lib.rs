//! Statistics and rendering for the experiment harness.
//!
//! The paper's evaluation reports three kinds of artifact: binned
//! min/avg/max time series (Figures 1, 2, 4), cumulative distribution
//! functions (Figure 5), and grouped bar comparisons (Figures 6–8).
//! This crate provides the corresponding aggregation types plus an ASCII
//! table renderer and a JSON experiment log, so every `fig*` binary
//! prints the same rows the paper plots and records them for
//! `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod experiment;
mod histogram;
mod stats;
mod table;

pub use cdf::Cdf;
pub use experiment::{ExperimentLog, ExperimentRecord};
pub use histogram::Histogram;
pub use stats::Summary;
pub use table::Table;
