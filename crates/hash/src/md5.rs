//! MD5 message digest, per RFC 1321.
//!
//! MD5 is cryptographically broken for collision resistance under
//! adversarial inputs, but — as the paper argues (§3.4, citing rsync) — it
//! remains adequate for accidental-collision detection in file/page
//! transfer optimization, and it is fast: the property VeCycle relies on.

use crate::Hasher;

/// Streaming MD5 hasher.
///
/// # Examples
///
/// ```
/// use vecycle_hash::{Hasher, Md5};
///
/// let d = Md5::digest(b"");
/// assert_eq!(vecycle_hash::to_hex(&d), "d41d8cd98f00b204e9800998ecf8427e");
/// ```
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    buffer: [u8; 64],
    buffered: usize,
    length_bytes: u64,
}

/// Per-round shift amounts (RFC 1321 §3.4). Shared with the multi-lane
/// kernel, which runs the same rounds over four messages at once.
pub(crate) const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Sine-derived constants `K[i] = floor(2^32 * |sin(i + 1)|)`.
pub(crate) const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

impl Md5 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            buffer: [0u8; 64],
            buffered: 0,
            length_bytes: 0,
        }
    }

    fn compress(state: &mut [u32; 4], block: &[u8]) {
        debug_assert_eq!(block.len(), 64);
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }

        let [mut a, mut b, mut c, mut d] = *state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }

        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
    }
}

impl Default for Md5 {
    fn default() -> Self {
        Md5::new()
    }
}

impl Hasher for Md5 {
    type Output = [u8; 16];

    fn update(&mut self, mut data: &[u8]) {
        self.length_bytes = self.length_bytes.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let need = 64 - self.buffered;
            let take = need.min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                Md5::compress(&mut self.state, &block);
                self.buffered = 0;
            }
            if data.is_empty() {
                // Everything fit in the buffer; the remainder fall-through
                // below must not clobber the buffered count.
                return;
            }
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            Md5::compress(&mut self.state, block);
        }
        let rest = chunks.remainder();
        self.buffer[..rest.len()].copy_from_slice(rest);
        self.buffered = rest.len();
    }

    fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.length_bytes.wrapping_mul(8);
        // Append 0x80, then zero padding to 56 mod 64, then the little-
        // endian 64-bit bit length.
        self.update(&[0x80]);
        // `update` above counted the pad byte; undo for padding math only —
        // the final length field must reflect the original message.
        while self.buffered != 56 {
            let zeros = if self.buffered < 56 {
                56 - self.buffered
            } else {
                64 - self.buffered + 56
            };
            let pad = [0u8; 64];
            self.update(&pad[..zeros.min(64)]);
        }
        let mut tail = self;
        tail.update(&bit_len.to_le_bytes());
        debug_assert_eq!(tail.buffered, 0);
        let mut out = [0u8; 16];
        for (i, w) in tail.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_hex;

    /// The RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: [(&[u8], &str); 7] = [
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(to_hex(&Md5::digest(input)), expect);
        }
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let one_shot = Md5::digest(&data);
        for chunk_size in [1, 3, 63, 64, 65, 1000, 4096] {
            let mut h = Md5::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), one_shot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Lengths straddling the 56-byte padding boundary and block size.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xa5u8; len];
            let d1 = Md5::digest(&data);
            let mut h = Md5::new();
            h.update(&data[..len / 2]);
            h.update(&data[len / 2..]);
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn known_56_byte_boundary_vector() {
        // 56 'a's: independently computed reference value.
        let d = Md5::digest(&[b'a'; 56]);
        assert_eq!(to_hex(&d), "3b0c8ac703f828b04c6c197006d17218");
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        let a = Md5::digest(b"page content A");
        let b = Md5::digest(b"page content B");
        assert_ne!(a, b);
    }
}
