//! Multi-lane digest kernels: four independent messages per dispatch.
//!
//! MD5, SHA-1 and SHA-256 all have a long serial dependency chain *within*
//! one message, so a single page can never saturate a superscalar core.
//! Hashing four pages at once sidesteps that: the compression state
//! becomes a `U32x4` (one 32-bit word per lane) and every round mixes
//! all four messages in lockstep — block-parallel message scheduling that
//! the compiler lowers to SSE/NEON vectors or, failing that, to four
//! interleaved scalar chains that fill the pipeline. FNV-1a has no block
//! structure; its four lanes are interleaved per byte-column to hide the
//! multiply latency.
//!
//! The kernels require equal-length messages within one dispatch (pages
//! are uniformly 4 KiB on the hot path); [`crate::digest_pages`] batches
//! arbitrary inputs, routing zero pages through the SWAR prefilter and
//! odd-sized stragglers through the scalar [`crate::Hasher`] path. Every lane is
//! bit-equal to the scalar implementation — `tests/props.rs` pins this
//! differentially for all algorithms and batch shapes.

use crate::{fnv, md5, sha1, sha256, ChecksumAlgorithm};
use vecycle_types::PageDigest;

/// Messages hashed per multi-lane dispatch.
pub const LANES: usize = 4;

/// Four 32-bit lanes advancing in lockstep.
///
/// Aligned to the 16-byte vector width so the compiler can keep lane
/// words in SIMD registers (SSE/NEON) instead of splitting loads.
#[derive(Debug, Clone, Copy)]
#[repr(align(16))]
struct U32x4([u32; 4]);

impl U32x4 {
    #[inline(always)]
    fn splat(v: u32) -> Self {
        U32x4([v; 4])
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        U32x4([
            self.0[0].wrapping_add(o.0[0]),
            self.0[1].wrapping_add(o.0[1]),
            self.0[2].wrapping_add(o.0[2]),
            self.0[3].wrapping_add(o.0[3]),
        ])
    }

    #[inline(always)]
    fn xor(self, o: Self) -> Self {
        U32x4([
            self.0[0] ^ o.0[0],
            self.0[1] ^ o.0[1],
            self.0[2] ^ o.0[2],
            self.0[3] ^ o.0[3],
        ])
    }

    #[inline(always)]
    fn and(self, o: Self) -> Self {
        U32x4([
            self.0[0] & o.0[0],
            self.0[1] & o.0[1],
            self.0[2] & o.0[2],
            self.0[3] & o.0[3],
        ])
    }

    #[inline(always)]
    fn or(self, o: Self) -> Self {
        U32x4([
            self.0[0] | o.0[0],
            self.0[1] | o.0[1],
            self.0[2] | o.0[2],
            self.0[3] | o.0[3],
        ])
    }

    #[inline(always)]
    fn not(self) -> Self {
        U32x4([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }

    #[inline(always)]
    fn rotl(self, r: u32) -> Self {
        U32x4([
            self.0[0].rotate_left(r),
            self.0[1].rotate_left(r),
            self.0[2].rotate_left(r),
            self.0[3].rotate_left(r),
        ])
    }

    #[inline(always)]
    fn rotr(self, r: u32) -> Self {
        U32x4([
            self.0[0].rotate_right(r),
            self.0[1].rotate_right(r),
            self.0[2].rotate_right(r),
            self.0[3].rotate_right(r),
        ])
    }

    #[inline(always)]
    fn shr(self, r: u32) -> Self {
        U32x4([
            self.0[0] >> r,
            self.0[1] >> r,
            self.0[2] >> r,
            self.0[3] >> r,
        ])
    }
}

/// Loads message words `0..16` of one 64-byte block from each lane,
/// little-endian (MD5's byte order).
#[inline(always)]
fn load_block_le(lanes: &[&[u8]; LANES], off: usize) -> [U32x4; 16] {
    let mut m = [U32x4::splat(0); 16];
    for (w, word) in m.iter_mut().enumerate() {
        let o = off + w * 4;
        *word = U32x4([
            u32::from_le_bytes(lanes[0][o..o + 4].try_into().expect("4 bytes")),
            u32::from_le_bytes(lanes[1][o..o + 4].try_into().expect("4 bytes")),
            u32::from_le_bytes(lanes[2][o..o + 4].try_into().expect("4 bytes")),
            u32::from_le_bytes(lanes[3][o..o + 4].try_into().expect("4 bytes")),
        ]);
    }
    m
}

/// Loads message words big-endian (the SHA byte order).
#[inline(always)]
fn load_block_be(lanes: &[&[u8]; LANES], off: usize) -> [U32x4; 16] {
    let mut m = [U32x4::splat(0); 16];
    for (w, word) in m.iter_mut().enumerate() {
        let o = off + w * 4;
        *word = U32x4([
            u32::from_be_bytes(lanes[0][o..o + 4].try_into().expect("4 bytes")),
            u32::from_be_bytes(lanes[1][o..o + 4].try_into().expect("4 bytes")),
            u32::from_be_bytes(lanes[2][o..o + 4].try_into().expect("4 bytes")),
            u32::from_be_bytes(lanes[3][o..o + 4].try_into().expect("4 bytes")),
        ]);
    }
    m
}

/// Merkle–Damgård tail: the sub-block remainder plus `0x80`, zero padding
/// and the 64-bit bit length. Returns the padded buffer and how many
/// 64-byte blocks it holds (1, or 2 when the remainder reaches into the
/// length field's slot).
fn build_tail(msg: &[u8], little_endian_length: bool) -> ([u8; 128], usize) {
    let rem = msg.len() % 64;
    let mut buf = [0u8; 128];
    buf[..rem].copy_from_slice(&msg[msg.len() - rem..]);
    buf[rem] = 0x80;
    let blocks = if rem < 56 { 1 } else { 2 };
    let bit_len = (msg.len() as u64).wrapping_mul(8);
    let end = blocks * 64;
    buf[end - 8..end].copy_from_slice(&if little_endian_length {
        bit_len.to_le_bytes()
    } else {
        bit_len.to_be_bytes()
    });
    (buf, blocks)
}

/// One MD5 compression over four lane blocks.
#[inline(always)]
fn md5_rounds(state: &mut [U32x4; 4], m: &[U32x4; 16]) {
    let [mut a, mut b, mut c, mut d] = *state;
    for i in 0..64 {
        let (f, g) = match i / 16 {
            0 => (b.and(c).or(b.not().and(d)), i),
            1 => (d.and(b).or(d.not().and(c)), (5 * i + 1) % 16),
            2 => (b.xor(c).xor(d), (3 * i + 5) % 16),
            _ => (c.xor(b.or(d.not())), (7 * i) % 16),
        };
        let tmp = d;
        d = c;
        c = b;
        b = b.add(
            a.add(f)
                .add(U32x4::splat(md5::K[i]))
                .add(m[g])
                .rotl(md5::S[i]),
        );
        a = tmp;
    }
    state[0] = state[0].add(a);
    state[1] = state[1].add(b);
    state[2] = state[2].add(c);
    state[3] = state[3].add(d);
}

/// MD5 of four equal-length messages.
///
/// # Panics
///
/// Panics (in debug builds) if the messages differ in length.
pub fn md5_x4(msgs: [&[u8]; LANES]) -> [[u8; 16]; LANES] {
    let len = msgs[0].len();
    debug_assert!(msgs.iter().all(|m| m.len() == len), "equal-length lanes");
    let mut state = [
        U32x4::splat(0x67452301),
        U32x4::splat(0xefcdab89),
        U32x4::splat(0x98badcfe),
        U32x4::splat(0x10325476),
    ];
    for block in 0..len / 64 {
        let m = load_block_le(&msgs, block * 64);
        md5_rounds(&mut state, &m);
    }
    let tails = msgs.map(|m| build_tail(m, true));
    for block in 0..tails[0].1 {
        let views: [&[u8]; LANES] = [&tails[0].0, &tails[1].0, &tails[2].0, &tails[3].0];
        let m = load_block_le(&views, block * 64);
        md5_rounds(&mut state, &m);
    }
    let mut out = [[0u8; 16]; LANES];
    for (lane, digest) in out.iter_mut().enumerate() {
        for (w, word) in state.iter().enumerate() {
            digest[w * 4..w * 4 + 4].copy_from_slice(&word.0[lane].to_le_bytes());
        }
    }
    out
}

/// One SHA-1 compression over four lane blocks.
#[inline(always)]
fn sha1_rounds(state: &mut [U32x4; 5], m: &[U32x4; 16]) {
    let mut w = [U32x4::splat(0); 80];
    w[..16].copy_from_slice(m);
    for i in 16..80 {
        w[i] = w[i - 3].xor(w[i - 8]).xor(w[i - 14]).xor(w[i - 16]).rotl(1);
    }
    let [mut a, mut b, mut c, mut d, mut e] = *state;
    for (i, &wi) in w.iter().enumerate() {
        let (f, k) = match i / 20 {
            0 => (b.and(c).or(b.not().and(d)), sha1::K[0]),
            1 => (b.xor(c).xor(d), sha1::K[1]),
            2 => (b.and(c).or(b.and(d)).or(c.and(d)), sha1::K[2]),
            _ => (b.xor(c).xor(d), sha1::K[3]),
        };
        let tmp = a.rotl(5).add(f).add(e).add(U32x4::splat(k)).add(wi);
        e = d;
        d = c;
        c = b.rotl(30);
        b = a;
        a = tmp;
    }
    state[0] = state[0].add(a);
    state[1] = state[1].add(b);
    state[2] = state[2].add(c);
    state[3] = state[3].add(d);
    state[4] = state[4].add(e);
}

/// SHA-1 of four equal-length messages.
///
/// # Panics
///
/// Panics (in debug builds) if the messages differ in length.
pub fn sha1_x4(msgs: [&[u8]; LANES]) -> [[u8; 20]; LANES] {
    let len = msgs[0].len();
    debug_assert!(msgs.iter().all(|m| m.len() == len), "equal-length lanes");
    let mut state = [
        U32x4::splat(0x67452301),
        U32x4::splat(0xefcdab89),
        U32x4::splat(0x98badcfe),
        U32x4::splat(0x10325476),
        U32x4::splat(0xc3d2e1f0),
    ];
    for block in 0..len / 64 {
        let m = load_block_be(&msgs, block * 64);
        sha1_rounds(&mut state, &m);
    }
    let tails = msgs.map(|m| build_tail(m, false));
    for block in 0..tails[0].1 {
        let views: [&[u8]; LANES] = [&tails[0].0, &tails[1].0, &tails[2].0, &tails[3].0];
        let m = load_block_be(&views, block * 64);
        sha1_rounds(&mut state, &m);
    }
    let mut out = [[0u8; 20]; LANES];
    for (lane, digest) in out.iter_mut().enumerate() {
        for (w, word) in state.iter().enumerate() {
            digest[w * 4..w * 4 + 4].copy_from_slice(&word.0[lane].to_be_bytes());
        }
    }
    out
}

/// One SHA-256 compression over four lane blocks.
#[inline(always)]
fn sha256_rounds(state: &mut [U32x4; 8], m: &[U32x4; 16]) {
    let mut w = [U32x4::splat(0); 64];
    w[..16].copy_from_slice(m);
    for i in 16..64 {
        let s0 = w[i - 15]
            .rotr(7)
            .xor(w[i - 15].rotr(18))
            .xor(w[i - 15].shr(3));
        let s1 = w[i - 2]
            .rotr(17)
            .xor(w[i - 2].rotr(19))
            .xor(w[i - 2].shr(10));
        w[i] = w[i - 16].add(s0).add(w[i - 7]).add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for (&k, &wi) in sha256::K.iter().zip(w.iter()) {
        let s1 = e.rotr(6).xor(e.rotr(11)).xor(e.rotr(25));
        let ch = e.and(f).xor(e.not().and(g));
        let t1 = h.add(s1).add(ch).add(U32x4::splat(k)).add(wi);
        let s0 = a.rotr(2).xor(a.rotr(13)).xor(a.rotr(22));
        let maj = a.and(b).xor(a.and(c)).xor(b.and(c));
        let t2 = s0.add(maj);
        h = g;
        g = f;
        f = e;
        e = d.add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.add(t2);
    }
    for (s, v) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
        *s = s.add(v);
    }
}

/// SHA-256 of four equal-length messages.
///
/// # Panics
///
/// Panics (in debug builds) if the messages differ in length.
pub fn sha256_x4(msgs: [&[u8]; LANES]) -> [[u8; 32]; LANES] {
    let len = msgs[0].len();
    debug_assert!(msgs.iter().all(|m| m.len() == len), "equal-length lanes");
    let mut state = [
        U32x4::splat(0x6a09e667),
        U32x4::splat(0xbb67ae85),
        U32x4::splat(0x3c6ef372),
        U32x4::splat(0xa54ff53a),
        U32x4::splat(0x510e527f),
        U32x4::splat(0x9b05688c),
        U32x4::splat(0x1f83d9ab),
        U32x4::splat(0x5be0cd19),
    ];
    for block in 0..len / 64 {
        let m = load_block_be(&msgs, block * 64);
        sha256_rounds(&mut state, &m);
    }
    let tails = msgs.map(|m| build_tail(m, false));
    for block in 0..tails[0].1 {
        let views: [&[u8]; LANES] = [&tails[0].0, &tails[1].0, &tails[2].0, &tails[3].0];
        let m = load_block_be(&views, block * 64);
        sha256_rounds(&mut state, &m);
    }
    let mut out = [[0u8; 32]; LANES];
    for (lane, digest) in out.iter_mut().enumerate() {
        for (w, word) in state.iter().enumerate() {
            digest[w * 4..w * 4 + 4].copy_from_slice(&word.0[lane].to_be_bytes());
        }
    }
    out
}

/// FNV-1a 64 of four equal-length messages, lanes interleaved per
/// byte-column so the four multiply chains overlap in the pipeline.
///
/// # Panics
///
/// Panics (in debug builds) if the messages differ in length.
pub fn fnv1a64_x4(msgs: [&[u8]; LANES]) -> [[u8; 8]; LANES] {
    let len = msgs[0].len();
    debug_assert!(msgs.iter().all(|m| m.len() == len), "equal-length lanes");
    let mut s = [fnv::OFFSET_BASIS; LANES];
    for (((&b0, &b1), &b2), &b3) in msgs[0]
        .iter()
        .zip(msgs[1].iter())
        .zip(msgs[2].iter())
        .zip(msgs[3].iter())
    {
        s[0] = (s[0] ^ u64::from(b0)).wrapping_mul(fnv::PRIME);
        s[1] = (s[1] ^ u64::from(b1)).wrapping_mul(fnv::PRIME);
        s[2] = (s[2] ^ u64::from(b2)).wrapping_mul(fnv::PRIME);
        s[3] = (s[3] ^ u64::from(b3)).wrapping_mul(fnv::PRIME);
    }
    [
        s[0].to_be_bytes(),
        s[1].to_be_bytes(),
        s[2].to_be_bytes(),
        s[3].to_be_bytes(),
    ]
}

/// Dispatches one gathered quad through the lane kernel for `algo`,
/// writing each lane's [`PageDigest`] to its page's output slot.
fn dispatch_quad(
    algo: ChecksumAlgorithm,
    pages: &[&[u8]],
    quad: &[usize; LANES],
    out: &mut [PageDigest],
) {
    let lanes: [&[u8]; LANES] = [
        pages[quad[0]],
        pages[quad[1]],
        pages[quad[2]],
        pages[quad[3]],
    ];
    match algo {
        ChecksumAlgorithm::Md5 => {
            for (lane, d) in md5_x4(lanes).into_iter().enumerate() {
                out[quad[lane]] = PageDigest::new(d);
            }
        }
        ChecksumAlgorithm::Sha1 => {
            for (lane, d) in sha1_x4(lanes).into_iter().enumerate() {
                out[quad[lane]] = crate::truncate_to_digest(&d);
            }
        }
        ChecksumAlgorithm::Sha256 => {
            for (lane, d) in sha256_x4(lanes).into_iter().enumerate() {
                out[quad[lane]] = crate::truncate_to_digest(&d);
            }
        }
        ChecksumAlgorithm::Fnv1a => {
            for (lane, d) in fnv1a64_x4(lanes).into_iter().enumerate() {
                out[quad[lane]] = crate::fnv_widen(d, lanes[lane]);
            }
        }
    }
}

/// Digests a batch of pages with `algo`, four lanes per dispatch.
///
/// Bit-equal to calling [`ChecksumAlgorithm::page_digest`] per page:
/// all-zero pages map to [`PageDigest::ZERO_PAGE`] via the SWAR
/// prefilter, full quads of equal-length non-zero pages go through the
/// multi-lane kernels, and stragglers (a trailing partial quad, or pages
/// whose length breaks a run) fall back to the scalar path.
pub(crate) fn digest_pages(algo: ChecksumAlgorithm, pages: &[&[u8]]) -> Vec<PageDigest> {
    let mut out = vec![PageDigest::ZERO_PAGE; pages.len()];
    let mut quad = [0usize; LANES];
    let mut gathered = 0usize;
    for (i, page) in pages.iter().enumerate() {
        if crate::is_all_zero(page) {
            continue; // slot already holds the sentinel
        }
        if gathered > 0 && pages[quad[0]].len() != page.len() {
            for &straggler in &quad[..gathered] {
                out[straggler] = algo.page_digest(pages[straggler]);
            }
            gathered = 0;
        }
        quad[gathered] = i;
        gathered += 1;
        if gathered == LANES {
            dispatch_quad(algo, pages, &quad, &mut out);
            gathered = 0;
        }
    }
    for &straggler in &quad[..gathered] {
        out[straggler] = algo.page_digest(pages[straggler]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Hasher, Md5, Sha1, Sha256};

    #[test]
    fn md5_lanes_match_scalar() {
        let msgs: Vec<Vec<u8>> = (0..4u8).map(|k| vec![k; 4096]).collect();
        let lanes = md5_x4([&msgs[0], &msgs[1], &msgs[2], &msgs[3]]);
        for (lane, msg) in lanes.iter().zip(&msgs) {
            assert_eq!(*lane, Md5::digest(msg));
        }
    }

    #[test]
    fn sha_lanes_match_scalar_at_padding_boundaries() {
        for len in [0usize, 1, 55, 56, 57, 63, 64, 65, 119, 120, 128, 4096] {
            let msgs: Vec<Vec<u8>> = (1..=4u8).map(|k| vec![k.wrapping_mul(37); len]).collect();
            let views = [
                msgs[0].as_slice(),
                msgs[1].as_slice(),
                msgs[2].as_slice(),
                msgs[3].as_slice(),
            ];
            for (lane, msg) in sha1_x4(views).iter().zip(&msgs) {
                assert_eq!(*lane, Sha1::digest(msg), "sha1 len {len}");
            }
            for (lane, msg) in sha256_x4(views).iter().zip(&msgs) {
                assert_eq!(*lane, Sha256::digest(msg), "sha256 len {len}");
            }
            for (lane, msg) in md5_x4(views).iter().zip(&msgs) {
                assert_eq!(*lane, Md5::digest(msg), "md5 len {len}");
            }
        }
    }

    #[test]
    fn fnv_lanes_match_scalar() {
        let msgs: Vec<Vec<u8>> = (0..4u8).map(|k| vec![k.wrapping_add(9); 777]).collect();
        let lanes = fnv1a64_x4([&msgs[0], &msgs[1], &msgs[2], &msgs[3]]);
        for (lane, msg) in lanes.iter().zip(&msgs) {
            assert_eq!(*lane, crate::Fnv1a64::digest(msg));
        }
    }

    #[test]
    fn digest_pages_mixes_zero_and_ragged_lengths() {
        let zero = vec![0u8; 4096];
        let a = vec![1u8; 4096];
        let b = vec![2u8; 4096];
        let short = vec![3u8; 100];
        let pages: Vec<&[u8]> = vec![&a, &zero, &b, &short, &a, &b, &a];
        for algo in ChecksumAlgorithm::ALL {
            let batch = digest_pages(algo, &pages);
            let scalar: Vec<_> = pages.iter().map(|p| algo.page_digest(p)).collect();
            assert_eq!(batch, scalar, "{algo}");
        }
    }
}
