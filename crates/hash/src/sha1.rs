//! SHA-1 message digest, per FIPS 180-4.
//!
//! §3.4 of the paper names SHA-1 as the drop-in replacement if MD5 is
//! deemed a correctness risk. Like MD5 it is no longer collision-resistant
//! against adversaries, but it serves the same accidental-collision role
//! at a somewhat lower throughput — which the checksum-rate ablation bench
//! quantifies.

use crate::Hasher;

/// Stage constants for rounds 0–19, 20–39, 40–59 and 60–79. Shared with
/// the multi-lane kernel.
pub(crate) const K: [u32; 4] = [0x5a827999, 0x6ed9eba1, 0x8f1bbcdc, 0xca62c1d6];

/// Streaming SHA-1 hasher.
///
/// # Examples
///
/// ```
/// use vecycle_hash::{Hasher, Sha1};
///
/// let d = Sha1::digest(b"abc");
/// assert_eq!(
///     vecycle_hash::to_hex(&d),
///     "a9993e364706816aba3e25717850c26c9cd0d89d"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffered: usize,
    length_bytes: u64,
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0],
            buffer: [0u8; 64],
            buffered: 0,
            length_bytes: 0,
        }
    }

    fn compress(state: &mut [u32; 5], block: &[u8]) {
        debug_assert_eq!(block.len(), 64);
        let mut w = [0u32; 80];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = *state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | (!b & d), K[0]),
                1 => (b ^ c ^ d, K[1]),
                2 => ((b & c) | (b & d) | (c & d), K[2]),
                _ => (b ^ c ^ d, K[3]),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }

        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
    }
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1::new()
    }
}

impl Hasher for Sha1 {
    type Output = [u8; 20];

    fn update(&mut self, mut data: &[u8]) {
        self.length_bytes = self.length_bytes.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                Sha1::compress(&mut self.state, &block);
                self.buffered = 0;
            }
            if data.is_empty() {
                // Everything fit in the buffer; the remainder fall-through
                // below must not clobber the buffered count.
                return;
            }
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            Sha1::compress(&mut self.state, block);
        }
        let rest = chunks.remainder();
        self.buffer[..rest.len()].copy_from_slice(rest);
        self.buffered = rest.len();
    }

    fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.length_bytes.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != 56 {
            let zeros = if self.buffered < 56 {
                56 - self.buffered
            } else {
                64 - self.buffered + 56
            };
            let pad = [0u8; 64];
            self.update(&pad[..zeros.min(64)]);
        }
        // SHA uses big-endian length, unlike MD5.
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffered, 0);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_hex;

    /// FIPS 180-4 / RFC 3174 standard vectors.
    #[test]
    fn standard_vectors() {
        let cases: [(&[u8], &str); 4] = [
            (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
            (
                b"The quick brown fox jumps over the lazy dog",
                "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(to_hex(&Sha1::digest(input)), expect, "{input:?}");
        }
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            to_hex(&Sha1::digest(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 253) as u8).collect();
        let one_shot = Sha1::digest(&data);
        for chunk_size in [1, 7, 64, 65, 511] {
            let mut h = Sha1::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), one_shot, "chunk size {chunk_size}");
        }
    }
}
