//! Checksum algorithms for content-based redundancy elimination.
//!
//! The VeCycle prototype identifies reusable pages by *content checksum*:
//! the source computes one MD5 digest per 4 KiB page and only transfers
//! pages whose digest is unknown at the destination (§3.2 of the paper).
//! This crate provides the digest algorithms, implemented from scratch:
//!
//! * [`Md5`] — the paper's default (RFC 1321).
//! * [`Sha1`] / [`Sha256`] — the stronger alternatives §3.4 suggests.
//! * [`Fnv1a64`] — a cheap non-cryptographic hash, used where the paper
//!   notes that *probing* hashes need not be cryptographic (sender-side
//!   deduplication can verify candidates byte-for-byte locally).
//!
//! All algorithms implement the streaming [`Hasher`] trait and can digest
//! data incrementally; [`page_digest`] is the one-shot convenience used by
//! the migration path.
//!
//! # Examples
//!
//! ```
//! use vecycle_hash::{Hasher, Md5};
//!
//! let mut h = Md5::new();
//! h.update(b"abc");
//! let d = h.finalize();
//! assert_eq!(vecycle_hash::to_hex(&d), "900150983cd24fb0d6963f7d28e17f72");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fnv;
mod md5;
mod sha1;
mod sha256;

pub use fnv::Fnv1a64;
pub use md5::Md5;
pub use sha1::Sha1;
pub use sha256::Sha256;

use vecycle_types::PageDigest;

/// A streaming hash function.
///
/// Implementors accumulate input via [`Hasher::update`] and produce the
/// final digest with [`Hasher::finalize`]. The associated `Output` is a
/// fixed-size byte array.
///
/// # Examples
///
/// ```
/// use vecycle_hash::{Hasher, Sha256};
///
/// fn digest_all<H: Hasher + Default>(chunks: &[&[u8]]) -> H::Output {
///     let mut h = H::default();
///     for c in chunks {
///         h.update(c);
///     }
///     h.finalize()
/// }
///
/// let whole = digest_all::<Sha256>(&[b"hello ", b"world"]);
/// let one = digest_all::<Sha256>(&[b"hello world"]);
/// assert_eq!(whole, one);
/// ```
pub trait Hasher {
    /// The digest type produced by this algorithm.
    type Output: AsRef<[u8]> + Copy + Eq;

    /// Absorbs more input.
    fn update(&mut self, data: &[u8]);

    /// Consumes the hasher and returns the digest.
    fn finalize(self) -> Self::Output;

    /// One-shot digest of a byte slice.
    fn digest(data: &[u8]) -> Self::Output
    where
        Self: Default + Sized,
    {
        let mut h = Self::default();
        h.update(data);
        h.finalize()
    }
}

/// The checksum algorithm used to fingerprint pages.
///
/// §3.4 of the paper discusses the trade-off: MD5 reaches ~350 MiB/s per
/// core — about 3× gigabit Ethernet — so it never bottlenecks a GbE
/// migration, but stronger (slower) algorithms may on faster links.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ChecksumAlgorithm {
    /// MD5, the prototype's default.
    #[default]
    Md5,
    /// SHA-1, truncated to 128 bits for the page-digest slot.
    Sha1,
    /// SHA-256, truncated to 128 bits for the page-digest slot.
    Sha256,
    /// FNV-1a 64, widened to 128 bits; non-cryptographic.
    Fnv1a,
}

impl ChecksumAlgorithm {
    /// All supported algorithms, in display order.
    pub const ALL: [ChecksumAlgorithm; 4] = [
        ChecksumAlgorithm::Md5,
        ChecksumAlgorithm::Sha1,
        ChecksumAlgorithm::Sha256,
        ChecksumAlgorithm::Fnv1a,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ChecksumAlgorithm::Md5 => "md5",
            ChecksumAlgorithm::Sha1 => "sha1",
            ChecksumAlgorithm::Sha256 => "sha256",
            ChecksumAlgorithm::Fnv1a => "fnv1a-64",
        }
    }

    /// Digests one page with this algorithm into the 128-bit digest slot.
    pub fn page_digest(self, page: &[u8]) -> PageDigest {
        match self {
            ChecksumAlgorithm::Md5 => PageDigest::new(Md5::digest(page)),
            ChecksumAlgorithm::Sha1 => {
                let full = Sha1::digest(page);
                PageDigest::new(full[..16].try_into().expect("sha1 has 20 bytes"))
            }
            ChecksumAlgorithm::Sha256 => {
                let full = Sha256::digest(page);
                PageDigest::new(full[..16].try_into().expect("sha256 has 32 bytes"))
            }
            ChecksumAlgorithm::Fnv1a => {
                let h = Fnv1a64::digest(page);
                let k = u64::from_be_bytes(h);
                // Widen by hashing the hash again with a length prefix so
                // both 64-bit halves carry independent entropy.
                let mut second = Fnv1a64::new();
                second.update(&h);
                second.update(&(page.len() as u64).to_be_bytes());
                second.update(page.get(..64.min(page.len())).unwrap_or(&[]));
                let k2 = u64::from_be_bytes(second.finalize());
                let mut out = [0u8; 16];
                out[..8].copy_from_slice(&k.to_be_bytes());
                out[8..].copy_from_slice(&k2.to_be_bytes());
                PageDigest::new(out)
            }
        }
    }
}

impl std::fmt::Display for ChecksumAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Digests a 4 KiB page with MD5, mapping all-zero pages to the
/// [`PageDigest::ZERO_PAGE`] sentinel.
///
/// Zero pages are common enough (freshly booted guests) that both the
/// paper's analysis and our strategies treat them specially; folding them
/// onto the sentinel keeps the trace layer and the byte-level layer in
/// agreement about what "zero page" means.
///
/// # Examples
///
/// ```
/// use vecycle_hash::page_digest;
/// use vecycle_types::PageDigest;
///
/// let zero = vec![0u8; 4096];
/// assert_eq!(page_digest(&zero), PageDigest::ZERO_PAGE);
/// let one = vec![1u8; 4096];
/// assert_ne!(page_digest(&one), PageDigest::ZERO_PAGE);
/// ```
pub fn page_digest(page: &[u8]) -> PageDigest {
    if page.iter().all(|&b| b == 0) {
        return PageDigest::ZERO_PAGE;
    }
    PageDigest::new(Md5::digest(page))
}

/// Renders a digest as lowercase hex.
///
/// # Examples
///
/// ```
/// assert_eq!(vecycle_hash::to_hex(&[0xde, 0xad]), "dead");
/// ```
pub fn to_hex(bytes: &impl AsRef<[u8]>) -> String {
    bytes.as_ref().iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_digest_zero_sentinel() {
        assert_eq!(page_digest(&[0u8; 4096]), PageDigest::ZERO_PAGE);
        let mut p = [0u8; 4096];
        p[4095] = 1;
        assert_ne!(page_digest(&p), PageDigest::ZERO_PAGE);
    }

    #[test]
    fn algorithms_disagree_on_same_input() {
        let page = [0x5au8; 4096];
        let digests: Vec<_> = ChecksumAlgorithm::ALL
            .iter()
            .map(|a| a.page_digest(&page))
            .collect();
        for i in 0..digests.len() {
            for j in i + 1..digests.len() {
                assert_ne!(digests[i], digests[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn algorithm_page_digest_is_deterministic() {
        let page = [7u8; 4096];
        for a in ChecksumAlgorithm::ALL {
            assert_eq!(a.page_digest(&page), a.page_digest(&page), "{a}");
        }
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(ChecksumAlgorithm::Md5.to_string(), "md5");
        assert_eq!(ChecksumAlgorithm::default(), ChecksumAlgorithm::Md5);
    }

    #[test]
    fn to_hex_formats() {
        assert_eq!(to_hex(&[0u8, 255u8]), "00ff");
    }
}
