//! Checksum algorithms for content-based redundancy elimination.
//!
//! The VeCycle prototype identifies reusable pages by *content checksum*:
//! the source computes one MD5 digest per 4 KiB page and only transfers
//! pages whose digest is unknown at the destination (§3.2 of the paper).
//! This crate provides the digest algorithms, implemented from scratch:
//!
//! * [`Md5`] — the paper's default (RFC 1321).
//! * [`Sha1`] / [`Sha256`] — the stronger alternatives §3.4 suggests.
//! * [`Fnv1a64`] — a cheap non-cryptographic hash, used where the paper
//!   notes that *probing* hashes need not be cryptographic (sender-side
//!   deduplication can verify candidates byte-for-byte locally).
//!
//! All algorithms implement the streaming [`Hasher`] trait and can digest
//! data incrementally; [`page_digest`] is the one-shot convenience used by
//! the migration path.
//!
//! # Examples
//!
//! ```
//! use vecycle_hash::{Hasher, Md5};
//!
//! let mut h = Md5::new();
//! h.update(b"abc");
//! let d = h.finalize();
//! assert_eq!(vecycle_hash::to_hex(&d), "900150983cd24fb0d6963f7d28e17f72");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fnv;
mod md5;
pub mod multilane;
mod sha1;
mod sha256;

pub use fnv::Fnv1a64;
pub use md5::Md5;
pub use multilane::{fnv1a64_x4, md5_x4, sha1_x4, sha256_x4};
pub use sha1::Sha1;
pub use sha256::Sha256;

use vecycle_types::PageDigest;

/// SWAR all-zero test: the zero-page prefilter of the digest hot path.
///
/// Folds eight-byte words with `|` instead of walking bytes, checking the
/// accumulator once per 32-byte stripe so a non-zero page exits after the
/// first dirty stripe. Zero pages are common enough (freshly booted
/// guests) that this check runs before every page digest.
///
/// # Examples
///
/// ```
/// assert!(vecycle_hash::is_all_zero(&[0u8; 4096]));
/// assert!(!vecycle_hash::is_all_zero(&[0, 0, 1]));
/// assert!(vecycle_hash::is_all_zero(&[]));
/// ```
pub fn is_all_zero(data: &[u8]) -> bool {
    let mut stripes = data.chunks_exact(32);
    for stripe in &mut stripes {
        let acc = u64::from_ne_bytes(stripe[0..8].try_into().expect("8 bytes"))
            | u64::from_ne_bytes(stripe[8..16].try_into().expect("8 bytes"))
            | u64::from_ne_bytes(stripe[16..24].try_into().expect("8 bytes"))
            | u64::from_ne_bytes(stripe[24..32].try_into().expect("8 bytes"));
        if acc != 0 {
            return false;
        }
    }
    stripes.remainder().iter().all(|&b| b == 0)
}

/// A streaming hash function.
///
/// Implementors accumulate input via [`Hasher::update`] and produce the
/// final digest with [`Hasher::finalize`]. The associated `Output` is a
/// fixed-size byte array.
///
/// # Examples
///
/// ```
/// use vecycle_hash::{Hasher, Sha256};
///
/// fn digest_all<H: Hasher + Default>(chunks: &[&[u8]]) -> H::Output {
///     let mut h = H::default();
///     for c in chunks {
///         h.update(c);
///     }
///     h.finalize()
/// }
///
/// let whole = digest_all::<Sha256>(&[b"hello ", b"world"]);
/// let one = digest_all::<Sha256>(&[b"hello world"]);
/// assert_eq!(whole, one);
/// ```
pub trait Hasher {
    /// The digest type produced by this algorithm.
    type Output: AsRef<[u8]> + Copy + Eq;

    /// Absorbs more input.
    fn update(&mut self, data: &[u8]);

    /// Consumes the hasher and returns the digest.
    fn finalize(self) -> Self::Output;

    /// One-shot digest of a byte slice.
    fn digest(data: &[u8]) -> Self::Output
    where
        Self: Default + Sized,
    {
        let mut h = Self::default();
        h.update(data);
        h.finalize()
    }
}

/// The checksum algorithm used to fingerprint pages.
///
/// §3.4 of the paper discusses the trade-off: MD5 reaches ~350 MiB/s per
/// core — about 3× gigabit Ethernet — so it never bottlenecks a GbE
/// migration, but stronger (slower) algorithms may on faster links.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ChecksumAlgorithm {
    /// MD5, the prototype's default.
    #[default]
    Md5,
    /// SHA-1, truncated to 128 bits for the page-digest slot.
    Sha1,
    /// SHA-256, truncated to 128 bits for the page-digest slot.
    Sha256,
    /// FNV-1a 64, widened to 128 bits; non-cryptographic.
    Fnv1a,
}

impl ChecksumAlgorithm {
    /// All supported algorithms, in display order.
    pub const ALL: [ChecksumAlgorithm; 4] = [
        ChecksumAlgorithm::Md5,
        ChecksumAlgorithm::Sha1,
        ChecksumAlgorithm::Sha256,
        ChecksumAlgorithm::Fnv1a,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ChecksumAlgorithm::Md5 => "md5",
            ChecksumAlgorithm::Sha1 => "sha1",
            ChecksumAlgorithm::Sha256 => "sha256",
            ChecksumAlgorithm::Fnv1a => "fnv1a-64",
        }
    }

    /// Digests one page with this algorithm into the 128-bit digest slot.
    ///
    /// All-zero pages map to [`PageDigest::ZERO_PAGE`] under every
    /// algorithm, exactly as the free [`page_digest`] does for MD5 — the
    /// trace layer and the byte layer must agree on what "zero page"
    /// means regardless of which checksum the engine was configured with.
    pub fn page_digest(self, page: &[u8]) -> PageDigest {
        if is_all_zero(page) {
            return PageDigest::ZERO_PAGE;
        }
        match self {
            ChecksumAlgorithm::Md5 => PageDigest::new(Md5::digest(page)),
            ChecksumAlgorithm::Sha1 => truncate_to_digest(&Sha1::digest(page)),
            ChecksumAlgorithm::Sha256 => truncate_to_digest(&Sha256::digest(page)),
            ChecksumAlgorithm::Fnv1a => fnv_widen(Fnv1a64::digest(page), page),
        }
    }

    /// Digests a batch of pages, four lanes per dispatch.
    ///
    /// Bit-equal to calling [`ChecksumAlgorithm::page_digest`] on each
    /// page, but processes quads of equal-length pages through the
    /// multi-lane kernels in [`multilane`] — the fast path for the
    /// engine's scan and for checkpoint index builds.
    ///
    /// # Examples
    ///
    /// ```
    /// use vecycle_hash::ChecksumAlgorithm;
    ///
    /// let pages: Vec<Vec<u8>> = (0u8..8).map(|k| vec![k; 4096]).collect();
    /// let views: Vec<&[u8]> = pages.iter().map(Vec::as_slice).collect();
    /// let batch = ChecksumAlgorithm::Md5.digest_pages(&views);
    /// assert_eq!(batch[0], vecycle_types::PageDigest::ZERO_PAGE);
    /// assert_eq!(batch[3], ChecksumAlgorithm::Md5.page_digest(&pages[3]));
    /// ```
    pub fn digest_pages(self, pages: &[&[u8]]) -> Vec<PageDigest> {
        multilane::digest_pages(self, pages)
    }
}

/// Truncates a wider SHA digest into the 128-bit page-digest slot.
fn truncate_to_digest(full: &[u8]) -> PageDigest {
    PageDigest::new(full[..16].try_into().expect("digest has >= 16 bytes"))
}

/// Widens a 64-bit FNV value to 128 bits by hashing the hash again with a
/// length prefix and the page head, so both halves carry independent
/// entropy. Shared by the scalar and multi-lane paths — they must agree
/// byte-for-byte.
fn fnv_widen(h: [u8; 8], page: &[u8]) -> PageDigest {
    let k = u64::from_be_bytes(h);
    let mut second = Fnv1a64::new();
    second.update(&h);
    second.update(&(page.len() as u64).to_be_bytes());
    second.update(page.get(..64.min(page.len())).unwrap_or(&[]));
    let k2 = u64::from_be_bytes(second.finalize());
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&k.to_be_bytes());
    out[8..].copy_from_slice(&k2.to_be_bytes());
    PageDigest::new(out)
}

impl std::fmt::Display for ChecksumAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Digests a 4 KiB page with MD5, mapping all-zero pages to the
/// [`PageDigest::ZERO_PAGE`] sentinel.
///
/// Zero pages are common enough (freshly booted guests) that both the
/// paper's analysis and our strategies treat them specially; folding them
/// onto the sentinel keeps the trace layer and the byte-level layer in
/// agreement about what "zero page" means.
///
/// # Examples
///
/// ```
/// use vecycle_hash::page_digest;
/// use vecycle_types::PageDigest;
///
/// let zero = vec![0u8; 4096];
/// assert_eq!(page_digest(&zero), PageDigest::ZERO_PAGE);
/// let one = vec![1u8; 4096];
/// assert_ne!(page_digest(&one), PageDigest::ZERO_PAGE);
/// ```
pub fn page_digest(page: &[u8]) -> PageDigest {
    if is_all_zero(page) {
        return PageDigest::ZERO_PAGE;
    }
    PageDigest::new(Md5::digest(page))
}

/// Digests a batch of pages with MD5, four lanes per dispatch.
///
/// The batched counterpart of [`page_digest`]: bit-equal results, but
/// equal-length quads of non-zero pages run through [`md5_x4`].
pub fn digest_pages(pages: &[&[u8]]) -> Vec<PageDigest> {
    multilane::digest_pages(ChecksumAlgorithm::Md5, pages)
}

/// Nibble-to-ASCII table for [`to_hex`].
const HEX_DIGITS: &[u8; 16] = b"0123456789abcdef";

/// Renders a digest as lowercase hex.
///
/// Two table lookups and two pushes per byte into a pre-sized `String` —
/// no per-byte `format!` allocation; hex rendering must never show up in
/// a digest-path profile.
///
/// # Examples
///
/// ```
/// assert_eq!(vecycle_hash::to_hex(&[0xde, 0xad]), "dead");
/// ```
pub fn to_hex(bytes: &impl AsRef<[u8]>) -> String {
    let bytes = bytes.as_ref();
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(HEX_DIGITS[(b >> 4) as usize] as char);
        s.push(HEX_DIGITS[(b & 0x0f) as usize] as char);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_digest_zero_sentinel() {
        assert_eq!(page_digest(&[0u8; 4096]), PageDigest::ZERO_PAGE);
        let mut p = [0u8; 4096];
        p[4095] = 1;
        assert_ne!(page_digest(&p), PageDigest::ZERO_PAGE);
    }

    /// Regression: every algorithm — not just the free MD5 helper — must
    /// fold the all-zero page onto the sentinel, or engines configured
    /// with Sha1/Sha256/Fnv1a silently lose zero-page suppression and the
    /// trace layer and byte layer disagree about what "zero page" means.
    #[test]
    fn zero_sentinel_applies_to_every_algorithm() {
        let zero = [0u8; 4096];
        for a in ChecksumAlgorithm::ALL {
            assert_eq!(a.page_digest(&zero), PageDigest::ZERO_PAGE, "{a}");
            assert_eq!(a.page_digest(&[]), PageDigest::ZERO_PAGE, "{a} empty");
            // And only the all-zero page: one trailing bit breaks it.
            let mut almost = [0u8; 4096];
            almost[4095] = 1;
            assert_ne!(a.page_digest(&almost), PageDigest::ZERO_PAGE, "{a}");
        }
    }

    #[test]
    fn is_all_zero_boundaries() {
        for len in [0usize, 1, 7, 8, 31, 32, 33, 4095, 4096] {
            assert!(is_all_zero(&vec![0u8; len]), "len {len}");
            if len > 0 {
                for hot in [0, len / 2, len - 1] {
                    let mut v = vec![0u8; len];
                    v[hot] = 0x80;
                    assert!(!is_all_zero(&v), "len {len} hot {hot}");
                }
            }
        }
    }

    #[test]
    fn algorithms_disagree_on_same_input() {
        let page = [0x5au8; 4096];
        let digests: Vec<_> = ChecksumAlgorithm::ALL
            .iter()
            .map(|a| a.page_digest(&page))
            .collect();
        for i in 0..digests.len() {
            for j in i + 1..digests.len() {
                assert_ne!(digests[i], digests[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn algorithm_page_digest_is_deterministic() {
        let page = [7u8; 4096];
        for a in ChecksumAlgorithm::ALL {
            assert_eq!(a.page_digest(&page), a.page_digest(&page), "{a}");
        }
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(ChecksumAlgorithm::Md5.to_string(), "md5");
        assert_eq!(ChecksumAlgorithm::default(), ChecksumAlgorithm::Md5);
    }

    #[test]
    fn to_hex_formats() {
        assert_eq!(to_hex(&[0u8, 255u8]), "00ff");
        // The LUT rewrite must agree with the format! rendering bytewise.
        let all: Vec<u8> = (0..=255).collect();
        let expect: String = all.iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(to_hex(&all), expect);
    }
}
