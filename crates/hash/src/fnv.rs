//! FNV-1a 64-bit hash.
//!
//! Non-cryptographic; used for cheap *probing* in sender-side
//! deduplication, where candidate matches can be confirmed by a local
//! byte-for-byte comparison (the CloudNet observation the paper recounts
//! in §4.2). Never used where a collision would corrupt a migration.

use crate::Hasher;

pub(crate) const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
pub(crate) const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64-bit hasher.
///
/// # Examples
///
/// ```
/// use vecycle_hash::{Fnv1a64, Hasher};
///
/// // Well-known FNV-1a test vector.
/// let d = Fnv1a64::digest(b"a");
/// assert_eq!(u64::from_be_bytes(d), 0xaf63dc4c8601ec8c);
/// ```
#[derive(Debug, Clone)]
pub struct Fnv1a64 {
    state: u64,
}

impl Fnv1a64 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Fnv1a64 {
            state: OFFSET_BASIS,
        }
    }

    /// The current 64-bit state, without consuming the hasher.
    pub fn value(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Fnv1a64::new()
    }
}

impl Hasher for Fnv1a64 {
    type Output = [u8; 8];

    fn update(&mut self, data: &[u8]) {
        let mut s = self.state;
        for &b in data {
            s ^= u64::from(b);
            s = s.wrapping_mul(PRIME);
        }
        self.state = s;
    }

    fn finalize(self) -> [u8; 8] {
        self.state.to_be_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Vectors from the reference FNV distribution.
        let cases: [(&[u8], u64); 4] = [
            (b"", 0xcbf29ce484222325),
            (b"a", 0xaf63dc4c8601ec8c),
            (b"foobar", 0x85944171f73967e8),
            (b"chongo was here!\n", 0x46810940eff5f915),
        ];
        for (input, expect) in cases {
            assert_eq!(u64::from_be_bytes(Fnv1a64::digest(input)), expect);
        }
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"split me into pieces";
        let mut h = Fnv1a64::new();
        h.update(&data[..5]);
        h.update(&data[5..]);
        assert_eq!(h.finalize(), Fnv1a64::digest(data));
    }

    #[test]
    fn value_peek_matches_finalize() {
        let mut h = Fnv1a64::new();
        h.update(b"peek");
        let peek = h.value();
        assert_eq!(h.finalize(), peek.to_be_bytes());
    }
}
