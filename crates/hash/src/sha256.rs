//! SHA-256 message digest, per FIPS 180-4.
//!
//! The strongest checksum option §3.4 mentions. Slowest of the set; the
//! digest-rate bench shows where it would bottleneck a >GbE migration.

use crate::Hasher;

/// Round constants: first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes. Shared with the multi-lane kernel.
pub(crate) const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use vecycle_hash::{Hasher, Sha256};
///
/// let d = Sha256::digest(b"abc");
/// assert_eq!(
///     vecycle_hash::to_hex(&d),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length_bytes: u64,
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buffer: [0u8; 64],
            buffered: 0,
            length_bytes: 0,
        }
    }

    fn compress(state: &mut [u32; 8], block: &[u8]) {
        debug_assert_eq!(block.len(), 64);
        let mut w = [0u32; 64];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        for (s, v) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Hasher for Sha256 {
    type Output = [u8; 32];

    fn update(&mut self, mut data: &[u8]) {
        self.length_bytes = self.length_bytes.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                Sha256::compress(&mut self.state, &block);
                self.buffered = 0;
            }
            if data.is_empty() {
                // Everything fit in the buffer; the remainder fall-through
                // below must not clobber the buffered count.
                return;
            }
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            Sha256::compress(&mut self.state, block);
        }
        let rest = chunks.remainder();
        self.buffer[..rest.len()].copy_from_slice(rest);
        self.buffered = rest.len();
    }

    fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.length_bytes.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != 56 {
            let zeros = if self.buffered < 56 {
                56 - self.buffered
            } else {
                64 - self.buffered + 56
            };
            let pad = [0u8; 64];
            self.update(&pad[..zeros.min(64)]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffered, 0);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_hex;

    /// FIPS 180-4 standard vectors.
    #[test]
    fn standard_vectors() {
        let cases: [(&[u8], &str); 3] = [
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(to_hex(&Sha256::digest(input)), expect, "{input:?}");
        }
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            to_hex(&Sha256::digest(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..40_000u32).map(|i| (i % 7) as u8).collect();
        let one_shot = Sha256::digest(&data);
        for chunk_size in [1, 13, 64, 100, 4096] {
            let mut h = Sha256::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), one_shot, "chunk size {chunk_size}");
        }
    }
}
