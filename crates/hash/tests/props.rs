//! Property tests: streaming semantics of every hash, and the
//! multi-lane kernels pinned byte-equal to the scalar path.

use proptest::collection::vec;
use proptest::prelude::*;

use vecycle_hash::{ChecksumAlgorithm, Fnv1a64, Hasher, Md5, Sha1, Sha256};

fn chunked_digest<H: Hasher + Default>(data: &[u8], cuts: &[usize]) -> H::Output {
    let mut h = H::default();
    let mut start = 0;
    let mut cuts: Vec<usize> = cuts.iter().map(|c| c % (data.len() + 1)).collect();
    cuts.sort_unstable();
    for cut in cuts {
        if cut > start {
            h.update(&data[start..cut]);
            start = cut;
        }
    }
    h.update(&data[start..]);
    h.finalize()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn md5_chunking_is_transparent(data in vec(any::<u8>(), 0..2048), cuts in vec(any::<usize>(), 0..8)) {
        prop_assert_eq!(chunked_digest::<Md5>(&data, &cuts), Md5::digest(&data));
    }

    #[test]
    fn sha1_chunking_is_transparent(data in vec(any::<u8>(), 0..2048), cuts in vec(any::<usize>(), 0..8)) {
        prop_assert_eq!(chunked_digest::<Sha1>(&data, &cuts), Sha1::digest(&data));
    }

    #[test]
    fn sha256_chunking_is_transparent(data in vec(any::<u8>(), 0..2048), cuts in vec(any::<usize>(), 0..8)) {
        prop_assert_eq!(chunked_digest::<Sha256>(&data, &cuts), Sha256::digest(&data));
    }

    #[test]
    fn fnv_matches_reference_fold(data in vec(any::<u8>(), 0..512)) {
        let expected = data.iter().fold(0xcbf2_9ce4_8422_2325u64, |acc, &b| {
            (acc ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        });
        prop_assert_eq!(u64::from_be_bytes(Fnv1a64::digest(&data)), expected);
    }

    /// Single-byte perturbations always change the digest (for inputs
    /// short enough that accidental collisions are unthinkable).
    #[test]
    fn md5_detects_single_byte_change(data in vec(any::<u8>(), 1..256), pos_seed in any::<usize>(), delta in 1u8..=255) {
        let mut mutated = data.clone();
        let pos = pos_seed % data.len();
        mutated[pos] = mutated[pos].wrapping_add(delta);
        prop_assert_ne!(Md5::digest(&data), Md5::digest(&mutated));
    }

    /// The page-digest helper maps exactly the all-zero page to the
    /// sentinel.
    #[test]
    fn zero_page_sentinel_is_exact(data in vec(any::<u8>(), 4096..=4096)) {
        let digest = vecycle_hash::page_digest(&data);
        let all_zero = data.iter().all(|&b| b == 0);
        prop_assert_eq!(digest.is_zero_page(), all_zero);
    }

    /// Same exactness for every configured algorithm, not just the MD5
    /// free function (the zero-page divergence regression).
    #[test]
    fn algorithm_zero_sentinel_is_exact(data in vec(any::<u8>(), 0..4096)) {
        let all_zero = data.iter().all(|&b| b == 0);
        for algo in ChecksumAlgorithm::ALL {
            prop_assert_eq!(algo.page_digest(&data).is_zero_page(), all_zero);
        }
    }

    /// The SWAR prefilter agrees with the per-byte walk at every length.
    #[test]
    fn swar_zero_check_matches_bytewise(raw in vec(any::<u8>(), 0..200)) {
        // Bias toward zeros so both branches of the check are exercised.
        let data: Vec<u8> = raw.iter().map(|&b| if b < 240 { 0 } else { b }).collect();
        prop_assert_eq!(vecycle_hash::is_all_zero(&data), data.iter().all(|&b| b == 0));
    }

    /// Differential pin: `digest_pages` (multi-lane front-end) is
    /// byte-equal to the scalar per-page path for every algorithm, for
    /// batch shapes covering zero/partial/full/multi-quad dispatch and
    /// random page lengths (equal-length runs exercise the lane kernels;
    /// ragged runs exercise the straggler fallback).
    #[test]
    fn multilane_batches_match_scalar(
        raw_lens in vec(0usize..5000, 0..9),
        fill in vec(any::<u8>(), 0..16),
    ) {
        let pages: Vec<Vec<u8>> = raw_lens
            .iter()
            .enumerate()
            .map(|(i, &raw)| {
                // 4-in-5 pages are uniform 4 KiB (the lane-kernel case);
                // the rest keep a random short length (the fallback case).
                let len = if raw % 5 < 4 { 4096 } else { raw % 700 };
                let seed = fill.get(i).copied().unwrap_or(0);
                // Mix of zero pages (seed 0) and patterned pages.
                (0..len).map(|j| seed.wrapping_mul((j % 251) as u8)).collect()
            })
            .collect();
        let views: Vec<&[u8]> = pages.iter().map(Vec::as_slice).collect();
        for algo in ChecksumAlgorithm::ALL {
            let batch = algo.digest_pages(&views);
            let scalar: Vec<_> = views.iter().map(|p| algo.page_digest(p)).collect();
            prop_assert_eq!(&batch, &scalar, "{}", algo);
        }
    }

    /// The raw lane kernels match the streaming `Hasher` outputs for
    /// arbitrary equal-length messages (including padding boundaries).
    #[test]
    fn lane_kernels_match_streaming_hashers(len in 0usize..200, seeds in (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())) {
        let seeds = [seeds.0, seeds.1, seeds.2, seeds.3];
        let msgs: Vec<Vec<u8>> = seeds
            .iter()
            .map(|&s| (0..len).map(|j| s.wrapping_add(j as u8)).collect())
            .collect();
        let views = [msgs[0].as_slice(), msgs[1].as_slice(), msgs[2].as_slice(), msgs[3].as_slice()];
        let md5 = vecycle_hash::md5_x4(views);
        let sha1 = vecycle_hash::sha1_x4(views);
        let sha256 = vecycle_hash::sha256_x4(views);
        let fnv = vecycle_hash::fnv1a64_x4(views);
        for lane in 0..4 {
            prop_assert_eq!(md5[lane], Md5::digest(&msgs[lane]));
            prop_assert_eq!(sha1[lane], Sha1::digest(&msgs[lane]));
            prop_assert_eq!(sha256[lane], Sha256::digest(&msgs[lane]));
            prop_assert_eq!(fnv[lane], Fnv1a64::digest(&msgs[lane]));
        }
    }
}
