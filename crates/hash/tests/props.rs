//! Property tests: streaming semantics of every hash.

use proptest::collection::vec;
use proptest::prelude::*;

use vecycle_hash::{Fnv1a64, Hasher, Md5, Sha1, Sha256};

fn chunked_digest<H: Hasher + Default>(data: &[u8], cuts: &[usize]) -> H::Output {
    let mut h = H::default();
    let mut start = 0;
    let mut cuts: Vec<usize> = cuts.iter().map(|c| c % (data.len() + 1)).collect();
    cuts.sort_unstable();
    for cut in cuts {
        if cut > start {
            h.update(&data[start..cut]);
            start = cut;
        }
    }
    h.update(&data[start..]);
    h.finalize()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn md5_chunking_is_transparent(data in vec(any::<u8>(), 0..2048), cuts in vec(any::<usize>(), 0..8)) {
        prop_assert_eq!(chunked_digest::<Md5>(&data, &cuts), Md5::digest(&data));
    }

    #[test]
    fn sha1_chunking_is_transparent(data in vec(any::<u8>(), 0..2048), cuts in vec(any::<usize>(), 0..8)) {
        prop_assert_eq!(chunked_digest::<Sha1>(&data, &cuts), Sha1::digest(&data));
    }

    #[test]
    fn sha256_chunking_is_transparent(data in vec(any::<u8>(), 0..2048), cuts in vec(any::<usize>(), 0..8)) {
        prop_assert_eq!(chunked_digest::<Sha256>(&data, &cuts), Sha256::digest(&data));
    }

    #[test]
    fn fnv_matches_reference_fold(data in vec(any::<u8>(), 0..512)) {
        let expected = data.iter().fold(0xcbf2_9ce4_8422_2325u64, |acc, &b| {
            (acc ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        });
        prop_assert_eq!(u64::from_be_bytes(Fnv1a64::digest(&data)), expected);
    }

    /// Single-byte perturbations always change the digest (for inputs
    /// short enough that accidental collisions are unthinkable).
    #[test]
    fn md5_detects_single_byte_change(data in vec(any::<u8>(), 1..256), pos_seed in any::<usize>(), delta in 1u8..=255) {
        let mut mutated = data.clone();
        let pos = pos_seed % data.len();
        mutated[pos] = mutated[pos].wrapping_add(delta);
        prop_assert_ne!(Md5::digest(&data), Md5::digest(&mutated));
    }

    /// The page-digest helper maps exactly the all-zero page to the
    /// sentinel.
    #[test]
    fn zero_page_sentinel_is_exact(data in vec(any::<u8>(), 4096..=4096)) {
        let digest = vecycle_hash::page_digest(&data);
        let all_zero = data.iter().all(|&b| b == 0);
        prop_assert_eq!(digest.is_zero_page(), all_zero);
    }
}
