//! [`TrafficLedger`]: byte-accurate accounting of migration traffic.

use serde::{Deserialize, Serialize};

use vecycle_types::Bytes;

/// What a chunk of migration traffic paid for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficCategory {
    /// Full page payloads.
    FullPages,
    /// Checksum-only page messages.
    Checksums,
    /// The bulk checksum pre-exchange (destination → source).
    BulkExchange,
    /// Dedup back-references.
    DedupRefs,
    /// Zero-page markers (QEMU's zero-page suppression).
    ZeroMarkers,
    /// Control messages (round markers, completion handshake).
    Control,
}

impl TrafficCategory {
    /// All categories, in display order.
    pub const ALL: [TrafficCategory; 6] = [
        TrafficCategory::FullPages,
        TrafficCategory::Checksums,
        TrafficCategory::BulkExchange,
        TrafficCategory::DedupRefs,
        TrafficCategory::ZeroMarkers,
        TrafficCategory::Control,
    ];
}

/// Per-category byte and message counters for one migration.
///
/// # Examples
///
/// ```
/// use vecycle_net::{TrafficCategory, TrafficLedger};
/// use vecycle_types::Bytes;
///
/// let mut ledger = TrafficLedger::new();
/// ledger.record(TrafficCategory::FullPages, Bytes::from_kib(4));
/// ledger.record(TrafficCategory::Checksums, Bytes::new(28));
/// assert_eq!(ledger.total(), Bytes::new(4096 + 28));
/// assert_eq!(ledger.messages(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficLedger {
    bytes: [u64; 6],
    messages: [u64; 6],
}

impl TrafficLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        TrafficLedger::default()
    }

    /// Records one message of `size` in `category`.
    pub fn record(&mut self, category: TrafficCategory, size: Bytes) {
        let i = Self::slot(category);
        self.bytes[i] += size.as_u64();
        self.messages[i] += 1;
    }

    /// Records `count` identical messages of `size` each.
    pub fn record_many(&mut self, category: TrafficCategory, count: u64, size: Bytes) {
        let i = Self::slot(category);
        self.bytes[i] += size.as_u64() * count;
        self.messages[i] += count;
    }

    /// Bytes recorded in one category.
    pub fn bytes_in(&self, category: TrafficCategory) -> Bytes {
        Bytes::new(self.bytes[Self::slot(category)])
    }

    /// Messages recorded in one category.
    pub fn messages_in(&self, category: TrafficCategory) -> u64 {
        self.messages[Self::slot(category)]
    }

    /// Total bytes across all categories.
    pub fn total(&self) -> Bytes {
        Bytes::new(self.bytes.iter().sum())
    }

    /// Total messages across all categories.
    pub fn messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Folds another ledger into this one.
    pub fn merge(&mut self, other: &TrafficLedger) {
        for i in 0..self.bytes.len() {
            self.bytes[i] += other.bytes[i];
            self.messages[i] += other.messages[i];
        }
    }

    fn slot(category: TrafficCategory) -> usize {
        TrafficCategory::ALL
            .iter()
            .position(|c| *c == category)
            .expect("category is in ALL")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger_is_zero() {
        let l = TrafficLedger::new();
        assert_eq!(l.total(), Bytes::ZERO);
        assert_eq!(l.messages(), 0);
    }

    #[test]
    fn record_many_multiplies() {
        let mut l = TrafficLedger::new();
        l.record_many(TrafficCategory::Checksums, 10, Bytes::new(28));
        assert_eq!(l.bytes_in(TrafficCategory::Checksums), Bytes::new(280));
        assert_eq!(l.messages_in(TrafficCategory::Checksums), 10);
        assert_eq!(l.bytes_in(TrafficCategory::FullPages), Bytes::ZERO);
    }

    #[test]
    fn merge_adds_per_category() {
        let mut a = TrafficLedger::new();
        a.record(TrafficCategory::FullPages, Bytes::new(100));
        let mut b = TrafficLedger::new();
        b.record(TrafficCategory::FullPages, Bytes::new(50));
        b.record(TrafficCategory::Control, Bytes::new(5));
        a.merge(&b);
        assert_eq!(a.bytes_in(TrafficCategory::FullPages), Bytes::new(150));
        assert_eq!(a.total(), Bytes::new(155));
        assert_eq!(a.messages(), 3);
    }

    #[test]
    fn categories_are_isolated() {
        let mut l = TrafficLedger::new();
        for (i, c) in TrafficCategory::ALL.into_iter().enumerate() {
            l.record(c, Bytes::new((i as u64 + 1) * 10));
        }
        for (i, c) in TrafficCategory::ALL.into_iter().enumerate() {
            assert_eq!(l.bytes_in(c), Bytes::new((i as u64 + 1) * 10));
        }
        assert_eq!(l.total(), Bytes::new(10 + 20 + 30 + 40 + 50 + 60));
    }
}
