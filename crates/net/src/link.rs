//! [`LinkSpec`]: an analytic point-to-point link model.

use serde::{Deserialize, Serialize};

use vecycle_types::{Bytes, BytesPerSec, SimDuration};

/// A network link between migration source and destination.
///
/// Three parameters: raw bandwidth, one-way latency, and an optional TCP
/// receive-window cap. Effective throughput is
/// `min(bandwidth, window / rtt)` — the classic bandwidth-delay-product
/// limit, which is why the paper's 465 Mbit/s emulated WAN moves a 1 GiB
/// VM in 177 s (~5.9 MiB/s) rather than ~18 s.
///
/// # Examples
///
/// ```
/// use vecycle_net::LinkSpec;
/// use vecycle_types::Bytes;
///
/// let lan = LinkSpec::lan_gigabit();
/// let wan = LinkSpec::wan_cloudnet();
/// let gib = Bytes::from_gib(1);
/// let t_lan = lan.transfer_time(gib).as_secs_f64();
/// let t_wan = wan.transfer_time(gib).as_secs_f64();
/// assert!(t_lan > 8.0 && t_lan < 10.0);     // "about 10 seconds"
/// assert!(t_wan > 150.0 && t_wan < 200.0);  // paper: 177 s
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    bandwidth: BytesPerSec,
    latency: SimDuration,
    tcp_window: Option<Bytes>,
}

impl LinkSpec {
    /// Creates a link from raw parameters.
    pub fn new(bandwidth: BytesPerSec, latency: SimDuration, tcp_window: Option<Bytes>) -> Self {
        LinkSpec {
            bandwidth,
            latency,
            tcp_window,
        }
    }

    /// The benchmark LAN: dedicated gigabit Ethernet (§4.1).
    ///
    /// "Exclusive access to a gigabit Ethernet link allows the sender to
    /// transfer data at a rate of 120 MiB/s."
    pub fn lan_gigabit() -> Self {
        LinkSpec {
            bandwidth: BytesPerSec::from_mib_per_sec(120),
            latency: SimDuration::from_nanos(100_000), // 0.1 ms switch hop
            tcp_window: None,
        }
    }

    /// The emulated WAN of §4.4, after CloudNet: 465 Mbit/s capacity,
    /// 27 ms latency, with the TCP window sized so effective throughput
    /// matches the paper's measured ~5.9 MiB/s (1 GiB in 177 s).
    pub fn wan_cloudnet() -> Self {
        LinkSpec {
            bandwidth: BytesPerSec::from_mbit_per_sec(465.0),
            latency: SimDuration::from_millis(27),
            tcp_window: Some(Bytes::from_kib(320)),
        }
    }

    /// Raw link bandwidth.
    pub fn bandwidth(&self) -> BytesPerSec {
        self.bandwidth
    }

    /// One-way latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Effective sustained throughput after the window cap.
    pub fn effective_bandwidth(&self) -> BytesPerSec {
        match self.tcp_window {
            None => self.bandwidth,
            Some(window) => {
                let rtt = self.latency.as_secs_f64() * 2.0;
                if rtt <= 0.0 {
                    self.bandwidth
                } else {
                    self.bandwidth.min(BytesPerSec::new(window.as_f64() / rtt))
                }
            }
        }
    }

    /// Time for a bulk transfer of `bytes`: one latency plus streaming at
    /// the effective bandwidth.
    pub fn transfer_time(&self, bytes: Bytes) -> SimDuration {
        self.latency
            .saturating_add(self.effective_bandwidth().time_to_transfer(bytes))
    }

    /// Time for one request/response round trip carrying negligible data.
    pub fn round_trip(&self) -> SimDuration {
        self.latency * 2
    }

    /// A copy of this link with a different TCP window.
    #[must_use]
    pub fn with_tcp_window(mut self, window: Option<Bytes>) -> Self {
        self.tcp_window = window;
        self
    }

    /// A copy of this link with a different bandwidth.
    #[must_use]
    pub fn with_bandwidth(mut self, bandwidth: BytesPerSec) -> Self {
        self.bandwidth = bandwidth;
        self
    }

    /// A copy of this link with a different one-way latency.
    #[must_use]
    pub fn with_latency(mut self, latency: SimDuration) -> Self {
        self.latency = latency;
        self
    }

    /// The configured TCP window cap, if any.
    pub fn tcp_window(&self) -> Option<Bytes> {
        self.tcp_window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_matches_paper_rule_of_thumb() {
        let lan = LinkSpec::lan_gigabit();
        // 1 GiB in ~8.5 s; 6 GiB in ~51 s ("around 60 seconds" with
        // engine overheads on top).
        let t1 = lan.transfer_time(Bytes::from_gib(1)).as_secs_f64();
        assert!(t1 > 8.0 && t1 < 9.0, "t1 = {t1}");
        let t6 = lan.transfer_time(Bytes::from_gib(6)).as_secs_f64();
        assert!(t6 > 50.0 && t6 < 55.0, "t6 = {t6}");
    }

    #[test]
    fn wan_window_cap_dominates() {
        let wan = LinkSpec::wan_cloudnet();
        let eff = wan.effective_bandwidth().as_mib_per_sec();
        assert!(eff > 5.0 && eff < 7.0, "effective = {eff} MiB/s");
        // Paper: 1 GiB takes 177 s on average.
        let t = wan.transfer_time(Bytes::from_gib(1)).as_secs_f64();
        assert!((t - 177.0).abs() < 20.0, "t = {t}");
    }

    #[test]
    fn uncapped_wan_would_be_fast() {
        let wan = LinkSpec::wan_cloudnet().with_tcp_window(None);
        let t = wan.transfer_time(Bytes::from_gib(1)).as_secs_f64();
        assert!(t < 20.0, "t = {t}");
    }

    #[test]
    fn effective_bandwidth_never_exceeds_raw() {
        let l = LinkSpec::new(
            BytesPerSec::from_mib_per_sec(10),
            SimDuration::from_nanos(1),
            Some(Bytes::from_gib(1)),
        );
        assert!(l.effective_bandwidth().as_f64() <= l.bandwidth().as_f64());
    }

    #[test]
    fn zero_byte_transfer_costs_latency_only() {
        let wan = LinkSpec::wan_cloudnet();
        assert_eq!(wan.transfer_time(Bytes::ZERO), wan.latency());
    }

    #[test]
    fn round_trip_is_twice_latency() {
        let wan = LinkSpec::wan_cloudnet();
        assert_eq!(wan.round_trip(), SimDuration::from_millis(54));
    }
}
