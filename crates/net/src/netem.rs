//! [`Netem`]: emulated network impairments, as the paper's testbed used.
//!
//! §4.4: "We used netem to emulate the wide area network in our Linux
//! benchmark environment." This module models what netem does to a TCP
//! stream analytically: added delay, rate limiting, and random loss.
//! Under loss, sustained TCP throughput follows the Mathis model,
//! `BW ≈ (MSS / RTT) · (C / √p)` with `C ≈ 1.22` — the reason a few
//! tenths of a percent of loss can hurt a WAN migration more than the
//! advertised bandwidth suggests.

use serde::{Deserialize, Serialize};

use vecycle_types::{Bytes, BytesPerSec, Error, SimDuration};

use crate::LinkSpec;

/// TCP maximum segment size assumed by the loss model.
const MSS: f64 = 1448.0;

/// The Mathis constant for Reno-style congestion control.
const MATHIS_C: f64 = 1.22;

/// A netem-style impairment specification applied to a base link.
///
/// # Examples
///
/// ```
/// use vecycle_net::{LinkSpec, Netem};
/// use vecycle_types::{Bytes, SimDuration};
///
/// // The paper's WAN: 465 Mbit/s with 27 ms delay...
/// let clean = LinkSpec::wan_cloudnet();
/// // ...now with 0.1% loss on top.
/// let lossy = Netem::new()
///     .loss(0.001)
///     .apply(clean);
/// let gib = Bytes::from_gib(1);
/// assert!(lossy.transfer_time(gib) > clean.transfer_time(gib));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Netem {
    extra_delay: SimDuration,
    loss: f64,
    rate_limit: Option<BytesPerSec>,
}

impl Netem {
    /// No impairment.
    pub fn new() -> Self {
        Netem::default()
    }

    /// Adds one-way delay (netem `delay`).
    #[must_use]
    pub fn delay(mut self, delay: SimDuration) -> Self {
        self.extra_delay = delay;
        self
    }

    /// Sets the random loss probability (netem `loss`), `0 ≤ p < 1`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range (including NaN). Use
    /// [`Netem::try_loss`] for a non-panicking variant.
    #[must_use]
    pub fn loss(self, p: f64) -> Self {
        match self.try_loss(p) {
            Ok(n) => n,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible version of [`Netem::loss`]: validates `p` into
    /// `[0.0, 1.0)` and rejects NaN, so the Mathis model can never be fed
    /// a probability that yields NaN or negative throughput (`√p` with
    /// `p < 0`, or division by `√0 = 0` at `p = 1`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `p` is NaN or outside
    /// `[0.0, 1.0)`.
    pub fn try_loss(mut self, p: f64) -> Result<Self, Error> {
        if !(0.0..1.0).contains(&p) {
            return Err(Error::InvalidConfig {
                reason: format!("loss probability {p} out of [0,1)"),
            });
        }
        self.loss = p;
        Ok(self)
    }

    /// Caps the link rate (netem `rate`).
    #[must_use]
    pub fn rate(mut self, rate: BytesPerSec) -> Self {
        self.rate_limit = Some(rate);
        self
    }

    /// The configured loss probability.
    pub fn loss_probability(&self) -> f64 {
        self.loss
    }

    /// The configured extra one-way delay.
    pub fn extra_delay(&self) -> SimDuration {
        self.extra_delay
    }

    /// The configured rate cap, if any.
    pub fn rate_limit(&self) -> Option<BytesPerSec> {
        self.rate_limit
    }

    /// The sustained TCP throughput under this impairment for a flow
    /// with round-trip time `rtt` (Mathis et al., CCR 1997).
    pub fn tcp_throughput(&self, rtt: SimDuration) -> Option<BytesPerSec> {
        if self.loss <= 0.0 {
            return None; // loss-free: the window/bandwidth cap governs
        }
        let rtt_s = rtt.as_secs_f64().max(1e-6);
        Some(BytesPerSec::new(MSS / rtt_s * MATHIS_C / self.loss.sqrt()))
    }

    /// Applies the impairment to a base link, producing the effective
    /// [`LinkSpec`] a migration experiences.
    pub fn apply(&self, base: LinkSpec) -> LinkSpec {
        let latency = base.latency().saturating_add(self.extra_delay);
        let mut bandwidth = base.bandwidth();
        if let Some(cap) = self.rate_limit {
            bandwidth = bandwidth.min(cap);
        }
        let mut link = base.with_bandwidth(bandwidth).with_latency(latency);
        if let Some(tcp) = self.tcp_throughput(latency * 2) {
            // Encode the Mathis ceiling as an equivalent TCP window so the
            // LinkSpec arithmetic stays uniform.
            let window = Bytes::new((tcp.as_f64() * latency.as_secs_f64() * 2.0) as u64);
            let capped = match link.tcp_window() {
                Some(existing) => existing.min(window),
                None => window,
            };
            link = link.with_tcp_window(Some(capped));
        }
        link
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_impairment_is_identity() {
        let base = LinkSpec::lan_gigabit();
        assert_eq!(Netem::new().apply(base), base);
    }

    #[test]
    fn delay_adds_to_latency() {
        let base = LinkSpec::lan_gigabit();
        let slowed = Netem::new().delay(SimDuration::from_millis(27)).apply(base);
        assert_eq!(
            slowed.latency(),
            base.latency() + SimDuration::from_millis(27)
        );
    }

    #[test]
    fn mathis_throughput_matches_formula() {
        // 54 ms RTT, 0.1% loss: 1448/0.054 * 1.22/sqrt(0.001) ≈ 1.03 MB/s.
        let tcp = Netem::new()
            .loss(0.001)
            .tcp_throughput(SimDuration::from_millis(54))
            .unwrap();
        let expected = 1448.0 / 0.054 * 1.22 / 0.001f64.sqrt();
        assert!((tcp.as_f64() - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn loss_dominates_a_fat_wan() {
        let clean = LinkSpec::wan_cloudnet();
        let lossy = Netem::new().loss(0.005).apply(clean);
        // 0.5% loss at 54 ms RTT caps TCP near 460 KB/s — far below the
        // clean link's ~6 MiB/s.
        let ratio = lossy.effective_bandwidth().as_f64() / clean.effective_bandwidth().as_f64();
        assert!(ratio < 0.15, "ratio = {ratio}");
    }

    #[test]
    fn tiny_loss_leaves_fast_lan_window_bound() {
        // On a 0.2 ms RTT LAN, even 0.01% loss allows ~10 GB/s Mathis
        // throughput: the base bandwidth still governs.
        let base = LinkSpec::lan_gigabit();
        let lossy = Netem::new().loss(0.0001).apply(base);
        assert!(
            (lossy.effective_bandwidth().as_f64() - base.effective_bandwidth().as_f64()).abs()
                / base.effective_bandwidth().as_f64()
                < 0.05
        );
    }

    #[test]
    fn rate_limit_caps_bandwidth() {
        let base = LinkSpec::lan_gigabit();
        let limited = Netem::new()
            .rate(BytesPerSec::from_mib_per_sec(10))
            .apply(base);
        assert!(limited.effective_bandwidth().as_mib_per_sec() <= 10.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_panics() {
        let _ = Netem::new().loss(1.0);
    }

    #[test]
    fn try_loss_accepts_zero_boundary() {
        // p = 0.0 is valid: loss-free, Mathis model disabled.
        let n = Netem::new().try_loss(0.0).unwrap();
        assert!(n.tcp_throughput(SimDuration::from_millis(54)).is_none());
        assert_eq!(n.apply(LinkSpec::lan_gigabit()), LinkSpec::lan_gigabit());
    }

    #[test]
    fn try_loss_accepts_near_one_and_stays_finite() {
        // Just under 1.0 is valid and yields a tiny but positive,
        // finite Mathis throughput.
        let n = Netem::new().try_loss(0.999_999).unwrap();
        let tcp = n.tcp_throughput(SimDuration::from_millis(54)).unwrap();
        assert!(tcp.as_f64().is_finite() && tcp.as_f64() > 0.0);
        let link = n.apply(LinkSpec::wan_cloudnet());
        assert!(link.effective_bandwidth().as_f64() > 0.0);
    }

    #[test]
    fn try_loss_rejects_out_of_range() {
        for bad in [1.0, 1.5, -0.1, f64::NAN, f64::INFINITY] {
            let err = Netem::new().try_loss(bad).unwrap_err();
            assert!(
                matches!(err, Error::InvalidConfig { .. }),
                "p = {bad}: {err:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn nan_loss_panics_too() {
        let _ = Netem::new().loss(f64::NAN);
    }
}
