//! Metrics export for the network layer.
//!
//! [`observe_ledger`] copies a finished [`TrafficLedger`] into the
//! `net_wire_bytes_total` / `net_wire_messages_total` counter families.
//! The engine keeps its own incremental `engine_wire_*` counters at
//! every record site; the two families are **independent accountings of
//! the same traffic**, so the invariant suite can reconcile them and
//! catch double-counting at the layer boundary. They diverge only by
//! design: the engine side includes bytes landed by attempts that later
//! aborted, the net side only completed migrations' ledgers — the
//! difference is exactly the wasted wire traffic.

use vecycle_obs::MetricsRegistry;

use crate::{Netem, TrafficCategory, TrafficLedger};

impl TrafficCategory {
    /// Stable snake_case label for metrics (`…{kind=…}`).
    pub fn label(self) -> &'static str {
        match self {
            TrafficCategory::FullPages => "full_pages",
            TrafficCategory::Checksums => "checksums",
            TrafficCategory::BulkExchange => "bulk_exchange",
            TrafficCategory::DedupRefs => "dedup_refs",
            TrafficCategory::ZeroMarkers => "zero_markers",
            TrafficCategory::Control => "control",
        }
    }
}

/// Adds a completed migration's ledger to the per-category wire
/// counters, labelled with the traffic `direction` (`"forward"` or
/// `"reverse"`). Empty categories are skipped so the series set stays
/// minimal and deterministic.
pub fn observe_ledger(metrics: &MetricsRegistry, direction: &str, ledger: &TrafficLedger) {
    for category in TrafficCategory::ALL {
        let bytes = ledger.bytes_in(category).as_u64();
        let messages = ledger.messages_in(category);
        if messages == 0 && bytes == 0 {
            continue;
        }
        let labels = [("direction", direction), ("kind", category.label())];
        metrics.inc("net_wire_bytes_total", &labels, bytes);
        metrics.inc("net_wire_messages_total", &labels, messages);
    }
}

/// Records a netem configuration as gauges: packet-loss probability,
/// added one-way delay (simulated milliseconds) and the rate cap in
/// bytes/s (0 when uncapped). Loss in this simulator shapes TCP
/// throughput via the Mathis model rather than dropping discrete
/// packets, so the *observable* is the configured probability itself.
pub fn observe_netem(metrics: &MetricsRegistry, scope: &str, netem: &Netem) {
    let labels = [("scope", scope)];
    metrics.set_gauge(
        "net_netem_loss_probability",
        &labels,
        netem.loss_probability(),
    );
    metrics.set_gauge(
        "net_netem_extra_delay_ms",
        &labels,
        netem.extra_delay().as_nanos() as f64 / 1e6,
    );
    metrics.set_gauge(
        "net_netem_rate_limit_bytes_per_sec",
        &labels,
        netem.rate_limit().map_or(0.0, |r| r.as_f64()),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecycle_types::Bytes;

    #[test]
    fn ledger_export_matches_ledger() {
        let mut ledger = TrafficLedger::new();
        ledger.record_many(TrafficCategory::FullPages, 3, Bytes::from_kib(4));
        ledger.record(TrafficCategory::Control, Bytes::new(24));
        let m = MetricsRegistry::new();
        observe_ledger(&m, "forward", &ledger);
        assert_eq!(
            m.counter(
                "net_wire_bytes_total",
                &[("direction", "forward"), ("kind", "full_pages")]
            ),
            3 * 4096
        );
        assert_eq!(
            m.counter(
                "net_wire_messages_total",
                &[("direction", "forward"), ("kind", "control")]
            ),
            1
        );
        assert_eq!(
            m.counter_total("net_wire_bytes_total"),
            ledger.total().as_u64()
        );
        // Empty categories create no series.
        assert_eq!(
            m.snapshot().counters_named("net_wire_bytes_total").count(),
            2
        );
    }

    #[test]
    fn netem_gauges() {
        let netem = Netem::new()
            .delay(vecycle_types::SimDuration::from_millis(40))
            .loss(0.01);
        let m = MetricsRegistry::new();
        observe_netem(&m, "wan", &netem);
        let snap = m.snapshot();
        let loss = snap
            .gauges
            .iter()
            .find(|g| g.name == "net_netem_loss_probability")
            .unwrap();
        assert!((loss.value - 0.01).abs() < 1e-12);
    }
}
