//! Network models: links, wire sizing and traffic accounting.
//!
//! Migration time in the paper is governed by two rates — the link's
//! effective bandwidth and the CPU's checksum rate — so the network model
//! here is analytic: a [`LinkSpec`] answers "how long does it take to
//! move N bytes", with a TCP-window cap reproducing why the emulated WAN
//! (465 Mbit/s, 27 ms) only sustains ~6 MiB/s in the paper's
//! measurements. Wire-format sizing ([`wire`]) and the [`TrafficLedger`]
//! make every byte the engine sends attributable and testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ledger;
mod link;
mod netem;
mod obs;
pub mod wire;

pub use ledger::{TrafficCategory, TrafficLedger};
pub use link::LinkSpec;
pub use netem::Netem;
pub use obs::{observe_ledger, observe_netem};
