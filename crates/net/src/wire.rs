//! Wire-format sizing for migration messages (§3.2/§3.3).
//!
//! "Each message is a page number plus either a checksum or the full
//! page." These constants define the exact byte cost of every message so
//! traffic accounting is reproducible rather than hand-waved.

use vecycle_types::{Bytes, PAGE_SIZE};

/// Bytes of framing per message: an 8-byte page number plus a 4-byte
/// type/length word.
pub const MSG_HEADER: u64 = 12;

/// Bytes per checksum on the wire (MD5-sized).
pub const CHECKSUM_SIZE: u64 = 16;

/// Size of a message carrying a full page.
///
/// The sender attaches the checksum alongside the page, which "saves the
/// receiver from re-computing the checksum for the received page".
pub fn full_page_msg() -> Bytes {
    Bytes::new(MSG_HEADER + CHECKSUM_SIZE + PAGE_SIZE)
}

/// Size of a message carrying only a checksum (page exists remotely).
pub fn checksum_msg() -> Bytes {
    Bytes::new(MSG_HEADER + CHECKSUM_SIZE)
}

/// Size of the bulk checksum pre-exchange for `distinct` digests.
///
/// "The destination sends the hashes of locally available pages to the
/// source" before the first copy round; 16 bytes per distinct hash plus
/// one message header.
pub fn bulk_exchange(distinct: u64) -> Bytes {
    Bytes::new(MSG_HEADER + distinct * CHECKSUM_SIZE)
}

/// Size of a per-page query (the §3.2 alternative protocol): one
/// checksum out, one boolean-sized reply back.
pub fn page_query() -> Bytes {
    Bytes::new(MSG_HEADER + CHECKSUM_SIZE)
}

/// Size of the reply to a per-page query.
pub fn page_query_reply() -> Bytes {
    Bytes::new(MSG_HEADER + 1)
}

/// Size of a deduplication back-reference: instead of a page, an index
/// into already-sent content (CloudNet-style sender-side dedup).
pub fn dedup_ref_msg() -> Bytes {
    Bytes::new(MSG_HEADER + 8)
}

/// Size of a zero-page marker. QEMU detects all-zero pages during the
/// copy and sends a flagged header instead of 4 KiB of zeros; the
/// VeCycle prototype inherits this behaviour from QEMU 2.0.
pub fn zero_page_msg() -> Bytes {
    Bytes::new(MSG_HEADER + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_sizes_are_sane() {
        assert_eq!(full_page_msg().as_u64(), 12 + 16 + 4096);
        assert_eq!(checksum_msg().as_u64(), 28);
        assert!(dedup_ref_msg() < checksum_msg());
        assert!(checksum_msg() < full_page_msg());
        assert!(zero_page_msg() < dedup_ref_msg());
    }

    #[test]
    fn bulk_exchange_matches_paper_estimate() {
        // 4 GiB VM, all pages unique: 2^20 checksums ≈ 16 MiB.
        let b = bulk_exchange(1 << 20);
        let mib = b.as_mib_f64();
        assert!((mib - 16.0).abs() < 0.01, "got {mib} MiB");
    }

    #[test]
    fn checksum_saving_ratio() {
        // A checksum-only message replaces a full-page message: the
        // saving factor is ~147x per reusable page.
        let ratio = full_page_msg().as_f64() / checksum_msg().as_f64();
        assert!(ratio > 100.0);
    }
}
