//! Property tests: link arithmetic is monotone and consistent.

use proptest::prelude::*;

use vecycle_net::{LinkSpec, Netem, TrafficCategory, TrafficLedger};
use vecycle_types::{Bytes, BytesPerSec, SimDuration};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// More bytes never transfer faster.
    #[test]
    fn transfer_time_is_monotone(a in 0u64..1 << 32, b in 0u64..1 << 32) {
        let link = LinkSpec::wan_cloudnet();
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(
            link.transfer_time(Bytes::new(lo)) <= link.transfer_time(Bytes::new(hi))
        );
    }

    /// Higher loss never increases throughput.
    #[test]
    fn loss_is_monotone(a in 0.0001f64..0.5, b in 0.0001f64..0.5) {
        let (lo, hi) = (a.min(b), a.max(b));
        let base = LinkSpec::wan_cloudnet();
        let t_lo = Netem::new().loss(lo).apply(base).effective_bandwidth();
        let t_hi = Netem::new().loss(hi).apply(base).effective_bandwidth();
        prop_assert!(t_hi.as_f64() <= t_lo.as_f64() + 1e-9);
    }

    /// Effective bandwidth never exceeds the raw link rate.
    #[test]
    fn effective_bw_is_capped(mbit in 1.0f64..10_000.0, window_kib in 1u64..100_000) {
        let link = LinkSpec::new(
            BytesPerSec::from_mbit_per_sec(mbit),
            SimDuration::from_millis(10),
            Some(Bytes::from_kib(window_kib)),
        );
        prop_assert!(link.effective_bandwidth().as_f64() <= link.bandwidth().as_f64() + 1e-9);
    }

    /// Ledger totals always equal the sum over categories, under any
    /// recording sequence.
    #[test]
    fn ledger_total_is_sum(entries in proptest::collection::vec((0usize..6, 0u64..1 << 20), 0..64)) {
        let mut ledger = TrafficLedger::new();
        for (cat_idx, bytes) in &entries {
            ledger.record(TrafficCategory::ALL[*cat_idx], Bytes::new(*bytes));
        }
        let sum: u64 = TrafficCategory::ALL
            .iter()
            .map(|c| ledger.bytes_in(*c).as_u64())
            .sum();
        prop_assert_eq!(ledger.total().as_u64(), sum);
        prop_assert_eq!(ledger.messages(), entries.len() as u64);
    }

    /// Merging ledgers is associative on totals.
    #[test]
    fn ledger_merge_adds(a in 0u64..1 << 30, b in 0u64..1 << 30) {
        let mut x = TrafficLedger::new();
        x.record(TrafficCategory::FullPages, Bytes::new(a));
        let mut y = TrafficLedger::new();
        y.record(TrafficCategory::Checksums, Bytes::new(b));
        x.merge(&y);
        prop_assert_eq!(x.total(), Bytes::new(a + b));
    }
}
