//! The permanent corpus: fuzz-found inputs, checked into the repo.
//!
//! Layout is one directory per target under `fuzz/corpus/` at the
//! repository root, one file per entry, named by the FNV-1a 64 of the
//! entry's bytes (16 hex digits). Content addressing makes writes
//! idempotent — re-running the fuzzer with the same seed re-derives
//! the same files byte-for-byte, so `git status` stays clean and a
//! dirty tree after a CI fuzz run *is itself a finding* (either a new
//! outcome class appeared or determinism broke).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::mutate::fnv64;

/// The corpus root: `$VECYCLE_FUZZ_CORPUS` when set, else the
/// checked-in `fuzz/corpus/` next to the workspace `Cargo.toml`.
pub fn corpus_root() -> PathBuf {
    if let Ok(dir) = std::env::var("VECYCLE_FUZZ_CORPUS") {
        return PathBuf::from(dir);
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus")
}

/// The content-addressed file name for an entry.
pub fn entry_name(bytes: &[u8]) -> String {
    format!("{:016x}.bin", fnv64(bytes))
}

/// Writes one entry into `<root>/<target>/`, creating directories as
/// needed. Idempotent: an existing entry with the same name (hence the
/// same bytes) is left untouched. Returns `true` if the file is new.
pub fn write_entry(root: &Path, target: &str, bytes: &[u8]) -> io::Result<bool> {
    let dir = root.join(target);
    fs::create_dir_all(&dir)?;
    let path = dir.join(entry_name(bytes));
    if path.exists() {
        return Ok(false);
    }
    fs::write(path, bytes)?;
    Ok(true)
}

/// Loads every entry for one target, sorted by file name so replay
/// order (and therefore the replay stream digest) is deterministic and
/// independent of directory iteration order.
pub fn load_entries(root: &Path, target: &str) -> io::Result<Vec<(String, Vec<u8>)>> {
    let dir = root.join(target);
    if !dir.is_dir() {
        return Ok(Vec::new());
    }
    let mut entries = Vec::new();
    for item in fs::read_dir(&dir)? {
        let item = item?;
        let name = item.file_name().to_string_lossy().into_owned();
        if !name.ends_with(".bin") {
            continue;
        }
        entries.push((name, fs::read(item.path())?));
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_names_are_content_addressed() {
        assert_eq!(entry_name(b"abc"), entry_name(b"abc"));
        assert_ne!(entry_name(b"abc"), entry_name(b"abd"));
        assert_eq!(entry_name(b"x").len(), "0123456789abcdef.bin".len());
    }

    #[test]
    fn write_is_idempotent_and_load_is_sorted() {
        let dir = std::env::temp_dir().join(format!("vecycle-fuzz-corpus-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        assert!(write_entry(&dir, "t", b"bbbb").unwrap());
        assert!(write_entry(&dir, "t", b"aaaa").unwrap());
        assert!(
            !write_entry(&dir, "t", b"bbbb").unwrap(),
            "second write is a no-op"
        );
        let loaded = load_entries(&dir, "t").unwrap();
        assert_eq!(loaded.len(), 2);
        assert!(loaded[0].0 < loaded[1].0, "entries sorted by name");
        assert_eq!(load_entries(&dir, "missing").unwrap(), Vec::new());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn default_root_points_into_the_repo() {
        // Guard against VECYCLE_FUZZ_CORPUS leaking between tests: only
        // assert on the compiled-in default.
        let fallback = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus");
        assert!(fallback.ends_with("fuzz/corpus"));
    }
}
