//! Deterministic fuzzing harness and differential oracles for every
//! VeCycle grammar that parses untrusted bytes.
//!
//! The container vendors all dependencies offline, so there is no
//! cargo-fuzz and no libFuzzer here; instead the crate hand-rolls a
//! mutation fuzzer on the workspace's deterministic ChaCha8 PRNG. That
//! buys a property coverage-guided fuzzers give up: the whole run is a
//! pure function of `(seed, iters)`. The same seed produces the same
//! mutant stream, the same outcome-class discoveries, the same corpus
//! files and the same stats block, on any machine, at any thread
//! count. A finding is reproducible from two integers.
//!
//! The moving parts:
//!
//! * [`targets`] — one [`targets::Target`] per parser surface
//!   (checkpoint wire format, trace wire format, chaos/fault/eviction/
//!   size/link/duration grammars), each with seed inputs, a mutation
//!   dictionary and an outcome classifier;
//! * [`mutate`] — the seeded mutator and the trailer-fixing fixup that
//!   lets mutants of checksummed formats reach the inner field parsers;
//! * [`guard`] — the no-panic + bounded-allocation harness: a counting
//!   global allocator that fails a target when parsing an N-byte input
//!   requests far more than N bytes;
//! * [`corpus`] — the permanent, content-addressed corpus under
//!   `fuzz/corpus/`, replayed by tests and CI;
//! * [`oracle`] — differential replay of clean-parsing corpus entries:
//!   closed-form estimates vs the real transfer pipeline, and
//!   single-thread vs multi-thread migrations.

#![warn(missing_docs)]

pub mod corpus;
pub mod guard;
pub mod mutate;
pub mod oracle;
pub mod targets;

pub use guard::{alloc_budget, AllocMeter, AllocStats, CountingAlloc};

use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Once, OnceLock};

use mutate::{fnv64, fnv64_chain, Mutator};
use targets::Target;

/// Why an input counts as a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FindingKind {
    /// The parser panicked instead of returning an error.
    Panic,
    /// Parsing requested more memory than [`alloc_budget`] allows.
    AllocGuard,
    /// A differential oracle disagreed on a clean-parsing input.
    Oracle,
}

/// One input that violated the harness contract.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The target that produced it.
    pub target: &'static str,
    /// What went wrong.
    pub kind: FindingKind,
    /// Panic message, allocation stats or oracle disagreement.
    pub detail: String,
    /// The offending bytes, verbatim.
    pub input: Vec<u8>,
}

/// The deterministic outcome of fuzzing one target.
#[derive(Debug)]
pub struct TargetReport {
    /// Target name.
    pub name: &'static str,
    /// Inputs executed (seeds + mutants).
    pub executions: u64,
    /// Executions per outcome class, in class-name order.
    pub classes: BTreeMap<&'static str, u64>,
    /// First input to reach each class, in discovery order — the
    /// corpus candidates.
    pub discovered: Vec<(&'static str, Vec<u8>)>,
    /// Harness violations.
    pub findings: Vec<Finding>,
    /// Rolling FNV over every executed input, length-framed: two runs
    /// agree on this iff they executed the identical byte streams.
    pub stream_digest: u64,
}

/// The deterministic outcome of replaying one target's corpus.
#[derive(Debug)]
pub struct ReplayReport {
    /// Target name.
    pub name: &'static str,
    /// Corpus entries replayed.
    pub entries: u64,
    /// Entries that parsed cleanly and passed both oracles.
    pub oracle_checked: u64,
    /// Entries the oracles skipped (empty or oversized images).
    pub oracle_skipped: u64,
    /// Harness or oracle violations.
    pub findings: Vec<Finding>,
    /// Rolling FNV over the replayed entries, in replay order.
    pub stream_digest: u64,
}

thread_local! {
    static QUIET: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

type PanicHook = Box<dyn Fn(&panic::PanicHookInfo<'_>) + Sync + Send>;

static PREV_HOOK: OnceLock<PanicHook> = OnceLock::new();

/// Installs (once, process-wide) a panic hook that stays silent while a
/// harness execution is in flight on the current thread, so a fuzz run
/// that catches thousands of panics does not flood stderr with
/// backtraces; panics outside the harness keep the default behaviour.
fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        let _ = PREV_HOOK.set(prev);
        panic::set_hook(Box::new(|info| {
            if !QUIET.with(std::cell::Cell::get) {
                if let Some(prev) = PREV_HOOK.get() {
                    prev(info);
                }
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// One harness execution: what the classifier said (or how the parser
/// died) plus what the parse requested from the allocator.
struct Exec {
    class: Result<&'static str, String>,
    alloc: AllocStats,
}

/// Runs one input through a target under the no-panic +
/// bounded-allocation harness.
fn execute(target: &Target, input: &[u8]) -> Exec {
    install_quiet_hook();
    QUIET.with(|q| q.set(true));
    AllocMeter::start();
    let caught = panic::catch_unwind(AssertUnwindSafe(|| (target.run)(input)));
    let alloc = AllocMeter::stop();
    QUIET.with(|q| q.set(false));
    Exec {
        class: caught.map_err(panic_message),
        alloc,
    }
}

/// Checks one execution against the harness contract, appending any
/// violation to `findings`.
fn check_contract(target: &Target, input: &[u8], exec: &Exec, findings: &mut Vec<Finding>) {
    if let Err(msg) = &exec.class {
        findings.push(Finding {
            target: target.name,
            kind: FindingKind::Panic,
            detail: msg.clone(),
            input: input.to_vec(),
        });
    }
    if exec.alloc.requested > alloc_budget(input.len()) {
        findings.push(Finding {
            target: target.name,
            kind: FindingKind::AllocGuard,
            detail: format!(
                "parse of {} bytes requested {} bytes (largest single request {}, budget {})",
                input.len(),
                exec.alloc.requested,
                exec.alloc.largest,
                alloc_budget(input.len()),
            ),
            input: input.to_vec(),
        });
    }
}

/// Fuzzes one target for `iters` mutants.
///
/// The mutation pool starts from the target's built-in seeds and grows
/// with each input that reaches a new outcome class; it never reads the
/// on-disk corpus, so two runs with the same `(seed, iters)` make
/// identical discoveries even when the first run has already written
/// its corpus out.
pub fn fuzz_target(target: &Target, seed: u64, iters: u64) -> TargetReport {
    let mut mutator = Mutator::new(seed ^ fnv64(target.name.as_bytes()));
    let mut pool: Vec<Vec<u8>> = (target.seeds)();
    let mut classes: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut discovered: Vec<(&'static str, Vec<u8>)> = Vec::new();
    let mut findings = Vec::new();
    let mut executions = 0u64;
    let mut stream_digest = 0u64;

    let run_input = |input: &[u8],
                     classes: &mut BTreeMap<&'static str, u64>,
                     discovered: &mut Vec<(&'static str, Vec<u8>)>,
                     findings: &mut Vec<Finding>,
                     executions: &mut u64,
                     stream_digest: &mut u64|
     -> Option<&'static str> {
        *executions += 1;
        *stream_digest = fnv64_chain(*stream_digest, input);
        let exec = execute(target, input);
        check_contract(target, input, &exec, findings);
        if let Ok(class) = exec.class {
            *classes.entry(class).or_insert(0) += 1;
            if classes[class] == 1 {
                discovered.push((class, input.to_vec()));
                return Some(class);
            }
        }
        None
    };

    // Seeds first: they define the known classes before mutation starts.
    for s in pool.clone() {
        run_input(
            &s,
            &mut classes,
            &mut discovered,
            &mut findings,
            &mut executions,
            &mut stream_digest,
        );
    }

    for _ in 0..iters {
        let base = pool[mutator.pick(pool.len())].clone();
        let mut input = mutator.mutate(&base, target.dict, target.max_len);
        if let Some(post) = target.post {
            post(&mut input);
        }
        let new_class = run_input(
            &input,
            &mut classes,
            &mut discovered,
            &mut findings,
            &mut executions,
            &mut stream_digest,
        );
        // A class-opening input joins the pool: mutants of a mutant that
        // got past the magic check reach deeper than mutants of a seed.
        if new_class.is_some() {
            pool.push(input);
        }
    }

    TargetReport {
        name: target.name,
        executions,
        classes,
        discovered,
        findings,
        stream_digest,
    }
}

/// Replays a target's on-disk corpus through the harness and — for the
/// checkpoint and trace targets — through both differential oracles.
pub fn replay_corpus(target: &Target, root: &Path) -> std::io::Result<ReplayReport> {
    let mut report = ReplayReport {
        name: target.name,
        entries: 0,
        oracle_checked: 0,
        oracle_skipped: 0,
        findings: Vec::new(),
        stream_digest: 0,
    };
    for (_name, bytes) in corpus::load_entries(root, target.name)? {
        report.entries += 1;
        report.stream_digest = fnv64_chain(report.stream_digest, &bytes);
        let exec = execute(target, &bytes);
        check_contract(target, &bytes, &exec, &mut report.findings);
        if exec.class.is_err() {
            continue;
        }
        let verdict = if target.name.starts_with("ckpt") {
            vecycle_checkpoint::Checkpoint::read_from(bytes.as_slice())
                .ok()
                .map(|cp| oracle::checkpoint_oracle(&cp))
        } else if target.name.starts_with("trace") {
            vecycle_trace::Trace::read_from(bytes.as_slice())
                .ok()
                .map(|tr| oracle::trace_oracle(&tr))
        } else {
            None
        };
        match verdict {
            Some(Ok(oracle::OracleOutcome::Checked)) => report.oracle_checked += 1,
            Some(Ok(oracle::OracleOutcome::Skipped)) => report.oracle_skipped += 1,
            Some(Err(detail)) => report.findings.push(Finding {
                target: target.name,
                kind: FindingKind::Oracle,
                detail,
                input: bytes,
            }),
            None => {}
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzzing_is_deterministic() {
        let target = targets::find_target("chaos_cfg").expect("registered");
        let a = fuzz_target(&target, 7, 300);
        let target = targets::find_target("chaos_cfg").expect("registered");
        let b = fuzz_target(&target, 7, 300);
        assert_eq!(a.executions, b.executions);
        assert_eq!(a.stream_digest, b.stream_digest);
        assert_eq!(a.classes, b.classes);
        assert_eq!(
            a.discovered
                .iter()
                .map(|(c, i)| (*c, i.clone()))
                .collect::<Vec<_>>(),
            b.discovered
                .iter()
                .map(|(c, i)| (*c, i.clone()))
                .collect::<Vec<_>>(),
        );
        assert!(a.findings.is_empty(), "chaos grammar must not panic");
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let t = targets::find_target("cli_faults").expect("registered");
        let a = fuzz_target(&t, 1, 200);
        let t = targets::find_target("cli_faults").expect("registered");
        let b = fuzz_target(&t, 2, 200);
        assert_ne!(a.stream_digest, b.stream_digest);
    }

    #[test]
    fn trailer_fixing_target_reaches_inner_parsers() {
        // With the trailer refixed, mutants get past the integrity check
        // and exercise field validation: the run must discover more than
        // just the ok/trailer/short classes.
        let t = targets::find_target("ckpt_fix").expect("registered");
        let report = fuzz_target(&t, 7, 2000);
        assert!(
            report.findings.is_empty(),
            "findings: {:?}",
            report.findings
        );
        let inner: Vec<_> = report
            .classes
            .keys()
            .filter(|c| !matches!(**c, "ok_digests" | "ok_pages" | "err_trailer" | "err_short"))
            .collect();
        assert!(
            !inner.is_empty(),
            "no inner classes reached; classes = {:?}",
            report.classes
        );
    }

    #[test]
    fn a_panicking_target_is_reported_not_fatal() {
        fn boom(input: &[u8]) -> &'static str {
            if input.first() == Some(&0xff) {
                panic!("synthetic parser bug");
            }
            "ok"
        }
        let t = Target {
            name: "synthetic_panic",
            seeds: || vec![vec![0xff, 1, 2]],
            dict: &[],
            post: None,
            run: boom,
            max_len: 64,
        };
        let report = fuzz_target(&t, 3, 50);
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.kind == FindingKind::Panic && f.detail.contains("synthetic")),
            "panic finding missing: {:?}",
            report.findings
        );
    }

    #[test]
    fn replay_of_missing_corpus_is_empty() {
        let t = targets::find_target("bytes_size").expect("registered");
        let dir = std::env::temp_dir().join("vecycle-fuzz-no-such-corpus");
        let report = replay_corpus(&t, &dir).expect("empty replay");
        assert_eq!(report.entries, 0);
        assert!(report.findings.is_empty());
    }
}
