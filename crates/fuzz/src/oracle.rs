//! Differential oracles: every corpus entry that parses cleanly is
//! replayed through two independent implementations of the same
//! question, and any disagreement is a bug in one of them.
//!
//! Oracle 1 — **estimate ≡ pipeline**: `estimate.rs` prices a
//! migration in closed form from exact page-class counts; the real
//! `TransferLoop` pipeline prices the same migration message by
//! message. Both draw prices from the shared `WireCosts` table, so
//! for an idle guest their *traffic* must agree exactly, and their
//! *time* within the estimator's documented small-term slack (it
//! ignores the checksum pre-exchange, which the engine accounts).
//!
//! Oracle 2 — **threads 1 ≡ N**: the parallel scan contract says any
//! thread count yields bit-identical results. Each replay runs the
//! same migration at 1, 4 and (when set) `VECYCLE_THREADS` threads
//! and requires identical [`MigrationReport`]s *and* identical
//! canonical metrics snapshots.
//!
//! Fuzz-found checkpoints and traces make unusually good oracle
//! inputs: they carry digest patterns (duplicate runs, zero floods,
//! pathological counts) that the benchmark generators never produce.

use vecycle_checkpoint::{Checkpoint, ChecksumIndex};
use vecycle_core::{estimate, MigrationEngine, MigrationReport, Strategy};
use vecycle_host::CpuSpec;
use vecycle_mem::{DigestMemory, MemoryImage};
use vecycle_net::LinkSpec;
use vecycle_obs::MetricsRegistry;
use vecycle_trace::Trace;
use vecycle_types::{PageDigest, Ratio};

use std::sync::Arc;

/// Replays above this many pages are skipped: corpus entries are tiny
/// by construction, and a clean-parsing giant would stall the bounded
/// CI job without exercising anything new.
const MAX_ORACLE_PAGES: usize = 1 << 16;

/// Relative tolerance for the time comparison. Traffic must match
/// exactly; time carries the estimator's documented slack (no checksum
/// pre-exchange, no per-round latency beyond the handshake).
const TIME_RTOL: f64 = 0.02;
/// Absolute time slack for sub-millisecond migrations, where the
/// ignored exchange latency dominates any relative bound.
const TIME_ATOL_SECS: f64 = 0.005;

/// What a replay did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleOutcome {
    /// Both oracles ran and agreed.
    Checked,
    /// Input was empty or over the size cap; nothing to migrate.
    Skipped,
}

/// The thread counts under test: always 1 vs 4, plus `VECYCLE_THREADS`
/// when set — so a CI matrix leg genuinely varies the comparison.
fn threads_under_test() -> Vec<usize> {
    let mut t = vec![1, 4];
    if let Ok(v) = std::env::var("VECYCLE_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                t.push(n);
            }
        }
    }
    t.sort_unstable();
    t.dedup();
    t
}

/// Runs one migration at the given thread count, returning the report
/// and the canonical metrics snapshot.
fn run_once(
    vm: &DigestMemory,
    strategy: &Strategy,
    threads: usize,
) -> Result<(MigrationReport, String), String> {
    let metrics = MetricsRegistry::new();
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit())
        .with_threads(threads)
        .with_metrics(metrics.clone());
    let report = engine
        .migrate(vm, strategy.clone())
        .map_err(|e| format!("migrate failed: {e}"))?;
    Ok((report, metrics.snapshot().to_canonical_json()))
}

/// Exact page-class counts for the estimator, derived by replaying the
/// strategy's own classification rule over the image.
fn exact_fractions(vm: &DigestMemory, index: &ChecksumIndex) -> (Ratio, Ratio) {
    use vecycle_checkpoint::PageLookup;
    let digests = vm.as_slice();
    let n = digests.len() as f64;
    let zeros = digests.iter().filter(|d| d.is_zero_page()).count();
    let nonzero: Vec<&PageDigest> = digests.iter().filter(|d| !d.is_zero_page()).collect();
    let reused = nonzero.iter().filter(|d| index.contains(***d)).count();
    let zero_fraction = if n == 0.0 { 0.0 } else { zeros as f64 / n };
    let similarity = if nonzero.is_empty() {
        0.0
    } else {
        reused as f64 / nonzero.len() as f64
    };
    (Ratio::new(similarity), Ratio::new(zero_fraction))
}

/// Compares the closed-form estimate against one measured report.
fn check_estimate(
    what: &str,
    predicted: estimate::MigrationEstimate,
    actual: &MigrationReport,
) -> Result<(), String> {
    if predicted.traffic != actual.source_traffic() {
        return Err(format!(
            "{what}: estimate traffic {} != pipeline traffic {} ({} vs {} bytes)",
            predicted.traffic,
            actual.source_traffic(),
            predicted.traffic.as_u64(),
            actual.source_traffic().as_u64(),
        ));
    }
    let p = predicted.time.as_secs_f64();
    let a = actual.total_time().as_secs_f64();
    let err = (p - a).abs();
    if err > TIME_ATOL_SECS && err > TIME_RTOL * a.max(1e-12) {
        return Err(format!(
            "{what}: estimate time {p:.6}s vs pipeline time {a:.6}s (err {err:.6}s)"
        ));
    }
    Ok(())
}

/// Core replay shared by the checkpoint and trace oracles: migrate
/// `vm` against `index` under VeCycle and under the full baseline,
/// checking thread-count identity and estimator agreement for both.
fn replay(vm: &DigestMemory, index: Arc<ChecksumIndex>) -> Result<OracleOutcome, String> {
    let pages = vm.page_count().as_usize();
    if pages == 0 || pages > MAX_ORACLE_PAGES {
        return Ok(OracleOutcome::Skipped);
    }
    let (similarity, zero_fraction) = exact_fractions(vm, &index);
    let cpu = CpuSpec::phenom_ii();
    let link = LinkSpec::lan_gigabit();

    for (label, strategy) in [
        ("vecycle", Strategy::vecycle_with_index(index.clone())),
        ("full", Strategy::full()),
    ] {
        let mut baseline: Option<(MigrationReport, String)> = None;
        for threads in threads_under_test() {
            let (report, snap) = run_once(vm, &strategy, threads)?;
            match &baseline {
                None => {
                    // Oracle 1 on the single-thread run (the others are
                    // bit-identical or the run fails below anyway).
                    let predicted = match label {
                        "vecycle" => estimate::estimate_vecycle(
                            vm.ram_size(),
                            similarity,
                            zero_fraction,
                            link,
                            &cpu,
                            vecycle_hash::ChecksumAlgorithm::Md5,
                        ),
                        _ => estimate::estimate_full(vm.ram_size(), zero_fraction, link),
                    };
                    check_estimate(label, predicted, &report)?;
                    baseline = Some((report, snap));
                }
                Some((r0, s0)) => {
                    if report != *r0 {
                        return Err(format!(
                            "{label}: report at {threads} threads differs from 1 thread"
                        ));
                    }
                    if snap != *s0 {
                        return Err(format!(
                            "{label}: metrics at {threads} threads differ from 1 thread"
                        ));
                    }
                }
            }
        }
    }
    Ok(OracleOutcome::Checked)
}

/// Differential replay of a parsed checkpoint.
///
/// The guest image is the checkpoint's own restore, deterministically
/// diverged: every third page is rewritten with novel content keyed by
/// its index, so the migration mixes checksum hits, novel sends and
/// (for zero pages) suppression — a fixed, reproducible workload shape
/// whatever bytes the fuzzer found.
pub fn checkpoint_oracle(cp: &Checkpoint) -> Result<OracleOutcome, String> {
    let mut digests = cp.digests();
    if digests.len() > MAX_ORACLE_PAGES {
        return Ok(OracleOutcome::Skipped);
    }
    let index = Arc::new(ChecksumIndex::build(digests.clone()));
    for (i, d) in digests.iter_mut().enumerate() {
        if i % 3 == 0 {
            *d = PageDigest::from_content_id(0x5eed_0000_0000_u64 | (i as u64 + 1));
        }
    }
    replay(&DigestMemory::from_digests(digests), index)
}

/// Differential replay of a parsed trace: the oldest fingerprint plays
/// the destination's checkpoint, the newest plays the live guest — the
/// paper's recycling shape, driven by fuzz-found digest patterns.
pub fn trace_oracle(trace: &Trace) -> Result<OracleOutcome, String> {
    let fps = trace.fingerprints();
    let (first, last) = match (fps.first(), fps.last()) {
        (Some(f), Some(l)) => (f, l),
        _ => return Ok(OracleOutcome::Skipped),
    };
    let index = Arc::new(ChecksumIndex::build(first.pages().to_vec()));
    replay(&DigestMemory::from_digests(last.pages().to_vec()), index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecycle_types::{PageCount, SimTime, VmId};

    #[test]
    fn checkpoint_oracle_agrees_on_valid_inputs() {
        let mem = DigestMemory::with_distinct_content(PageCount::new(64), 5);
        let cp = Checkpoint::capture(VmId::new(1), SimTime::EPOCH, &mem);
        assert_eq!(checkpoint_oracle(&cp), Ok(OracleOutcome::Checked));
    }

    #[test]
    fn empty_checkpoint_is_skipped() {
        let mem = DigestMemory::from_digests(Vec::new());
        let cp = Checkpoint::capture(VmId::new(1), SimTime::EPOCH, &mem);
        assert_eq!(checkpoint_oracle(&cp), Ok(OracleOutcome::Skipped));
    }

    #[test]
    fn all_zero_checkpoint_is_checked() {
        let cp = Checkpoint::capture(
            VmId::new(2),
            SimTime::EPOCH,
            &DigestMemory::zeroed(PageCount::new(32)),
        );
        assert_eq!(checkpoint_oracle(&cp), Ok(OracleOutcome::Checked));
    }

    #[test]
    fn trace_oracle_agrees_on_a_generated_trace() {
        use vecycle_trace::{Fingerprint, Trace};
        let a: Vec<PageDigest> = (0..40).map(PageDigest::from_content_id).collect();
        let b: Vec<PageDigest> = (0..40)
            .map(|i| PageDigest::from_content_id(if i % 4 == 0 { 1000 + i } else { i }))
            .collect();
        let trace = Trace::from_parts(
            vecycle_types::Bytes::from_pages(40),
            vec![
                Fingerprint::new(SimTime::EPOCH, a),
                Fingerprint::new(SimTime::EPOCH, b),
            ],
        );
        assert_eq!(trace_oracle(&trace), Ok(OracleOutcome::Checked));
    }
}
