//! Deterministic input mutation over the vendored ChaCha8 stream.
//!
//! No cargo-fuzz, no libFuzzer: the container vendors every external
//! dependency as an offline shim, so the mutation engine is hand
//! rolled on the workspace's own deterministic PRNG. That constraint
//! is a feature — the same `(seed, iteration)` pair always produces
//! the same byte stream, so any finding is reproducible from two
//! integers and the corpus never depends on scheduling, ASLR or
//! wall-clock time.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use vecycle_hash::{Fnv1a64, Hasher};

/// Values worth splicing into length/count fields: powers of two around
/// container limits, all-ones patterns, and off-by-one neighbours.
const INTERESTING: &[u64] = &[
    0,
    1,
    2,
    15,
    16,
    17,
    255,
    256,
    4095,
    4096,
    4097,
    u16::MAX as u64,
    u32::MAX as u64,
    u32::MAX as u64 + 1,
    1 << 32,
    1 << 60,
    u64::MAX / 16,
    u64::MAX / 16 + 1,
    u64::MAX / 4096,
    u64::MAX / 4096 + 1,
    u64::MAX - 1,
    u64::MAX,
];

/// The deterministic mutator: one per target, seeded from the run seed
/// and the target name.
pub struct Mutator {
    rng: ChaCha8Rng,
}

impl Mutator {
    /// Creates a mutator whose stream depends only on `seed`.
    pub fn new(seed: u64) -> Self {
        Mutator {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Produces one mutant of `base`, applying 1–4 stacked mutations.
    ///
    /// `dict` supplies grammar tokens (keys, suffixes, separators) that
    /// get spliced in whole — byte-level flips alone rarely stumble
    /// from `crash=0.1` to `hosts=`, but a token splice does. The
    /// result never exceeds `max_len` bytes.
    pub fn mutate(&mut self, base: &[u8], dict: &[&[u8]], max_len: usize) -> Vec<u8> {
        let mut out = base.to_vec();
        let rounds = self.rng.gen_range(1..=4u32);
        for _ in 0..rounds {
            self.mutate_once(&mut out, dict);
        }
        out.truncate(max_len);
        out
    }

    fn mutate_once(&mut self, buf: &mut Vec<u8>, dict: &[&[u8]]) {
        let op = self.rng.gen_range(0..9u32);
        if buf.is_empty() && op != 3 && op != 7 {
            // Everything except insert/splice needs existing bytes.
            buf.extend((0..self.rng.gen_range(1..16usize)).map(|_| self.rng.gen::<u8>()));
            return;
        }
        match op {
            // Bit flip.
            0 => {
                let i = self.rng.gen_range(0..buf.len());
                let bit = self.rng.gen_range(0..8u32);
                buf[i] ^= 1 << bit;
            }
            // Random byte overwrite.
            1 => {
                let i = self.rng.gen_range(0..buf.len());
                buf[i] = self.rng.gen::<u8>();
            }
            // Delete a short range.
            2 => {
                let start = self.rng.gen_range(0..buf.len());
                let len = self.rng.gen_range(1..=16usize).min(buf.len() - start);
                buf.drain(start..start + len);
            }
            // Insert random bytes.
            3 => {
                let at = self.rng.gen_range(0..=buf.len());
                let n = self.rng.gen_range(1..=16usize);
                let bytes: Vec<u8> = (0..n).map(|_| self.rng.gen::<u8>()).collect();
                buf.splice(at..at, bytes);
            }
            // Duplicate an existing range elsewhere (structure-preserving
            // splice: repeats records, keys, digests).
            4 => {
                let start = self.rng.gen_range(0..buf.len());
                let len = self.rng.gen_range(1..=32usize).min(buf.len() - start);
                let chunk: Vec<u8> = buf[start..start + len].to_vec();
                let at = self.rng.gen_range(0..=buf.len());
                buf.splice(at..at, chunk);
            }
            // Overwrite 8 bytes with an interesting integer, both
            // endiannesses: the checkpoint header is big-endian, the
            // trace format little-endian.
            5 => {
                let v = INTERESTING[self.rng.gen_range(0..INTERESTING.len())];
                let bytes = if self.rng.gen::<bool>() {
                    v.to_be_bytes()
                } else {
                    v.to_le_bytes()
                };
                let i = self.rng.gen_range(0..buf.len());
                for (k, b) in bytes.iter().enumerate() {
                    if i + k < buf.len() {
                        buf[i + k] = *b;
                    }
                }
            }
            // Truncate.
            6 => {
                let keep = self.rng.gen_range(0..buf.len());
                buf.truncate(keep);
            }
            // Dictionary token insert (or ASCII noise when no dict).
            7 => {
                let token: Vec<u8> = if dict.is_empty() {
                    let n = self.rng.gen_range(1..=8usize);
                    (0..n)
                        .map(|_| self.rng.gen_range(0x20..0x7fu32) as u8)
                        .collect()
                } else {
                    dict[self.rng.gen_range(0..dict.len())].to_vec()
                };
                let at = self.rng.gen_range(0..=buf.len());
                buf.splice(at..at, token);
            }
            // Dictionary token overwrite.
            _ => {
                let token = if dict.is_empty() {
                    &[b'0'][..]
                } else {
                    dict[self.rng.gen_range(0..dict.len())]
                };
                let i = self.rng.gen_range(0..buf.len());
                for (k, b) in token.iter().enumerate() {
                    if i + k < buf.len() {
                        buf[i + k] = *b;
                    }
                }
            }
        }
    }

    /// Uniform pick of a pool index (exposed so the driver's pool
    /// selection rides the same deterministic stream).
    pub fn pick(&mut self, len: usize) -> usize {
        self.rng.gen_range(0..len)
    }
}

/// Recomputes the FNV-1a 64 trailer over `buf[..len-8]` and patches it
/// into the last 8 bytes — the trailer-fixing mutator. Without it,
/// virtually every mutant dies at the outer integrity check and the
/// inner field parsers (the actual attack surface once a forged file
/// carries a valid trailer) never see hostile values.
pub fn fix_trailer(buf: &mut [u8]) {
    if buf.len() < 8 {
        return;
    }
    let body_len = buf.len() - 8;
    let mut fnv = Fnv1a64::new();
    fnv.update(&buf[..body_len]);
    let t = fnv.finalize();
    buf[body_len..].copy_from_slice(&t);
}

/// FNV-1a 64 over a byte slice, as a plain u64 — used for corpus
/// content addressing and the run's stream digest.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(bytes);
    u64::from_be_bytes(h.finalize())
}

/// Extends a rolling FNV digest with a length-framed record, so the
/// stream digest distinguishes `["ab","c"]` from `["a","bc"]`.
pub fn fnv64_chain(acc: u64, bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(&acc.to_be_bytes());
    h.update(&(bytes.len() as u64).to_be_bytes());
    h.update(bytes);
    u64::from_be_bytes(h.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let base = b"seed=7,legs=20,crash=0.5";
        let dict: &[&[u8]] = &[b"crash", b"=", b","];
        let mut a = Mutator::new(42);
        let mut b = Mutator::new(42);
        for _ in 0..500 {
            assert_eq!(a.mutate(base, dict, 4096), b.mutate(base, dict, 4096));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let base = vec![0u8; 64];
        let mut a = Mutator::new(1);
        let mut b = Mutator::new(2);
        let streams_equal =
            (0..20).all(|_| a.mutate(&base, &[], 4096) == b.mutate(&base, &[], 4096));
        assert!(!streams_equal);
    }

    #[test]
    fn max_len_is_respected() {
        let base = vec![7u8; 100];
        let mut m = Mutator::new(9);
        for _ in 0..200 {
            assert!(m.mutate(&base, &[], 128).len() <= 128);
        }
    }

    #[test]
    fn fix_trailer_validates() {
        let mut buf = vec![1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];
        fix_trailer(&mut buf);
        let mut h = Fnv1a64::new();
        h.update(&buf[..4]);
        assert_eq!(&buf[4..], &h.finalize());
        // Too-short buffers are left alone rather than panicking.
        let mut tiny = vec![1u8, 2, 3];
        fix_trailer(&mut tiny);
        assert_eq!(tiny, vec![1, 2, 3]);
    }

    #[test]
    fn fnv_chain_is_length_framed() {
        let a = fnv64_chain(fnv64_chain(0, b"ab"), b"c");
        let b = fnv64_chain(fnv64_chain(0, b"a"), b"bc");
        assert_ne!(a, b);
    }
}
