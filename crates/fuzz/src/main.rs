//! The deterministic fuzz driver.
//!
//! ```text
//! cargo run -p vecycle-fuzz --release -- --seed 7 --iters 50000
//! ```
//!
//! Everything printed is a pure function of the flags and the on-disk
//! corpus: no wall-clock, no thread count, no iteration order
//! dependence. Two runs with the same seed produce byte-identical
//! stdout and a byte-identical corpus, which is what lets CI diff them.
//!
//! Exit status: 0 when every target completes with no panics, no
//! allocation-guard trips and no oracle disagreements; 1 when there are
//! findings (each offending input is saved under
//! `target/fuzz-artifacts/`); 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

use vecycle_fuzz::{
    corpus, fuzz_target, replay_corpus, targets, AllocMeter, CountingAlloc, Finding, FindingKind,
};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

struct Options {
    seed: u64,
    iters: u64,
    filter: Vec<String>,
    corpus_root: PathBuf,
    list: bool,
}

fn usage() -> &'static str {
    "usage: vecycle-fuzz [--seed N] [--iters N] [--target NAME]... [--corpus DIR] [--list]\n\
     \n\
     --seed N       PRNG seed; the whole run is a function of it (default 7)\n\
     --iters N      mutants per target (default 50000)\n\
     --target NAME  fuzz only the named target(s); repeatable\n\
     --corpus DIR   corpus root (default: the checked-in fuzz/corpus/)\n\
     --list         list registered targets and exit"
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        seed: 7,
        iters: 50_000,
        filter: Vec::new(),
        corpus_root: corpus::corpus_root(),
        list: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed" => {
                let v = value("--seed")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--iters" => {
                let v = value("--iters")?;
                opts.iters = v
                    .parse()
                    .map_err(|_| format!("bad iteration count {v:?}"))?;
            }
            "--target" => {
                let v = value("--target")?;
                if targets::find_target(&v).is_none() {
                    return Err(format!("unknown target {v:?} (try --list)"));
                }
                opts.filter.push(v);
            }
            "--corpus" => opts.corpus_root = PathBuf::from(value("--corpus")?),
            "--list" => opts.list = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

fn class_line(classes: &std::collections::BTreeMap<&'static str, u64>) -> String {
    classes
        .iter()
        .map(|(c, n)| format!("{c}={n}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn save_artifacts(findings: &[Finding]) -> Vec<String> {
    let dir = PathBuf::from("target/fuzz-artifacts");
    let mut paths = Vec::new();
    if std::fs::create_dir_all(&dir).is_err() {
        return paths;
    }
    for f in findings {
        let kind = match f.kind {
            FindingKind::Panic => "panic",
            FindingKind::AllocGuard => "alloc",
            FindingKind::Oracle => "oracle",
        };
        let name = format!("{}-{kind}-{}", f.target, corpus::entry_name(&f.input));
        let path = dir.join(&name);
        if std::fs::write(&path, &f.input).is_ok() {
            paths.push(path.display().to_string());
        }
    }
    paths
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_options(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("vecycle-fuzz: {msg}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    let selected: Vec<targets::Target> = targets::all_targets()
        .into_iter()
        .filter(|t| opts.filter.is_empty() || opts.filter.iter().any(|f| f == t.name))
        .collect();

    if opts.list {
        for t in &selected {
            println!("{}", t.name);
        }
        return ExitCode::SUCCESS;
    }

    println!(
        "vecycle-fuzz seed={} iters={} targets={} alloc-guard={}",
        opts.seed,
        opts.iters,
        selected.len(),
        if AllocMeter::is_live() {
            "live"
        } else {
            "INERT"
        },
    );

    let mut findings: Vec<Finding> = Vec::new();

    // Phase 1: fuzz every target and fold each discovery into the
    // permanent corpus (content-addressed, so this is idempotent).
    for target in &selected {
        let report = fuzz_target(target, opts.seed, opts.iters);
        for (_class, input) in &report.discovered {
            if let Err(e) = corpus::write_entry(&opts.corpus_root, target.name, input) {
                eprintln!("vecycle-fuzz: cannot write corpus for {}: {e}", target.name);
                return ExitCode::from(2);
            }
        }
        let entries = corpus::load_entries(&opts.corpus_root, target.name)
            .map(|e| e.len())
            .unwrap_or(0);
        println!(
            "fuzz {}: execs={} stream={:016x} corpus={} findings={}",
            report.name,
            report.executions,
            report.stream_digest,
            entries,
            report.findings.len(),
        );
        println!("  {}", class_line(&report.classes));
        findings.extend(report.findings);
    }

    // Phase 2: replay the corpus (pre-existing entries plus everything
    // phase 1 just wrote) through the harness and the oracles.
    for target in &selected {
        match replay_corpus(target, &opts.corpus_root) {
            Ok(report) => {
                println!(
                    "replay {}: entries={} oracle-checked={} oracle-skipped={} stream={:016x} findings={}",
                    report.name,
                    report.entries,
                    report.oracle_checked,
                    report.oracle_skipped,
                    report.stream_digest,
                    report.findings.len(),
                );
                findings.extend(report.findings);
            }
            Err(e) => {
                eprintln!(
                    "vecycle-fuzz: cannot replay corpus for {}: {e}",
                    target.name
                );
                return ExitCode::from(2);
            }
        }
    }

    if findings.is_empty() {
        println!("findings: 0");
        return ExitCode::SUCCESS;
    }
    println!("findings: {}", findings.len());
    let paths = save_artifacts(&findings);
    for (f, path) in findings.iter().zip(&paths) {
        println!("  {} {:?}: {} [{}]", f.target, f.kind, f.detail, path);
    }
    ExitCode::FAILURE
}
