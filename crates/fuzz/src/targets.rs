//! The structured fuzz targets: every parser that will ever see bytes
//! from a disk or a socket.
//!
//! Each target couples a parser entry point with deterministic seed
//! inputs, a grammar dictionary for the mutator, and an outcome
//! classifier. The classifier maps every parse result onto a small
//! fixed set of *outcome classes* (one per distinct accept/reject
//! path); the driver keeps the first input to reach each class as a
//! corpus entry, which is how the corpus stays tiny, meaningful and
//! deterministic — a poor man's coverage signal that needs no
//! instrumentation.

use vecycle_checkpoint::{Checkpoint, CheckpointData, EvictionPolicy};
use vecycle_cli::args::{parse_duration, parse_faults, parse_link, parse_size};
use vecycle_mem::ByteMemory;
use vecycle_sim::chaos::ChaosConfig;
use vecycle_trace::{Fingerprint, Trace};
use vecycle_types::{Bytes, Error, PageCount, PageDigest, SimDuration, SimTime, VmId};

use crate::mutate;

/// One fuzzable parser surface.
pub struct Target {
    /// Stable name: corpus subdirectory, stats label, `--target` filter.
    pub name: &'static str,
    /// Deterministic seed inputs (valid and near-valid by construction).
    pub seeds: fn() -> Vec<Vec<u8>>,
    /// Grammar tokens for dictionary splices.
    pub dict: &'static [&'static [u8]],
    /// Post-mutation fixup (the trailer-fixing mutator).
    pub post: Option<fn(&mut [u8])>,
    /// Runs the parser, returning the outcome class.
    pub run: fn(&[u8]) -> &'static str,
    /// Mutant length cap (large enough for one full page where the
    /// format carries page payloads).
    pub max_len: usize,
}

/// All registered targets, in fixed order (the order is part of the
/// deterministic run: stats print in it, and each target's mutator is
/// seeded from its name, not its position).
pub fn all_targets() -> Vec<Target> {
    vec![
        Target {
            name: "ckpt_raw",
            seeds: checkpoint_seeds,
            dict: BINARY_DICT,
            post: None,
            run: run_checkpoint,
            max_len: 8192,
        },
        Target {
            name: "ckpt_fix",
            seeds: checkpoint_seeds,
            dict: BINARY_DICT,
            post: Some(mutate::fix_trailer),
            run: run_checkpoint,
            max_len: 8192,
        },
        Target {
            name: "trace_raw",
            seeds: trace_seeds,
            dict: BINARY_DICT,
            post: None,
            run: run_trace,
            max_len: 8192,
        },
        Target {
            name: "trace_fix",
            seeds: trace_seeds,
            dict: BINARY_DICT,
            post: Some(mutate::fix_trailer),
            run: run_trace,
            max_len: 8192,
        },
        Target {
            name: "chaos_cfg",
            seeds: || text_seeds(CHAOS_SEEDS),
            dict: CHAOS_DICT,
            post: None,
            run: run_chaos,
            max_len: 512,
        },
        Target {
            name: "evict_policy",
            seeds: || text_seeds(&["oldest", "lru", "largest_first", "staleness_score", ""]),
            dict: EVICT_DICT,
            post: None,
            run: run_evict,
            max_len: 128,
        },
        Target {
            name: "bytes_size",
            seeds: || text_seeds(&["4GiB", "512MiB", "64KiB", "100B", "4096", "0"]),
            dict: SIZE_DICT,
            post: None,
            run: run_bytes,
            max_len: 128,
        },
        Target {
            name: "cli_size",
            seeds: || text_seeds(&["4GiB", "512MiB", "18446744073709551615", "1B"]),
            dict: SIZE_DICT,
            post: None,
            run: run_cli_size,
            max_len: 128,
        },
        Target {
            name: "cli_link",
            seeds: || text_seeds(&["lan", "wan", "wan:0.5%", "wan:10"]),
            dict: LINK_DICT,
            post: None,
            run: run_cli_link,
            max_len: 128,
        },
        Target {
            name: "cli_duration",
            seeds: || text_seeds(&["16h", "2d", "0h", "100000d"]),
            dict: DURATION_DICT,
            post: None,
            run: run_cli_duration,
            max_len: 128,
        },
        Target {
            name: "cli_faults",
            seeds: || text_seeds(FAULT_SEEDS),
            dict: FAULT_DICT,
            post: None,
            run: run_cli_faults,
            max_len: 512,
        },
    ]
}

/// Looks a target up by name.
pub fn find_target(name: &str) -> Option<Target> {
    all_targets().into_iter().find(|t| t.name == name)
}

// ---------------------------------------------------------------- seeds

fn checkpoint_seeds() -> Vec<Vec<u8>> {
    let mut seeds = Vec::new();
    // Digest checkpoint with a mix of distinct, repeated and zero pages
    // (exercises every classifier arm downstream).
    let mut digests: Vec<PageDigest> = (0..48u64)
        .map(|i| PageDigest::from_content_id(1 + i % 19))
        .collect();
    digests[7] = PageDigest::ZERO_PAGE;
    digests[23] = PageDigest::ZERO_PAGE;
    let cp = Checkpoint::from_parts(
        VmId::new(3),
        SimTime::EPOCH + SimDuration::from_hours(2),
        CheckpointData::Digests(digests),
    )
    .expect("digest payload is valid");
    let mut buf = Vec::new();
    cp.write_to(&mut buf).expect("vec write cannot fail");
    seeds.push(buf);

    // Zero-page-count digest checkpoint: the smallest valid file.
    let empty = Checkpoint::from_parts(
        VmId::new(0),
        SimTime::EPOCH,
        CheckpointData::Digests(Vec::new()),
    )
    .expect("empty payload is valid");
    let mut buf = Vec::new();
    empty.write_to(&mut buf).expect("vec write cannot fail");
    seeds.push(buf);

    // Single-page full-byte checkpoint.
    let mem = ByteMemory::with_distinct_content(PageCount::new(1), 11);
    let pages = Checkpoint::capture_bytes(VmId::new(9), SimTime::EPOCH, &mem);
    let mut buf = Vec::new();
    pages.write_to(&mut buf).expect("vec write cannot fail");
    seeds.push(buf);

    seeds
}

fn trace_seeds() -> Vec<Vec<u8>> {
    let mut seeds = Vec::new();
    let fp = |at_hours: u64, ids: &[u64]| {
        Fingerprint::new(
            SimTime::EPOCH + SimDuration::from_hours(at_hours),
            ids.iter()
                .map(|&i| PageDigest::from_content_id(i))
                .collect(),
        )
    };
    let trace = Trace::from_parts(
        Bytes::from_pages(8),
        vec![
            fp(0, &[1, 2, 3, 4, 5, 6, 7, 8]),
            fp(6, &[1, 2, 3, 4, 0, 6, 7, 99]),
            fp(12, &[1, 2, 3, 4, 0, 0, 77, 99]),
        ],
    );
    let mut buf = Vec::new();
    trace.write_to(&mut buf).expect("vec write cannot fail");
    seeds.push(buf);

    // Empty trace (zero fingerprints).
    let empty = Trace::from_parts(Bytes::from_pages(4), Vec::new());
    let mut buf = Vec::new();
    empty.write_to(&mut buf).expect("vec write cannot fail");
    seeds.push(buf);

    seeds
}

fn text_seeds(strs: &[&str]) -> Vec<Vec<u8>> {
    strs.iter().map(|s| s.as_bytes().to_vec()).collect()
}

const CHAOS_SEEDS: &[&str] = &[
    "seed=7,legs=50,crash=0.1,pressure=0.2",
    "seed=42,legs=200,hosts=4,crash=0.15,pressure=0.4,corrupt=0.1,drop=0.1,loss=0.05",
    "",
];

const FAULT_SEEDS: &[&str] = &[
    "seed=7,drop=0.3,corrupt=0.1",
    "crash=1,spike=0.5,degrade=0.25,hostcrash=0.2",
    "",
];

// ----------------------------------------------------------- dictionaries

const BINARY_DICT: &[&[u8]] = &[
    b"VECYCHK1",
    b"VECYTRC1",
    &[0, 0, 0, 0, 0, 0, 0, 0],
    &[0xff; 8],
    &[0, 0, 0, 0, 0, 0, 16, 0],
];

const CHAOS_DICT: &[&[u8]] = &[
    b"seed",
    b"legs",
    b"hosts",
    b"crash",
    b"pressure",
    b"corrupt",
    b"drop",
    b"loss",
    b"=",
    b",",
    b"0.5",
    b"1e300",
    b"-1",
    b"NaN",
    b"inf",
    b"0",
    b"18446744073709551616",
];

const EVICT_DICT: &[&[u8]] = &[
    b"oldest",
    b"lru",
    b"largest",
    b"staleness",
    b"_first",
    b"_by_recycle",
    b"_score",
];

const SIZE_DICT: &[&[u8]] = &[
    b"GiB",
    b"MiB",
    b"KiB",
    b"B",
    b"0",
    b"9",
    b"18446744073709551615",
    b"-",
    b" ",
    b"GB",
];

const LINK_DICT: &[&[u8]] = &[b"lan", b"wan", b"wan:", b"%", b"0.5", b"100", b"-1", b"NaN"];

const DURATION_DICT: &[&[u8]] = &[b"h", b"d", b"0", b"9", b"18446744073709551615", b"-1", b" "];

const FAULT_DICT: &[&[u8]] = &[
    b"seed",
    b"drop",
    b"degrade",
    b"corrupt",
    b"spike",
    b"crash",
    b"hostcrash",
    b"=",
    b",",
    b"0.5",
    b"2.0",
    b"-0.0",
    b"NaN",
    b"1e-300",
];

// ------------------------------------------------------------ classifiers

fn corrupt_class(detail: &str, table: &[(&str, &'static str)]) -> &'static str {
    for (needle, class) in table {
        if detail.contains(needle) {
            return class;
        }
    }
    "err_other"
}

fn run_checkpoint(input: &[u8]) -> &'static str {
    match Checkpoint::read_from(input) {
        Ok(cp) => match cp.data() {
            CheckpointData::Digests(_) => "ok_digests",
            CheckpointData::Pages(_) => "ok_pages",
        },
        Err(Error::Corrupt { detail }) => corrupt_class(
            &detail,
            &[
                ("too short", "err_short"),
                ("trailer checksum", "err_trailer"),
                ("magic", "err_magic"),
                ("version", "err_version"),
                ("kind", "err_kind"),
                ("overflows", "err_overflow"),
                ("payload length", "err_payload_len"),
                ("page-aligned", "err_align"),
            ],
        ),
        Err(_) => "err_io",
    }
}

fn run_trace(input: &[u8]) -> &'static str {
    match Trace::read_from(input) {
        Ok(_) => "ok",
        Err(Error::Corrupt { detail }) => corrupt_class(
            &detail,
            &[
                ("too short", "err_short"),
                ("trailer checksum", "err_trailer"),
                ("magic", "err_magic"),
                ("fingerprint count", "err_count"),
                ("overflows", "err_overflow"),
                ("truncated mid-record", "err_truncated"),
                ("length overflow", "err_pos_overflow"),
                ("trailing bytes", "err_trailing"),
            ],
        ),
        Err(_) => "err_io",
    }
}

fn run_chaos(input: &[u8]) -> &'static str {
    let s = String::from_utf8_lossy(input);
    match ChaosConfig::parse(&s) {
        Ok(_) => "ok",
        Err(Error::InvalidConfig { reason }) => corrupt_class(
            &reason,
            &[
                ("given twice", "err_dup"),
                ("is not key=value", "err_pair"),
                ("outside [0, 1]", "err_rate_range"),
                ("is not a number", "err_rate_nan"),
                ("seed", "err_seed"),
                ("legs must be", "err_legs_zero"),
                ("legs", "err_legs"),
                ("at least 2 hosts", "err_hosts_few"),
                ("hosts", "err_hosts"),
                ("unknown chaos key", "err_unknown"),
            ],
        ),
        Err(_) => "err_other",
    }
}

fn run_evict(input: &[u8]) -> &'static str {
    let s = String::from_utf8_lossy(input);
    match EvictionPolicy::parse(&s) {
        Some(EvictionPolicy::OldestFirst) => "ok_oldest",
        Some(EvictionPolicy::LruByRecycle) => "ok_lru",
        Some(EvictionPolicy::LargestFirst) => "ok_largest",
        Some(EvictionPolicy::StalenessScore) => "ok_staleness",
        None => "err_unknown",
    }
}

fn run_bytes(input: &[u8]) -> &'static str {
    let s = String::from_utf8_lossy(input);
    match Bytes::parse(&s) {
        Ok(_) => "ok",
        Err(Error::InvalidConfig { reason }) => corrupt_class(
            &reason,
            &[
                ("overflows", "err_overflow"),
                ("cannot parse size", "err_parse"),
            ],
        ),
        Err(_) => "err_other",
    }
}

fn run_cli_size(input: &[u8]) -> &'static str {
    let s = String::from_utf8_lossy(input);
    match parse_size(&s) {
        Ok(_) => "ok",
        Err(e) if e.contains("overflows") => "err_overflow",
        Err(_) => "err_parse",
    }
}

fn run_cli_link(input: &[u8]) -> &'static str {
    let s = String::from_utf8_lossy(input);
    match parse_link(&s) {
        Ok(_) if s.starts_with("wan:") => "ok_lossy",
        Ok(_) => "ok_named",
        Err(e) if e.contains("cannot parse loss") => "err_loss_nan",
        Err(e) if e.contains("out of range") => "err_loss_range",
        Err(_) => "err_unknown",
    }
}

fn run_cli_duration(input: &[u8]) -> &'static str {
    let s = String::from_utf8_lossy(input);
    match parse_duration(&s) {
        Ok(_) if s.ends_with('h') => "ok_hours",
        Ok(_) => "ok_days",
        Err(e) if e.contains("hours") => "err_hours",
        Err(e) if e.contains("days") => "err_days",
        Err(_) => "err_suffix",
    }
}

fn run_cli_faults(input: &[u8]) -> &'static str {
    let s = String::from_utf8_lossy(input);
    match parse_faults(&s) {
        Ok(_) => "ok",
        Err(e) if e.contains("given twice") => "err_dup",
        Err(e) if e.contains("is not key=value") => "err_pair",
        Err(e) if e.contains("out of [0, 1]") => "err_rate_range",
        Err(e) if e.contains("fault rate") => "err_rate_nan",
        Err(e) if e.contains("fault seed") => "err_seed",
        Err(e) if e.contains("unknown fault") => "err_unknown",
        Err(_) => "err_other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_hit_their_ok_classes() {
        for seed in checkpoint_seeds() {
            assert!(
                run_checkpoint(&seed).starts_with("ok_"),
                "checkpoint seed rejected"
            );
        }
        for seed in trace_seeds() {
            assert_eq!(run_trace(&seed), "ok");
        }
        for seed in CHAOS_SEEDS {
            assert_eq!(run_chaos(seed.as_bytes()), "ok");
        }
        for seed in FAULT_SEEDS {
            assert_eq!(run_cli_faults(seed.as_bytes()), "ok");
        }
    }

    #[test]
    fn target_names_are_unique() {
        let targets = all_targets();
        let mut names: Vec<_> = targets.iter().map(|t| t.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), targets.len());
    }

    #[test]
    fn classifier_covers_handcrafted_rejects() {
        assert_eq!(run_checkpoint(b""), "err_short");
        assert_eq!(run_trace(b""), "err_short");
        assert_eq!(run_chaos(b"crash=0.1,crash=0.2"), "err_dup");
        assert_eq!(run_chaos(b"meteor=1"), "err_unknown");
        assert_eq!(run_evict(b"mru"), "err_unknown");
        assert_eq!(run_bytes(b"4GB"), "err_parse");
        assert_eq!(run_cli_link(b"wan:150%"), "err_loss_range");
        assert_eq!(run_cli_duration(b"90m"), "err_suffix");
        assert_eq!(run_cli_faults(b"drop=0.1,drop=0.2"), "err_dup");
    }

    #[test]
    fn find_target_by_name() {
        assert!(find_target("ckpt_fix").is_some());
        assert!(find_target("nope").is_none());
    }
}
