//! The bounded-allocation harness: a counting global allocator plus a
//! per-run meter.
//!
//! A parser that reads an N-byte input has no business requesting
//! memory far beyond N — a declared-length field that sizes an
//! allocation before it is validated against the bytes actually
//! present is exactly the bug class this crate hunts. The fuzz driver
//! (and the corpus-replay tests) install [`CountingAlloc`] as the
//! global allocator and wrap every target invocation in
//! [`AllocMeter::start`] / [`AllocMeter::stop`]; the run fails if the
//! cumulative requested bytes exceed [`alloc_budget`] for the input's
//! length.
//!
//! The meter *observes* rather than denies: returning null from a
//! guarded `alloc` would turn an over-allocation into an immediate
//! process abort (`handle_alloc_error` is not unwinding), destroying
//! the offending input before the driver can save it. Counting the
//! request and failing the target afterwards keeps the harness
//! deterministic and the artifact intact. A truly astronomical
//! request (the pre-fix `pages * PAGE_SIZE` overflow asked for
//! exbibytes) still dies at the system allocator — but that is a
//! crash the fix satellites exist to make unreachable, and the fuzzer
//! treats any abort as a finding anyway.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static REQUESTED: Cell<u64> = const { Cell::new(0) };
    static LARGEST: Cell<u64> = const { Cell::new(0) };
}

/// A [`System`]-backed allocator that counts bytes requested while a
/// thread's [`AllocMeter`] is armed.
///
/// Install in a binary or test crate root:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: vecycle_fuzz::CountingAlloc = vecycle_fuzz::CountingAlloc::new();
/// ```
pub struct CountingAlloc;

impl CountingAlloc {
    /// Creates the allocator (const, for `#[global_allocator]`).
    pub const fn new() -> Self {
        CountingAlloc
    }

    #[inline]
    fn record(size: usize) {
        // `try_with`: allocations during TLS teardown must not panic.
        let _ = ENABLED.try_with(|e| {
            if e.get() {
                let _ = REQUESTED.try_with(|r| r.set(r.get().saturating_add(size as u64)));
                let _ = LARGEST.try_with(|l| l.set(l.get().max(size as u64)));
            }
        });
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

// SAFETY: defers every operation to `System`; the bookkeeping uses
// only thread-local `Cell`s and never allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        CountingAlloc::record(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        CountingAlloc::record(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        CountingAlloc::record(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

/// What one metered region requested from the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Total bytes requested (each `Vec` growth step counts in full).
    pub requested: u64,
    /// Largest single request.
    pub largest: u64,
}

/// Scoped arming of the counting allocator on the current thread.
pub struct AllocMeter;

impl AllocMeter {
    /// Zeroes the counters and starts counting on this thread.
    pub fn start() {
        REQUESTED.with(|r| r.set(0));
        LARGEST.with(|l| l.set(0));
        ENABLED.with(|e| e.set(true));
    }

    /// Stops counting and returns what was requested since
    /// [`AllocMeter::start`].
    pub fn stop() -> AllocStats {
        ENABLED.with(|e| e.set(false));
        AllocStats {
            requested: REQUESTED.with(Cell::get),
            largest: LARGEST.with(Cell::get),
        }
    }

    /// True if [`CountingAlloc`] is actually installed as the global
    /// allocator (the library cannot force this; binaries opt in). Used
    /// by tests to assert the guard is live rather than silently inert.
    pub fn is_live() -> bool {
        AllocMeter::start();
        let probe = std::hint::black_box(Vec::<u8>::with_capacity(1024));
        drop(probe);
        let stats = AllocMeter::stop();
        stats.requested >= 1024
    }
}

/// The allocation budget for parsing an `input_len`-byte input.
///
/// Generous on purpose: parsed structures legitimately cost a small
/// multiple of the wire size (`Vec` headers, growth doubling, the
/// `read_to_end` staging copy), and the guard hunts *asymptotic*
/// misbehaviour — a forged length field turning kilobytes of input
/// into gigabytes of allocation — not constant factors. 8× the input
/// plus 64 KiB of slack is far above any honest parse in this
/// workspace and far below the first interesting forgery.
pub fn alloc_budget(input_len: usize) -> u64 {
    64 * 1024 + 8 * input_len as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_scales_with_input() {
        assert_eq!(alloc_budget(0), 64 * 1024);
        assert_eq!(alloc_budget(1000), 64 * 1024 + 8000);
    }

    #[test]
    fn meter_without_installed_allocator_reads_zero() {
        // The unit-test binary does not install CountingAlloc, so the
        // meter must report an idle (not garbage) reading.
        AllocMeter::start();
        let _v = std::hint::black_box(vec![0u8; 4096]);
        let stats = AllocMeter::stop();
        assert_eq!(stats.requested, 0);
        assert_eq!(stats.largest, 0);
        assert!(!AllocMeter::is_live());
    }
}
