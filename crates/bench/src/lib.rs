//! Shared plumbing for the experiment binaries (`fig1` … `fig8`,
//! `table1`, `ablation`).
//!
//! Every binary accepts:
//!
//! * `--scale <pages-per-GiB>` — trace resolution (default 2048, i.e.
//!   1/512 of real page density; all reported metrics are fractions, so
//!   scale changes noise, not shape);
//! * `--seed <u64>` — generator seed (default 0x7ec);
//! * `--json <path>` — also write an [`ExperimentLog`] JSON file;
//! * `--threads <n>` — worker threads for the migration engine's page
//!   scan (default: `VECYCLE_THREADS` env var, else 1). Thread count is
//!   a pure wall-clock knob: every reported figure is bit-identical at
//!   any setting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use vecycle_analysis::ExperimentLog;
use vecycle_trace::{catalog, Trace, TraceGenerator, TracedMachine};
use vecycle_types::Bytes;

pub use vecycle_analysis as analysis;

pub mod soak;

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Fingerprint pages per GiB of nominal RAM.
    pub pages_per_gib: u64,
    /// Generator seed.
    pub seed: u64,
    /// Optional JSON output path.
    pub json: Option<std::path::PathBuf>,
    /// Page-scan worker threads for the migration engine.
    pub threads: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            pages_per_gib: 1024,
            seed: 0x7ec,
            json: None,
            threads: threads_from_env(),
        }
    }
}

/// The `VECYCLE_THREADS` default, falling back to 1 (sequential) when
/// unset or unparsable.
fn threads_from_env() -> usize {
    std::env::var("VECYCLE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

impl Options {
    /// Parses `--scale`, `--seed`, `--json` and `--threads` from
    /// `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments — these are
    /// developer-facing experiment binaries.
    pub fn from_args() -> Self {
        let mut opts = Options::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut grab = |what: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{what} requires a value"))
            };
            match arg.as_str() {
                "--scale" => {
                    opts.pages_per_gib = grab("--scale").parse().expect("--scale: integer")
                }
                "--seed" => opts.seed = grab("--seed").parse().expect("--seed: integer"),
                "--json" => opts.json = Some(grab("--json").into()),
                "--threads" => {
                    opts.threads = grab("--threads").parse().expect("--threads: integer")
                }
                other => {
                    panic!("unknown argument {other}; known: --scale --seed --json --threads")
                }
            }
        }
        assert!(opts.pages_per_gib > 0, "--scale must be positive");
        assert!(opts.threads > 0, "--threads must be positive");
        opts
    }

    /// The scaled page count for a machine with `ram` of nominal RAM.
    pub fn scaled_pages(&self, ram: Bytes) -> u64 {
        (ram.as_gib_f64() * self.pages_per_gib as f64)
            .round()
            .max(64.0) as u64
    }

    /// Generates the trace for one cataloged machine at this scale.
    ///
    /// # Panics
    ///
    /// Panics if the calibrated profile fails validation (a bug).
    pub fn trace_for(&self, machine: &TracedMachine) -> Trace {
        TraceGenerator::new(
            machine.profile.clone(),
            self.seed ^ u64::from(machine.id.as_u32()),
        )
        .scale_pages(self.scaled_pages(machine.ram()))
        .generate()
        .expect("catalog profiles validate")
    }

    /// Writes the log if `--json` was given, reporting the path.
    pub fn finish(&self, log: &ExperimentLog) {
        if let Some(path) = &self.json {
            log.write_json_file(path).expect("writing experiment log");
            println!("\n[experiment log written to {}]", path.display());
        }
    }
}

/// Looks up a machine by its figure name ("Server A", ...).
///
/// # Panics
///
/// Panics if the name is not in the catalog.
pub fn machine(name: &str) -> TracedMachine {
    catalog()
        .into_iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("no machine named {name}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_pages_tracks_ram() {
        let o = Options::default();
        assert_eq!(o.scaled_pages(Bytes::from_gib(1)), 1024);
        assert_eq!(o.scaled_pages(Bytes::from_gib(8)), 8192);
        // Floors at 64 pages for tiny scales.
        let small = Options {
            pages_per_gib: 1,
            ..Options::default()
        };
        assert_eq!(small.scaled_pages(Bytes::from_gib(1)), 64);
    }

    #[test]
    fn default_threads_is_sequential_without_env() {
        if std::env::var_os("VECYCLE_THREADS").is_none() {
            assert_eq!(Options::default().threads, 1);
        }
    }

    #[test]
    fn machine_lookup() {
        assert_eq!(machine("Server C").ram(), Bytes::from_gib(8));
    }

    #[test]
    #[should_panic(expected = "no machine named")]
    fn unknown_machine_panics() {
        let _ = machine("Server Z");
    }
}
