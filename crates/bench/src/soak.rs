//! The chaos soak harness: drives a [`ChaosScenario`] against a real
//! cluster and checks cluster-wide invariants after every leg.
//!
//! The scenario (from `vecycle-sim`) is abstract; this module is the
//! translation layer. Each [`ChaosAction`] becomes concrete machinery:
//!
//! | action | realisation |
//! |---|---|
//! | `HostCrash` | [`FaultKind::HostCrash`] — destination dies mid-transfer, restarts from its scrubbed disk store |
//! | `DiskPressure` | filler checkpoints saved at the destination, squeezing the quota so the eviction policy must choose victims |
//! | `CorruptCheckpoint` | [`FaultKind::CheckpointCorrupt`], or — when the leg also crashes — real on-disk byte rot the restart scrub must quarantine |
//! | `LinkDrop` | [`FaultKind::LinkDrop`] |
//! | `LinkLoss` | [`FaultKind::LinkDegrade`] with the factor the netem TCP loss model assigns to that loss probability |
//!
//! After every leg the harness asserts the survivability invariants (no
//! quota overrun, disk ≡ catalog, tombstones stay dead, injected faults
//! never produce a `Failed` outcome) and at the end reconciles the three
//! wire accountings (engine counters, net counters, report ledgers).
//! Violations are *collected*, not panicked, so a soak reports every
//! broken invariant of a bad run at once.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use vecycle_checkpoint::{Checkpoint, EvictionPolicy};
use vecycle_core::session::{SessionEvent, VeCycleSession, VmInstance};
use vecycle_core::{MigrationEngine, MigrationOutcome, MigrationReport};
use vecycle_faults::{DropPoint, FaultKind, FaultPlan};
use vecycle_host::{Cluster, Host};
use vecycle_mem::{workload::GuestWorkload, workload::IdleWorkload, DigestMemory, Guest};
use vecycle_net::{LinkSpec, Netem};
use vecycle_obs::{MetricsRegistry, MetricsSnapshot};
use vecycle_sim::chaos::{ChaosAction, ChaosConfig, ChaosScenario};
use vecycle_types::{Bytes, HostId, SimTime, VmId, PAGE_SIZE};

/// Everything a soak run needs beyond the scenario itself.
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// The chaos configuration (seed, legs, hosts, rates).
    pub config: ChaosConfig,
    /// Worker threads for the engine's page scan. A pure wall-clock
    /// knob: the report is bit-identical at any setting.
    pub threads: usize,
    /// Main VM RAM size.
    pub ram: Bytes,
    /// Per-host checkpoint byte quota.
    pub quota: Bytes,
    /// Eviction policy under pressure.
    pub policy: EvictionPolicy,
    /// Root directory for the per-host durable stores. Must be empty or
    /// absent; see [`fresh_soak_dir`].
    pub disk_root: PathBuf,
}

impl SoakOptions {
    /// Sensible soak defaults for `config`: 64 MiB VM, a quota holding
    /// ~2.5 checkpoints (so pressure bites), oldest-first eviction, one
    /// thread, stores under a process-scoped temp dir.
    pub fn new(config: ChaosConfig) -> SoakOptions {
        let ram = Bytes::from_mib(64);
        // A digest checkpoint stores 16 bytes per page.
        let checkpoint = Bytes::new(ram.pages_ceil().as_u64() * 16);
        SoakOptions {
            config,
            threads: 1,
            ram,
            quota: Bytes::new(checkpoint.as_u64() * 5 / 2),
            policy: EvictionPolicy::OldestFirst,
            disk_root: fresh_soak_dir(&format!("seed{}", config.seed)),
        }
    }
}

/// Creates (after removing any stale copy) a process-scoped scratch
/// directory for a soak's durable stores.
pub fn fresh_soak_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vecycle-soak-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// What a soak run produced: outcome counts, the incident transcript,
/// lifecycle totals, the canonical metrics snapshot — and every
/// invariant violation found (an empty list is the pass criterion).
#[derive(Debug)]
pub struct SoakReport {
    /// Migration legs actually run (excludes skipped no-op legs).
    pub legs_run: usize,
    /// Legs skipped because the VM was already at the destination.
    pub skipped: usize,
    /// Legs that completed first try.
    pub completed: usize,
    /// Legs that completed after at least one retry.
    pub retried: usize,
    /// Legs that degraded to a full transfer.
    pub fell_back: usize,
    /// Legs that exhausted every attempt (must be 0 for injected faults).
    pub failed: usize,
    /// Invariant violations, in detection order. Empty = the soak passed.
    pub violations: Vec<String>,
    /// Quota evictions across all hosts (`ckpt_evictions_total`).
    pub evictions: u64,
    /// Host restarts (`host_restarts_total`).
    pub restarts: u64,
    /// Checkpoints quarantined by scrub passes.
    pub quarantined: u64,
    /// The incident transcript, rendered (for thread-invariance diffs).
    pub events: Vec<String>,
    /// Canonical metrics JSON — byte-comparable across runs.
    pub metrics_json: String,
    /// Useful source→destination traffic summed over all legs.
    pub total_traffic: Bytes,
    /// Traffic burned on aborted attempts.
    pub wasted_traffic: Bytes,
}

impl SoakReport {
    /// One-line summary for logs and CI output.
    pub fn summary(&self) -> String {
        format!(
            "{} legs ({} skipped): {} ok, {} retried, {} fell back, {} failed; \
             {} evictions, {} restarts, {} quarantined; {} violations",
            self.legs_run,
            self.skipped,
            self.completed,
            self.retried,
            self.fell_back,
            self.failed,
            self.evictions,
            self.restarts,
            self.quarantined,
            self.violations.len(),
        )
    }
}

/// Folds one counter family into a `labels -> value` map so two
/// families can be compared series-by-series.
fn family(snap: &MetricsSnapshot, name: &str) -> BTreeMap<Vec<(String, String)>, u64> {
    snap.counters_named(name)
        .map(|c| (c.labels.clone(), c.value))
        .collect()
}

/// Sums one counter family filtered to a single direction label.
fn direction_total(snap: &MetricsSnapshot, name: &str, direction: &str) -> u64 {
    snap.counters_named(name)
        .filter(|c| {
            c.labels
                .iter()
                .any(|(k, v)| k == "direction" && v == direction)
        })
        .map(|c| c.value)
        .sum()
}

/// Flips one payload byte of `vm`'s checkpoint file at `host`, if it has
/// one — real on-disk rot for the restart scrub to find. Returns whether
/// a file was rotted.
fn rot_checkpoint_file(host: &Host, vm: VmId) -> vecycle_types::Result<bool> {
    let Some(ds) = host.disk_store() else {
        return Ok(false);
    };
    let path = ds.root().join(format!("vm-{}.ckpt", vm.as_u32()));
    let Ok(mut bytes) = std::fs::read(&path) else {
        return Ok(false);
    };
    if bytes.len() < 64 {
        return Ok(false);
    }
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, bytes).map_err(vecycle_types::Error::Io)?;
    Ok(true)
}

/// Converts a netem loss probability into the bandwidth factor the
/// engine's `LinkDegrade` fault applies: the ratio of lossy to clean
/// effective throughput on the reference WAN link.
fn loss_factor(probability: f64) -> f64 {
    let base = LinkSpec::wan_cloudnet();
    let lossy = Netem::new().loss(probability).apply(base);
    let clean = base.effective_bandwidth().as_f64();
    let degraded = lossy.effective_bandwidth().as_f64();
    (degraded / clean).clamp(0.01, 1.0)
}

/// Builds the [`FaultPlan`] for `scenario`. Legs in `rot` (both corrupt
/// *and* crash armed) skip the `CheckpointCorrupt` injection — their
/// corruption is real file rot applied just before the leg, so the
/// restart's scrub pass is what discovers it.
fn fault_plan(scenario: &ChaosScenario, rot: &BTreeSet<usize>) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for (idx, leg) in scenario.legs.iter().enumerate() {
        for action in &leg.actions {
            plan = match *action {
                // On rot legs the crash must actually strike — the whole
                // point is the restart scrub finding the rotted file —
                // so cut almost immediately instead of at a RAM fraction
                // the (possibly tiny, recycled) transfer may never reach.
                ChaosAction::HostCrash { .. } if rot.contains(&idx) => plan.inject(
                    idx,
                    FaultKind::HostCrash {
                        after: DropPoint::Bytes(Bytes::new(4096)),
                        attempts: 1,
                    },
                ),
                ChaosAction::HostCrash { ram_fraction } => plan.inject(
                    idx,
                    FaultKind::HostCrash {
                        after: DropPoint::RamFraction(ram_fraction),
                        attempts: 1,
                    },
                ),
                ChaosAction::LinkDrop { ram_fraction } => plan.inject(
                    idx,
                    FaultKind::LinkDrop {
                        after: DropPoint::RamFraction(ram_fraction),
                        attempts: 1,
                    },
                ),
                ChaosAction::CorruptCheckpoint if rot.contains(&idx) => plan,
                ChaosAction::CorruptCheckpoint => plan.inject(idx, FaultKind::CheckpointCorrupt),
                ChaosAction::LinkLoss { probability } => plan.inject(
                    idx,
                    FaultKind::LinkDegrade {
                        factor: loss_factor(probability),
                        from_round: 1,
                    },
                ),
                ChaosAction::DiskPressure { .. } => plan,
            };
        }
    }
    plan
}

/// Runs the full soak: build the cluster, translate the scenario, drive
/// every leg, check invariants after each, reconcile the wire
/// accountings at the end.
///
/// Injected faults are expected and recovered from; only infrastructure
/// problems (I/O failures, unknown hosts) surface as `Err`.
///
/// # Errors
///
/// Propagates disk-store I/O errors and session-level non-fault errors.
pub fn run_soak(opts: &SoakOptions) -> vecycle_types::Result<SoakReport> {
    let scenario = ChaosScenario::generate(&opts.config);
    let metrics = MetricsRegistry::new();

    let cluster = Cluster::homogeneous(opts.config.hosts as u32, LinkSpec::lan_gigabit())
        .attach_disk_stores(&opts.disk_root)?
        .with_checkpoint_quotas(opts.quota, opts.policy);
    let engine = MigrationEngine::new(cluster.link()).with_threads(opts.threads);
    let session = VeCycleSession::new(cluster)
        .with_engine(engine)
        .with_metrics(metrics.clone());

    let mem = DigestMemory::with_uniform_content(opts.ram, opts.config.seed)?;
    let mut vm = VmInstance::new(VmId::new(0), Guest::new(mem), HostId::new(0));
    let pages = opts.ram.pages_ceil().as_u64();
    // ~5% of pages touched per hour of gap, like the failure sweep.
    let mut workload = IdleWorkload::new(opts.config.seed ^ 1, pages as f64 * 0.05 / 3600.0);

    // Legs where corruption is realised as on-disk rot (scrub coverage)
    // rather than an injected load failure: those that also crash.
    let rot: BTreeSet<usize> = scenario
        .legs
        .iter()
        .enumerate()
        .filter(|(_, leg)| {
            let crash = leg
                .actions
                .iter()
                .any(|a| matches!(a, ChaosAction::HostCrash { .. }));
            crash
                && leg
                    .actions
                    .iter()
                    .any(|a| matches!(a, ChaosAction::CorruptCheckpoint))
        })
        .map(|(idx, _)| idx)
        .collect();
    let plan = fault_plan(&scenario, &rot);
    vecycle_faults::observe_plan(&metrics, &plan);

    let mut report = SoakReport {
        legs_run: 0,
        skipped: 0,
        completed: 0,
        retried: 0,
        fell_back: 0,
        failed: 0,
        violations: Vec::new(),
        evictions: 0,
        restarts: 0,
        quarantined: 0,
        events: Vec::new(),
        metrics_json: String::new(),
        total_traffic: Bytes::ZERO,
        wasted_traffic: Bytes::ZERO,
    };
    let mut events: Vec<SessionEvent> = Vec::new();
    let mut reports: Vec<MigrationReport> = Vec::new();
    let mut known_vms: BTreeSet<VmId> = BTreeSet::new();
    known_vms.insert(vm.id());
    let mut filler_seq = 0u32;
    let mut clock = SimTime::EPOCH;

    for (idx, leg) in scenario.legs.iter().enumerate() {
        clock += leg.gap;
        workload.advance(vm.guest_mut(), leg.gap);
        let to = HostId::new(leg.dest as u32);
        if to == vm.location() {
            report.skipped += 1;
            continue;
        }
        let dest = session
            .cluster()
            .host(to)
            .expect("scenario destinations are cluster hosts")
            .clone();

        // Pre-leg chaos: disk pressure and (on rot legs) real file rot.
        for action in &leg.actions {
            if let ChaosAction::DiskPressure { quota_fraction } = *action {
                // Filler checkpoints worth `quota_fraction` of the
                // budget: each filler VM's digest checkpoint stores 16
                // bytes per page.
                let filler_bytes = (opts.quota.as_u64() as f64 * quota_fraction) as u64;
                let filler_ram = Bytes::new((filler_bytes / 16).max(1) * PAGE_SIZE);
                let filler_id = VmId::new(100 + filler_seq);
                filler_seq += 1;
                known_vms.insert(filler_id);
                let filler_mem = DigestMemory::with_uniform_content(
                    filler_ram,
                    opts.config.seed ^ u64::from(filler_seq),
                )?;
                let cp = Checkpoint::capture(filler_id, clock, &filler_mem);
                let outcome = dest.save_checkpoint(cp)?;
                vecycle_host::observe_save(&metrics, &dest, &outcome);
            }
        }
        if rot.contains(&idx) {
            rot_checkpoint_file(&dest, vm.id())?;
        }

        let fetch_gone_before = metrics
            .counter("session_checkpoint_fetch_total", &[("result", "evicted")])
            + metrics.counter(
                "session_checkpoint_fetch_total",
                &[("result", "quarantined")],
            );
        let leg_report = session.migrate_with_faults(
            &mut vm,
            to,
            clock,
            &mut workload,
            &plan,
            idx,
            &mut events,
        )?;
        let fetch_gone_after = metrics
            .counter("session_checkpoint_fetch_total", &[("result", "evicted")])
            + metrics.counter(
                "session_checkpoint_fetch_total",
                &[("result", "quarantined")],
            );
        report.legs_run += 1;

        match leg_report.outcome() {
            MigrationOutcome::Completed => report.completed += 1,
            MigrationOutcome::CompletedAfterRetries { .. } => report.retried += 1,
            MigrationOutcome::FellBackToFull { .. } => report.fell_back += 1,
            MigrationOutcome::Failed { .. } => report.failed += 1,
        }
        if matches!(leg_report.outcome(), MigrationOutcome::Failed { .. }) {
            report.violations.push(format!(
                "leg {idx}: outcome Failed — injected faults must always be survivable"
            ));
        }
        if fetch_gone_after > fetch_gone_before
            && matches!(leg_report.outcome(), MigrationOutcome::Completed)
        {
            report.violations.push(format!(
                "leg {idx}: fetched an evicted/quarantined tombstone yet reported a clean \
                 Completed outcome"
            ));
        }
        reports.push(leg_report);

        check_cluster_invariants(&session, opts, &known_vms, idx, &mut report.violations);

        // Engine counters may only ever lead net counters (by wasted
        // attempts), never trail them.
        let snap = metrics.snapshot();
        let engine_bytes = snap.counter_total("engine_wire_bytes_total");
        let net_bytes = snap.counter_total("net_wire_bytes_total");
        if engine_bytes < net_bytes {
            report.violations.push(format!(
                "leg {idx}: net accounting ({net_bytes}) exceeds engine accounting \
                 ({engine_bytes})"
            ));
        }
    }

    // End-of-run reconciliation: the three wire accountings.
    let snap = metrics.snapshot();
    let wasted: u64 = reports.iter().map(|r| r.wasted_traffic().as_u64()).sum();
    // Wasted traffic is forward-path bytes of aborted attempts, so the
    // exact reconciliation is per direction: forward, the engine leads
    // the net side by exactly the waste; reverse, it may lead by the
    // aborted attempts' (unreported) digest requests but never trail.
    let engine_fwd = direction_total(&snap, "engine_wire_bytes_total", "forward");
    let net_fwd = direction_total(&snap, "net_wire_bytes_total", "forward");
    if engine_fwd != net_fwd + wasted {
        report.violations.push(format!(
            "wire accounting: engine forward {engine_fwd} != net forward {net_fwd} + wasted \
             {wasted}"
        ));
    }
    let engine_rev = direction_total(&snap, "engine_wire_bytes_total", "reverse");
    let net_rev = direction_total(&snap, "net_wire_bytes_total", "reverse");
    if engine_rev < net_rev {
        report.violations.push(format!(
            "wire accounting: engine reverse {engine_rev} trails net reverse {net_rev}"
        ));
    }
    let source: u64 = reports.iter().map(|r| r.source_traffic().as_u64()).sum();
    let reverse: u64 = reports.iter().map(|r| r.reverse_traffic().as_u64()).sum();
    if direction_total(&snap, "net_wire_bytes_total", "forward") != source {
        report.violations.push(format!(
            "wire accounting: net forward bytes != report source traffic {source}"
        ));
    }
    if direction_total(&snap, "net_wire_bytes_total", "reverse") != reverse {
        report.violations.push(format!(
            "wire accounting: net reverse bytes != report reverse traffic {reverse}"
        ));
    }
    if family(&snap, "engine_wire_messages_total").is_empty() && report.legs_run > 0 {
        report
            .violations
            .push("wire accounting: no engine messages recorded at all".into());
    }

    report.evictions = snap.counter_total("ckpt_evictions_total");
    report.restarts = snap.counter_total("host_restarts_total");
    report.quarantined = snap.counter(
        "session_events_total",
        &[("event", "checkpoint_quarantined")],
    );
    report.events = events.iter().map(|e| e.to_string()).collect();
    report.metrics_json = snap.to_canonical_json();
    report.total_traffic = reports.iter().map(|r| r.source_traffic()).sum();
    report.wasted_traffic = Bytes::new(wasted);
    Ok(report)
}

/// The per-leg survivability invariants, checked across every host:
/// quota respected, durable store ≡ in-memory catalog, tombstoned VMs
/// really gone.
fn check_cluster_invariants(
    session: &VeCycleSession,
    opts: &SoakOptions,
    known_vms: &BTreeSet<VmId>,
    leg: usize,
    violations: &mut Vec<String>,
) {
    for host in session.cluster().hosts() {
        let store = host.store();
        if store.used() > opts.quota {
            violations.push(format!(
                "leg {leg}: {} holds {} of checkpoints, quota is {}",
                host.id(),
                store.used(),
                opts.quota
            ));
        }
        let mut catalog = store.vm_ids();
        catalog.sort();
        if let Some(ds) = host.disk_store() {
            match ds.vm_ids() {
                Ok(mut on_disk) => {
                    on_disk.sort();
                    if on_disk != catalog {
                        violations.push(format!(
                            "leg {leg}: {} disk files {:?} != catalog {:?}",
                            host.id(),
                            on_disk,
                            catalog
                        ));
                    }
                }
                Err(e) => violations.push(format!(
                    "leg {leg}: {} disk store unreadable: {e}",
                    host.id()
                )),
            }
        }
        for &vm in known_vms {
            if store.gone(vm).is_some() && store.latest(vm).is_some() {
                violations.push(format!(
                    "leg {leg}: {} still serves {vm} despite its tombstone",
                    host.id()
                ));
            }
        }
    }
}
