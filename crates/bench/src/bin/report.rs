//! Merges the JSON logs written by the `fig*`/`ablation`/`extensions`
//! binaries (via `--json`) into one Markdown report.
//!
//! ```sh
//! for b in fig1 fig2 fig4 fig5 fig6 fig7 fig8 ablation extensions; do
//!   cargo run --release -p vecycle-bench --bin $b -- --json results/$b.json
//! done
//! cargo run --release -p vecycle-bench --bin report -- results/*.json > REPORT.md
//! ```

use vecycle_analysis::ExperimentLog;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: report <log.json>...");
        std::process::exit(1);
    }
    let mut merged = ExperimentLog::new();
    for path in &paths {
        let json =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let log =
            ExperimentLog::from_json(&json).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
        for r in log.records() {
            merged.record(
                r.experiment.clone(),
                r.label.clone(),
                r.metric.clone(),
                r.value,
            );
        }
    }
    println!("# VeCycle experiment report\n");
    println!(
        "Merged from {} log file(s), {} records.\n",
        paths.len(),
        merged.records().len()
    );
    print!("{}", merged.render_markdown());
}
