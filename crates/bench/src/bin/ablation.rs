//! Ablations for the design choices DESIGN.md calls out.
//!
//! 1. Checksum algorithm × link speed (§3.4): where does hashing become
//!    the bottleneck?
//! 2. Bulk vs per-page checksum exchange (§3.2).
//! 3. Checkpoint on HDD vs SSD (§4.4): setup changes, migration doesn't.
//! 4. Dirty tracking vs content hashes under page relocation (§4.3).

use vecycle_analysis::{ExperimentLog, Table};
use vecycle_bench::Options;
use vecycle_core::{ExchangeProtocol, MigrationEngine, Strategy};
use vecycle_hash::ChecksumAlgorithm;
use vecycle_host::{CpuSpec, DiskSpec};
use vecycle_mem::{
    workload::{GuestWorkload, RelocationWorkload},
    DigestMemory, Guest,
};
use vecycle_net::{LinkSpec, Netem};
use vecycle_types::{Bytes, BytesPerSec, SimDuration};

fn main() {
    let opts = Options::from_args();
    let mut log = ExperimentLog::new();
    let ram = Bytes::from_gib(2);
    let vm = DigestMemory::with_uniform_content(ram, opts.seed).expect("page-aligned");
    let cp = vm.snapshot();

    // --- 1. Checksum algorithm × link speed -----------------------------
    println!("Ablation 1 — checksum algorithm vs link speed (idle 2 GiB VM)\n");
    let links = [
        ("1 GbE", LinkSpec::lan_gigabit()),
        (
            "10 GbE",
            LinkSpec::lan_gigabit().with_bandwidth(BytesPerSec::from_mib_per_sec(1200)),
        ),
        (
            "40 GbE",
            LinkSpec::lan_gigabit().with_bandwidth(BytesPerSec::from_mib_per_sec(4800)),
        ),
    ];
    let mut t = Table::new(vec![
        "link",
        "algorithm",
        "vecycle time [s]",
        "full time [s]",
    ]);
    for (link_name, link) in links {
        for algo in ChecksumAlgorithm::ALL {
            let engine = MigrationEngine::new(link)
                .with_threads(opts.threads)
                .with_algorithm(algo);
            let r = engine
                .migrate(&vm, Strategy::vecycle(&cp))
                .expect("non-empty");
            let full = engine.migrate(&vm, Strategy::full()).expect("non-empty");
            t.row(vec![
                link_name.into(),
                algo.to_string(),
                format!("{:.2}", r.total_time().as_secs_f64()),
                format!("{:.2}", full.total_time().as_secs_f64()),
            ]);
            log.record(
                "ablation1",
                format!("{link_name}/{algo}"),
                "vecycle_time_s",
                r.total_time().as_secs_f64(),
            );
        }
    }
    print!("{}", t.render());
    println!(
        "On 1 GbE every algorithm beats the wire; at 10/40 GbE the hash\n\
         rate dominates, as §3.4 predicts — \"the migration time will be\n\
         dominated by the checksum rate\".\n"
    );

    // --- 1b. Multi-threaded checksumming (§3.4 future work) ---------------
    println!("Ablation 1b — checksum threads vs a 10 GbE link (2 GiB idle VM)\n");
    let fat = LinkSpec::lan_gigabit().with_bandwidth(BytesPerSec::from_mib_per_sec(1200));
    let full_fat = MigrationEngine::new(fat)
        .migrate(&vm, Strategy::full())
        .expect("non-empty");
    let full_time = full_fat.total_time().as_secs_f64();
    let mut t = Table::new(vec!["threads", "vecycle time [s]", "vs full migration"]);
    for threads in [1u32, 2, 4, 8] {
        let engine = MigrationEngine::new(fat).with_cpu(CpuSpec::phenom_ii().with_threads(threads));
        let r = engine
            .migrate(&vm, Strategy::vecycle(&cp))
            .expect("non-empty");
        let tv = r.total_time().as_secs_f64();
        let verdict = if tv < full_time {
            format!("wins ({:.0}% faster)", (1.0 - tv / full_time) * 100.0)
        } else {
            format!("loses ({:.1}x slower)", tv / full_time)
        };
        t.row(vec![format!("{threads}"), format!("{tv:.2}"), verdict]);
        log.record("ablation1b", format!("threads-{threads}"), "time_s", tv);
    }
    print!("{}", t.render());
    println!("(full migration over 10 GbE: {full_time:.2} s)");
    println!(
        "\"A cheaper checksum, hardware-acceleration, or multi-threaded\n\
         execution are available options to increase the checksum rate\"\n\
         (§3.4): 4 threads re-balance a 10 GbE link.\n"
    );

    // --- 1c. Parallel page scan (wall clock, not simulated) ---------------
    // Unlike 1b's *modeled* checksum threads, this measures the real CPU
    // time the simulator itself spends classifying pages: the sharded
    // first-round scan behind `--threads` / VECYCLE_THREADS.
    println!("Ablation 1c — page-scan worker threads (2 GiB VM, wall clock)\n");
    let mut t = Table::new(vec!["scan threads", "scan wall [ms]", "speedup"]);
    let mut base_ms = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit()).with_threads(threads);
        // Warm-up pass, then the median of three timed scans.
        let _ = engine
            .migrate(&vm, Strategy::vecycle(&cp))
            .expect("non-empty");
        let mut samples: Vec<f64> = (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                let r = engine
                    .migrate(&vm, Strategy::vecycle(&cp))
                    .expect("non-empty");
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                std::hint::black_box(r);
                ms
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        let ms = samples[1];
        if threads == 1 {
            base_ms = ms;
        }
        t.row(vec![
            format!("{threads}"),
            format!("{ms:.1}"),
            format!("{:.2}x", base_ms / ms),
        ]);
        log.record(
            "ablation1c",
            format!("threads-{threads}"),
            "scan_wall_ms",
            ms,
        );
    }
    print!("{}", t.render());
    println!(
        "Identical reports at every thread count (property-tested); only\n\
         the simulator's own scan time changes. See `cargo bench\n\
         parallel_scan` for the 1 GiB criterion run.\n"
    );

    // --- 2. Bulk vs per-page exchange ------------------------------------
    println!("Ablation 2 — checksum exchange protocol (2 GiB idle VM)\n");
    let mut t = Table::new(vec!["link", "protocol", "time [s]", "reverse traffic"]);
    for (link_name, link) in [
        ("lan", LinkSpec::lan_gigabit()),
        ("wan", LinkSpec::wan_cloudnet()),
    ] {
        for (proto_name, proto) in [
            ("bulk", ExchangeProtocol::Bulk),
            (
                "per-page x64",
                ExchangeProtocol::PerPage { pipeline_depth: 64 },
            ),
        ] {
            let engine = MigrationEngine::new(link)
                .with_threads(opts.threads)
                .with_exchange(proto);
            let r = engine
                .migrate(&vm, Strategy::vecycle(&cp))
                .expect("non-empty");
            t.row(vec![
                link_name.into(),
                proto_name.into(),
                format!("{:.1}", r.total_time().as_secs_f64()),
                format!("{}", r.reverse_traffic()),
            ]);
            log.record(
                "ablation2",
                format!("{link_name}/{proto_name}"),
                "time_s",
                r.total_time().as_secs_f64(),
            );
        }
    }
    print!("{}", t.render());
    println!(
        "The per-page protocol pays one pipelined RTT batch per page —\n\
         catastrophic on the WAN, confirming the paper's choice of bulk.\n"
    );

    // --- 3. HDD vs SSD checkpoint storage --------------------------------
    println!("Ablation 3 — checkpoint disk (2 GiB idle VM, LAN)\n");
    let mut t = Table::new(vec!["disk", "setup [s]", "migration [s]"]);
    for (name, disk) in [
        ("hdd", DiskSpec::hdd_samsung_hd204ui()),
        ("ssd", DiskSpec::ssd_intel_330()),
    ] {
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit())
            .with_threads(opts.threads)
            .with_dest_disk(disk);
        let r = engine
            .migrate(&vm, Strategy::vecycle(&cp))
            .expect("non-empty");
        t.row(vec![
            name.into(),
            format!("{:.1}", r.setup().total().as_secs_f64()),
            format!("{:.1}", r.total_time().as_secs_f64()),
        ]);
        log.record(
            "ablation3",
            name,
            "migration_s",
            r.total_time().as_secs_f64(),
        );
        log.record(
            "ablation3",
            name,
            "setup_s",
            r.setup().total().as_secs_f64(),
        );
    }
    print!("{}", t.render());
    println!(
        "Migration time is identical: checkpoint reads happen during\n\
         setup, off the measured path — the paper's §4.4 observation\n\
         (\"storing the checkpoint on SSD instead of HDD had no impact\").\n"
    );

    // --- 4b. Packet loss on the WAN ---------------------------------------
    println!("Ablation 4b — packet loss on the emulated WAN (1 GiB idle VM)\n");
    let small = DigestMemory::with_uniform_content(Bytes::from_gib(1), opts.seed ^ 5)
        .expect("page-aligned");
    let cp_wan = small.snapshot();
    let mut t = Table::new(vec!["loss", "effective bw", "full [s]", "vecycle [s]"]);
    for loss in [0.0, 0.0005, 0.002, 0.01] {
        let link = Netem::new().loss(loss).apply(LinkSpec::wan_cloudnet());
        let engine = MigrationEngine::new(link).with_threads(opts.threads);
        let full = engine.migrate(&small, Strategy::full()).expect("non-empty");
        let re = engine
            .migrate(&small, Strategy::vecycle(&cp_wan))
            .expect("non-empty");
        t.row(vec![
            format!("{:.2}%", loss * 100.0),
            format!("{}", link.effective_bandwidth()),
            format!("{:.0}", full.total_time().as_secs_f64()),
            format!("{:.1}", re.total_time().as_secs_f64()),
        ]);
        log.record(
            "ablation4b",
            format!("loss-{loss}"),
            "full_time_s",
            full.total_time().as_secs_f64(),
        );
    }
    print!("{}", t.render());
    println!(
        "Loss collapses TCP throughput (Mathis model); because VeCycle\n\
         moves two orders of magnitude less data, it degrades gracefully\n\
         where full migrations become impractical.\n"
    );

    // --- 4. Relocation: dirty tracking vs content hashes -----------------
    println!("Ablation 4 — page relocation (64 MiB guest, 2000 moves)\n");
    let mem = DigestMemory::with_uniform_content(Bytes::from_mib(64), opts.seed ^ 9)
        .expect("page-aligned");
    let mut guest = Guest::new(mem);
    let gen_snapshot = guest.generations().snapshot();
    let cp_small = guest.memory().snapshot();
    let mut reloc = RelocationWorkload::new(opts.seed ^ 10, 2000.0);
    reloc.advance(&mut guest, SimDuration::from_secs(1));

    let engine = MigrationEngine::new(LinkSpec::lan_gigabit()).with_threads(opts.threads);
    let dirty_strategy = Strategy::miyakodori(guest.generations(), &gen_snapshot);
    let r_dirty = engine
        .migrate(guest.memory(), dirty_strategy)
        .expect("non-empty");
    let r_hashes = engine
        .migrate(guest.memory(), Strategy::vecycle(&cp_small))
        .expect("non-empty");
    let mut t = Table::new(vec!["method", "pages sent full", "traffic"]);
    for (name, r) in [
        ("dirty (miyakodori)", &r_dirty),
        ("hashes (vecycle)", &r_hashes),
    ] {
        t.row(vec![
            name.into(),
            format!("{}", r.pages_sent_full().as_u64()),
            format!("{}", r.source_traffic()),
        ]);
        log.record(
            "ablation4",
            name,
            "pages_full",
            r.pages_sent_full().as_u64() as f64,
        );
    }
    print!("{}", t.render());
    println!(
        "Relocated pages look dirty to generation counters but their\n\
         content is still in the checkpoint: dirty tracking re-sends\n\
         them, content hashes do not (Figure 3 / §4.3)."
    );
    assert!(
        r_hashes.pages_sent_full() < r_dirty.pages_sent_full(),
        "content hashes must beat dirty tracking under relocation"
    );

    opts.finish(&log);
}
