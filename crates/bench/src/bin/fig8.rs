//! Figure 8: the virtual-desktop-infrastructure scenario (§4.6).
//!
//! A 6 GiB desktop is consolidated onto a server outside office hours:
//! 26 migrations across 13 weekdays (9 am out, 5 pm back). Following the
//! paper's methodology, the benefit is derived analytically from the
//! fingerprint trace: the checkpoint available at each destination is
//! the fingerprint taken when the VM last left that host.

use vecycle_analysis::{ExperimentLog, Table};
use vecycle_bench::{machine, Options};
use vecycle_host::MigrationSchedule;
use vecycle_trace::PairStats;
use vecycle_types::{Bytes, HostId, SimTime, VmId};

fn main() {
    let opts = Options::from_args();
    let mut log = ExperimentLog::new();
    let desktop = machine("Desktop");
    let trace = opts.trace_for(&desktop);
    let fps = trace.fingerprints();
    let ram = desktop.ram();

    let workstation = HostId::new(0);
    let server = HostId::new(1);
    let schedule = MigrationSchedule::vdi(VmId::new(0), workstation, server, 19);
    assert_eq!(schedule.len(), 26, "schedule must match the paper");

    // The fingerprint nearest to a schedule instant.
    let fp_at = |t: SimTime| {
        fps.iter()
            .min_by_key(|f| {
                let a = f.taken_at().since_epoch().as_nanos();
                let b = t.since_epoch().as_nanos();
                a.abs_diff(b)
            })
            .expect("trace is non-empty")
    };

    // Checkpoint state per host: the fingerprint index when the VM last
    // left that host.
    let mut checkpoint_at: [Option<&vecycle_trace::Fingerprint>; 2] = [None, None];
    let mut total_full = Bytes::ZERO;
    let mut total_dedup = Bytes::ZERO;
    let mut total_vecycle = Bytes::ZERO;
    let mut total_dirty_dedup_pages = 0u64;
    let mut total_vecycle_pages = 0u64;

    println!("Figure 8 — VDI scenario, per-migration traffic [% of RAM]\n");
    let mut t = Table::new(vec!["#", "when", "direction", "dedup [%]", "vecycle [%]"]);
    for (i, leg) in schedule.legs().iter().enumerate() {
        let now = fp_at(leg.at);
        let n = now.page_count().as_u64();
        let page_frac = |pages: u64| pages as f64 / n as f64;

        // Sender-side dedup always applies; VeCycle additionally uses the
        // destination's checkpoint when one exists.
        let dedup_pages = now.unique_count().as_u64();
        let dest_slot = leg.to.as_usize();
        let (vecycle_pages, dirty_dedup_pages) = match checkpoint_at[dest_slot] {
            Some(cp) => {
                let stats = PairStats::compute(cp, now);
                (stats.hashes_dedup, stats.dirty_dedup)
            }
            None => (dedup_pages, dedup_pages),
        };

        let full_b = Bytes::new((page_frac(n) * ram.as_f64()) as u64);
        let dedup_b = Bytes::new((page_frac(dedup_pages) * ram.as_f64()) as u64);
        let vecycle_b = Bytes::new((page_frac(vecycle_pages) * ram.as_f64()) as u64);
        total_full += full_b;
        total_dedup += dedup_b;
        total_vecycle += vecycle_b;
        total_dirty_dedup_pages += dirty_dedup_pages;
        total_vecycle_pages += vecycle_pages;

        let hours = leg.at.since_epoch().as_hours_f64();
        let dir = if leg.to == workstation {
            "→ desk"
        } else {
            "→ server"
        };
        t.row(vec![
            format!("{}", i + 1),
            format!("day {} {:02}:00", hours as u64 / 24 + 1, hours as u64 % 24),
            dir.into(),
            format!("{:.0}", page_frac(dedup_pages) * 100.0),
            format!("{:.0}", page_frac(vecycle_pages) * 100.0),
        ]);
        log.record(
            "fig8",
            format!("migration-{}", i + 1),
            "vecycle_traffic_pct",
            page_frac(vecycle_pages) * 100.0,
        );
        log.record(
            "fig8",
            format!("migration-{}", i + 1),
            "dedup_traffic_pct",
            page_frac(dedup_pages) * 100.0,
        );

        // The source host keeps a checkpoint of the departing state.
        checkpoint_at[leg.from.as_usize()] = Some(now);
    }
    print!("{}", t.render());

    let gb = |b: Bytes| b.as_f64() / 1e9;
    println!("\nAggregate traffic over 26 migrations:");
    let mut t = Table::new(vec!["method", "total [GB]", "% of baseline"]);
    for (name, total) in [
        ("full migration", total_full),
        ("sender-side dedup", total_dedup),
        ("vecycle", total_vecycle),
    ] {
        t.row(vec![
            name.into(),
            format!("{:.0}", gb(total)),
            format!("{:.0}%", total.as_f64() / total_full.as_f64() * 100.0),
        ]);
        log.record("fig8", name, "total_gb", gb(total));
    }
    print!("{}", t.render());

    let vs_dirty = (1.0 - total_vecycle_pages as f64 / total_dirty_dedup_pages as f64) * 100.0;
    println!(
        "\nVeCycle transfers {vs_dirty:.0}% fewer pages than dirty tracking\n\
         combined with dedup (paper: 9%)."
    );
    log.record("fig8", "vs_dirty_dedup", "fewer_pages_pct", vs_dirty);

    println!(
        "\nPaper targets: 26 full migrations ≈ 159 GB; dedup ≈ 138 GB (86%);\n\
         VeCycle ≈ 40 GB (25%); first migration is the most expensive\n\
         (no checkpoint to recycle)."
    );
    opts.finish(&log);
}
