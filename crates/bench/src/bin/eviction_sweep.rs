//! Eviction sweep: how much of VeCycle's traffic reduction survives as
//! the checkpoint quota shrinks, per eviction policy.
//!
//! A pressure-only chaos run (no crashes, no corruption — just
//! background checkpoints squeezing the budget) repeats across quota
//! multiples of the VM's checkpoint size and all four eviction
//! policies. Reported per cell: useful traffic, legs that fell back to
//! a full transfer because their checkpoint was evicted, and total
//! quota evictions. The curve to look for: traffic climbs as the quota
//! drops below ~1 checkpoint's worth (the save is refused and recycling
//! starves), and policies that protect the actively-recycled checkpoint
//! (`oldest`, `lru`) hold the reduction at quotas where `staleness`
//! keeps evicting it in favour of fresher background fillers.
//!
//! Writes `results/eviction_sweep.csv` when `results/` exists.

use vecycle_analysis::{ExperimentLog, Table};
use vecycle_bench::soak::{fresh_soak_dir, run_soak, SoakOptions};
use vecycle_bench::Options;
use vecycle_checkpoint::EvictionPolicy;
use vecycle_sim::chaos::{ChaosConfig, ChaosRates};
use vecycle_types::Bytes;

const LEGS: usize = 60;

fn main() {
    let opts = Options::from_args();
    let mut log = ExperimentLog::new();
    let ram = Bytes::from_mib(64);
    let checkpoint = Bytes::new(ram.pages_ceil().as_u64() * 16);

    println!(
        "Eviction sweep — {LEGS}-leg random walk, {ram} VM ({checkpoint} checkpoint), \
         steady background disk pressure\n"
    );
    let mut t = Table::new(vec![
        "quota",
        "policy",
        "traffic",
        "fell back",
        "evictions",
        "violations",
    ]);
    let mut csv = String::from(
        "quota_bytes,quota_checkpoints,policy,traffic_bytes,fell_back,evictions,violations\n",
    );

    let policies = [
        EvictionPolicy::OldestFirst,
        EvictionPolicy::LruByRecycle,
        EvictionPolicy::LargestFirst,
        EvictionPolicy::StalenessScore,
    ];
    for quota_factor in [0.5, 1.0, 1.5, 2.5, 4.0, 16.0] {
        let quota = Bytes::new((checkpoint.as_u64() as f64 * quota_factor) as u64);
        for policy in policies {
            let config = ChaosConfig {
                seed: opts.seed,
                legs: LEGS,
                hosts: 3,
                rates: ChaosRates {
                    pressure: 0.5,
                    ..ChaosRates::default()
                },
            };
            let soak = SoakOptions {
                config,
                threads: opts.threads,
                ram,
                quota,
                policy,
                disk_root: fresh_soak_dir(&format!("evsweep-{quota_factor}-{policy}")),
            };
            let report = run_soak(&soak).expect("sweep infrastructure");
            assert!(
                report.violations.is_empty(),
                "invariants broke at quota {quota} / {policy}: {:?}",
                report.violations
            );
            t.row(vec![
                format!("{quota_factor:.1}x"),
                policy.label().into(),
                format!("{}", report.total_traffic),
                format!("{}", report.fell_back),
                format!("{}", report.evictions),
                format!("{}", report.violations.len()),
            ]);
            csv.push_str(&format!(
                "{},{quota_factor:.1},{},{},{},{},{}\n",
                quota.as_u64(),
                policy.label(),
                report.total_traffic.as_u64(),
                report.fell_back,
                report.evictions,
                report.violations.len(),
            ));
            let cell = format!("q={quota_factor:.1}/{}", policy.label());
            log.record(
                "eviction_sweep",
                &cell,
                "traffic_bytes",
                report.total_traffic.as_u64() as f64,
            );
            log.record(
                "eviction_sweep",
                &cell,
                "fell_back",
                report.fell_back as f64,
            );
            log.record(
                "eviction_sweep",
                &cell,
                "evictions",
                report.evictions as f64,
            );
        }
    }
    print!("{}", t.render());

    let out = std::path::Path::new("results");
    if out.is_dir() {
        let path = out.join("eviction_sweep.csv");
        std::fs::write(&path, csv).expect("writing csv");
        println!("\n[csv written to {}]", path.display());
    }
    opts.finish(&log);
}
