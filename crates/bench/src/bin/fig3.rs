//! Figure 3: which pages does each technique transfer?
//!
//! The paper's Figure 3 is a schematic — dedup transfers the most pages,
//! dirty tracking fewer, content-based redundancy elimination fewer
//! still, and each method identifies a *distinct* set. This binary makes
//! the schematic concrete: it applies a controlled mix of guest
//! behaviours and reports each method's transfer set and the set
//! relationships that explain the ordering.

use vecycle_analysis::Table;
use vecycle_bench::Options;
use vecycle_mem::{DigestMemory, Guest, MemoryImage, PageContent};
use vecycle_trace::{Fingerprint, PairStats};
use vecycle_types::{PageCount, PageIndex, SimDuration, SimTime};

fn main() {
    let opts = Options::from_args();
    let n = 10_000u64;
    let mut guest = Guest::new(DigestMemory::with_distinct_content(
        PageCount::new(n),
        opts.seed,
    ));
    // Plant some duplicate content before the checkpoint.
    for i in 0..500u64 {
        guest.write_page(PageIndex::new(9_000 + i), PageContent::ContentId(1 << 60));
    }
    let before = Fingerprint::new(SimTime::EPOCH, guest.digests());

    // Controlled divergence:
    //   1500 pages rewritten with fresh content       (every method sends)
    //   800 pages relocated (content moved in memory) (dirty sends, hashes don't)
    //   400 pages rewritten with recycled content     (dirty sends, hashes don't)
    //   300 fresh duplicate pages (3 copies of 100)   (dedup collapses)
    for i in 0..1500u64 {
        guest.write_page(PageIndex::new(i), PageContent::ContentId((1 << 61) | i));
    }
    for i in 0..800u64 {
        guest.relocate_page(PageIndex::new(3000 + i), PageIndex::new(4000 + i));
    }
    for i in 0..400u64 {
        // Copy content that existed at checkpoint time elsewhere — what a
        // file cache does when it re-reads the same blocks.
        guest.relocate_page(PageIndex::new(8000 + i), PageIndex::new(2000 + i));
    }
    for i in 0..300u64 {
        guest.write_page(
            PageIndex::new(5000 + i),
            PageContent::ContentId((1 << 62) | (i % 100)),
        );
    }
    let after = Fingerprint::new(SimTime::EPOCH + SimDuration::from_mins(30), guest.digests());

    let stats = PairStats::compute(&before, &after);
    println!("Figure 3 — pages transferred by each method ({n} pages total)\n");
    let mut t = Table::new(vec!["method", "pages sent", "% of memory"]);
    for (name, v) in [
        ("full migration", stats.total),
        ("dedup", stats.dedup),
        ("dirty tracking", stats.dirty),
        ("dirty + dedup", stats.dirty_dedup),
        ("hashes (vecycle)", stats.hashes),
        ("hashes + dedup", stats.hashes_dedup),
    ] {
        t.row(vec![
            name.into(),
            format!("{v}"),
            format!("{:.1}", v as f64 / n as f64 * 100.0),
        ]);
    }
    print!("{}", t.render());

    println!("\nWhy the sets differ:");
    println!(
        "  dirty − hashes = {} pages whose content moved or was recycled:\n\
         \u{20}   they look updated to a tracker, but the checkpoint still\n\
         \u{20}   holds their content (the paper's Figure 3 annotation).",
        stats.dirty - stats.hashes,
    );
    println!(
        "  dedup − (hashes+dedup) = {} pages saved by the checkpoint\n\
         \u{20}   beyond what in-transfer dedup can see.",
        stats.dedup - stats.hashes_dedup,
    );
    assert!(stats.hashes < stats.dirty, "hashes must beat dirty here");
    assert!(stats.dirty < stats.dedup, "dirty must beat dedup here");
}
