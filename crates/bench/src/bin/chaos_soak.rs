//! Chaos soak: a long seeded hostile run combining host crashes, disk
//! pressure, checkpoint corruption, link drops, and netem loss —
//! asserting the survivability invariants after every leg.
//!
//! ```text
//! cargo run --release --bin chaos_soak -- \
//!     --chaos seed=42,legs=250,crash=0.12,pressure=0.25,corrupt=0.08,drop=0.15,loss=0.1
//! ```
//!
//! Flags:
//!
//! * `--chaos <spec>` — comma-separated `key=value` chaos spec (see
//!   [`ChaosConfig::parse`]); omitted keys keep hostile defaults;
//! * `--quota <bytes>` — per-host checkpoint byte quota;
//! * `--policy <name>` — eviction policy (`oldest|lru|largest|staleness`);
//! * `--threads <n>` — engine page-scan threads (default
//!   `VECYCLE_THREADS`, else 1; the report is bit-identical at any
//!   setting).
//!
//! Exit status is non-zero when any invariant is violated. When
//! `results/` exists, the incident log and the canonical metrics
//! snapshot are written there (CI uploads both on failure).

use vecycle_bench::soak::{run_soak, SoakOptions};
use vecycle_checkpoint::EvictionPolicy;
use vecycle_sim::chaos::ChaosConfig;
use vecycle_types::Bytes;

/// Hostile-by-default chaos spec: every fault class armed.
const DEFAULT_SPEC: &str =
    "seed=2022,legs=250,hosts=3,crash=0.12,pressure=0.25,corrupt=0.08,drop=0.15,loss=0.1";

fn main() {
    let mut spec = DEFAULT_SPEC.to_string();
    let mut quota: Option<Bytes> = None;
    let mut policy: Option<EvictionPolicy> = None;
    let mut threads = std::env::var("VECYCLE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1);

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match arg.as_str() {
            "--chaos" => spec = grab("--chaos"),
            "--quota" => quota = Some(Bytes::new(grab("--quota").parse().expect("--quota: bytes"))),
            "--policy" => {
                let name = grab("--policy");
                policy = Some(EvictionPolicy::parse(&name).unwrap_or_else(|| {
                    panic!("--policy: unknown policy {name} (oldest|lru|largest|staleness)")
                }));
            }
            "--threads" => threads = grab("--threads").parse().expect("--threads: integer"),
            other => panic!("unknown argument {other}; known: --chaos --quota --policy --threads"),
        }
    }

    let config = ChaosConfig::parse(&spec).expect("valid --chaos spec");
    let mut opts = SoakOptions::new(config);
    opts.threads = threads;
    if let Some(quota) = quota {
        opts.quota = quota;
    }
    if let Some(policy) = policy {
        opts.policy = policy;
    }

    println!(
        "Chaos soak — seed {}, {} legs across {} hosts, quota {} ({} eviction), {} thread(s)",
        config.seed, config.legs, config.hosts, opts.quota, opts.policy, opts.threads
    );
    println!(
        "rates: crash={} pressure={} corrupt={} drop={} loss={}\n",
        config.rates.crash,
        config.rates.pressure,
        config.rates.corrupt,
        config.rates.drop,
        config.rates.loss
    );

    let report = run_soak(&opts).expect("soak infrastructure");
    println!("{}", report.summary());

    let out = std::path::Path::new("results");
    if out.is_dir() {
        let incidents = report.events.join("\n") + "\n";
        let ipath = out.join("chaos_soak_incidents.log");
        std::fs::write(&ipath, incidents).expect("writing incident log");
        println!("[incident log written to {}]", ipath.display());
        let mpath = out.join("chaos_soak_metrics.json");
        std::fs::write(&mpath, &report.metrics_json).expect("writing metrics json");
        println!("[metrics snapshot written to {}]", mpath.display());
    }

    if !report.violations.is_empty() {
        eprintln!("\nINVARIANT VIOLATIONS:");
        for v in &report.violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    println!("\nall invariants held across {} legs", report.legs_run);
}
