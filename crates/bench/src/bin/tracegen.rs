//! Generates the calibrated trace set and stores it as trace files.
//!
//! The analyses (`fig1`–`fig5`, `fig8`) regenerate traces on the fly;
//! this tool materializes them once so a calibrated set can be archived
//! or shared:
//!
//! ```sh
//! cargo run --release -p vecycle-bench --bin tracegen -- --scale 512
//! ls target/traces/
//! ```

use vecycle_bench::Options;
use vecycle_trace::{catalog, Trace};

fn main() {
    let opts = Options::from_args();
    let dir = std::path::Path::new("target/traces");
    std::fs::create_dir_all(dir).expect("create trace dir");

    for m in catalog() {
        let trace = opts.trace_for(&m);
        let name = m.name.to_lowercase().replace(' ', "-");
        let path = dir.join(format!("{name}.vtrc"));
        let file = std::fs::File::create(&path).expect("create trace file");
        trace
            .write_to(std::io::BufWriter::new(file))
            .expect("write trace");

        // Verify the artifact round-trips before reporting success.
        let back =
            Trace::read_from(std::fs::File::open(&path).expect("reopen")).expect("reload trace");
        assert_eq!(back.fingerprints().len(), trace.fingerprints().len());
        println!(
            "{:<12} -> {} ({} fingerprints, {:.1} MiB)",
            m.name,
            path.display(),
            trace.fingerprints().len(),
            std::fs::metadata(&path).expect("stat").len() as f64 / (1024.0 * 1024.0),
        );
    }
}
