//! One-line-per-machine summary of the whole trace catalog — the quick
//! sanity check before running the heavier figure binaries.

use vecycle_analysis::{Histogram, Table};
use vecycle_bench::Options;
use vecycle_trace::{catalog, TraceStats};

fn main() {
    let opts = Options::from_args();
    println!(
        "Trace catalog summary (scale {} pages/GiB)\n",
        opts.pages_per_gib
    );
    let mut t = Table::new(vec![
        "machine", "kind", "fps", "pages", "dup", "zero", "sim@1h", "sim@24h",
    ]);
    let mut sim24 = Histogram::new(0.0, 1.0, 10);
    for m in catalog() {
        let trace = opts.trace_for(&m);
        let s = TraceStats::compute(&trace);
        let fmt = |r: Option<vecycle_types::Ratio>| {
            r.map(|x| format!("{x}")).unwrap_or_else(|| "–".into())
        };
        if let Some(r) = s.avg_similarity_24h {
            sim24.add(r.as_f64());
        }
        t.row(vec![
            m.name.into(),
            m.kind.to_string(),
            format!("{}", s.fingerprints),
            format!("{}", s.pages),
            format!("{}", s.mean_duplicates),
            format!("{}", s.mean_zeros),
            fmt(s.avg_similarity_1h),
            fmt(s.avg_similarity_24h),
        ]);
    }
    print!("{}", t.render());
    println!("\nDistribution of 24 h similarities across the catalog:");
    print!("{}", sim24.render(30));
}
