//! Figure 4: duplicate-page and zero-page percentages over time.

use vecycle_analysis::{ExperimentLog, Summary, Table};
use vecycle_bench::{machine, Options};

fn main() {
    let opts = Options::from_args();
    let mut log = ExperimentLog::new();

    let groups: [(&str, &[&str]); 2] = [
        ("servers", &["Server A", "Server B", "Server C"]),
        ("laptops", &["Laptop A", "Laptop B", "Laptop C"]),
    ];

    for (group, names) in groups {
        println!("\nFigure 4 — duplicate pages [%], {group}");
        let mut t = Table::new(vec!["machine", "min", "mean", "max", "fingerprints"]);
        for name in names {
            let m = machine(name);
            let trace = opts.trace_for(&m);
            let dup: Summary = trace
                .fingerprints()
                .iter()
                .map(|f| f.duplicate_fraction().as_percent())
                .collect();
            t.row(vec![
                name.to_string(),
                format!("{:.1}", dup.min()),
                format!("{:.1}", dup.mean()),
                format!("{:.1}", dup.max()),
                format!("{}", dup.count()),
            ]);
            log.record("fig4", format!("{name}/duplicates"), "mean_pct", dup.mean());

            if group == "servers" {
                let zero: Summary = trace
                    .fingerprints()
                    .iter()
                    .map(|f| f.zero_fraction().as_percent())
                    .collect();
                log.record("fig4", format!("{name}/zeros"), "mean_pct", zero.mean());
            }
        }
        print!("{}", t.render());
    }

    println!("\nFigure 4 (right) — zero pages [%], servers");
    let mut t = Table::new(vec!["machine", "min", "mean", "max"]);
    for name in ["Server A", "Server B", "Server C"] {
        let m = machine(name);
        let trace = opts.trace_for(&m);
        let zero: Summary = trace
            .fingerprints()
            .iter()
            .map(|f| f.zero_fraction().as_percent())
            .collect();
        t.row(vec![
            name.to_string(),
            format!("{:.1}", zero.min()),
            format!("{:.1}", zero.mean()),
            format!("{:.1}", zero.max()),
        ]);
    }
    print!("{}", t.render());

    println!(
        "\nPaper targets: duplicates 5–20% (Server A ≈5%, Server C ≈20%,\n\
         laptops 10–20%); zero pages stable below ~5% for all servers."
    );
    opts.finish(&log);
}
