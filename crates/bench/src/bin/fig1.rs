//! Figure 1: memory-similarity decay over 24 h for six machines.
//!
//! For each machine: generate its fingerprint trace, enumerate all
//! fingerprint pairs, bin by time delta, and print the min/avg/max
//! similarity per hour — the three curves of each Figure 1 panel.

use vecycle_analysis::{ExperimentLog, Table};
use vecycle_bench::{machine, Options};
use vecycle_trace::BinnedSimilarity;
use vecycle_types::SimDuration;

fn main() {
    let opts = Options::from_args();
    let mut log = ExperimentLog::new();
    let names = [
        "Server A",
        "Server B",
        "Laptop A",
        "Laptop B",
        "Crawler A",
        "Crawler B",
    ];

    for name in names {
        let m = machine(name);
        let trace = opts.trace_for(&m);
        let series = BinnedSimilarity::compute(
            trace.fingerprints(),
            m.profile.fingerprint_interval,
            SimDuration::from_hours(24),
        );

        println!(
            "\nFigure 1 — {name} ({}, {} fingerprints, {} pages @ scale)",
            m.ram(),
            trace.fingerprints().len(),
            opts.scaled_pages(m.ram()),
        );
        let mut t = Table::new(vec!["Δt [h]", "min", "avg", "max", "pairs"]);
        for bin in series.bins() {
            let h = bin.delta.as_hours_f64();
            // Print hourly rows to keep the table readable.
            if (h.fract()).abs() > 1e-9 {
                continue;
            }
            t.row(vec![
                format!("{h:>4.0}"),
                format!("{:.3}", bin.min.as_f64()),
                format!("{:.3}", bin.avg.as_f64()),
                format!("{:.3}", bin.max.as_f64()),
                format!("{}", bin.pairs),
            ]);
            let label = format!("{name}/{h:.0}h");
            log.record("fig1", &label, "min_similarity", bin.min.as_f64());
            log.record("fig1", &label, "avg_similarity", bin.avg.as_f64());
            log.record("fig1", &label, "max_similarity", bin.max.as_f64());
        }
        print!("{}", t.render());
    }

    println!(
        "\nPaper targets: avg similarity after 24 h between ~0.4 (Server B)\n\
         and ~0.2 (Server C, see fig2); crawlers ~0.4 after 1 h and <0.2\n\
         after ~5 h; worst case drops below 0.2 quickly for all systems."
    );
    opts.finish(&log);
}
