//! Single-core hot-path throughput baseline: measure, record, gate.
//!
//! Measures the scan/digest hot path (batch page digesting + one
//! digest-keyed index probe per page) in pages/s, alongside its
//! components, and compares the current code against the *pre-optimisation*
//! path kept inline here (per-byte zero walk, one scalar MD5 per page,
//! SipHash `HashMap` probes).
//!
//! Modes:
//!
//! * default — measure and (over)write `results/hotpath_baseline.json`;
//! * `--check` — measure and fail (exit 1) if the current hot path is
//!   more than 20% slower than the recorded baseline, or if it is not
//!   at least 2× the legacy path — the CI regression gate;
//! * `--quick` — fewer pages/reps, for CI;
//! * `--out <path>` — baseline file location.
//!
//! Numbers are machine-dependent: regenerate the baseline when moving
//! to different hardware (`cargo run --release -p vecycle-bench --bin
//! hotpath_baseline`).

use std::collections::HashMap;
use std::time::Instant;

use vecycle_checkpoint::DigestTable;
use vecycle_hash::{Hasher, Md5};
use vecycle_types::{PageDigest, PageIndex};

/// Maximum tolerated slowdown vs the recorded baseline (CI gate).
const REGRESSION_TOLERANCE: f64 = 0.80;

/// Required speedup of the modern path over the legacy path.
const REQUIRED_SPEEDUP: f64 = 2.0;

/// Deterministic patterned pages: 1-in-8 zero (typical idle-guest mix).
fn make_pages(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            if i % 8 == 0 {
                vec![0u8; 4096]
            } else {
                let seed = (i as u8).wrapping_mul(37).wrapping_add(1);
                (0..4096u32)
                    .map(|j| seed.wrapping_mul((j % 251) as u8).wrapping_add(j as u8))
                    .collect()
            }
        })
        .collect()
}

/// The pre-optimisation per-page digest: per-byte zero walk + scalar MD5.
fn legacy_page_digest(page: &[u8]) -> PageDigest {
    if page.iter().all(|&b| b == 0) {
        return PageDigest::ZERO_PAGE;
    }
    PageDigest::new(Md5::digest(page))
}

/// Best-of-`reps` timing (seconds) of `work`, which must return a value
/// to keep the optimizer honest.
fn best_of<T>(reps: usize, mut work: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(work());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

struct Measurement {
    pages: usize,
    reps: usize,
    /// The acceptance metric: digest every page, then probe the index
    /// once per page — pages/s end to end.
    modern_pages_per_sec: f64,
    legacy_pages_per_sec: f64,
    speedup: f64,
    /// Digest-only component.
    digest_gib_per_sec: f64,
    /// Lookup-only component (50/50 hit/miss probes).
    swiss_lookups_per_sec: f64,
    siphash_lookups_per_sec: f64,
    /// Hex-rendering component.
    lut_hex_mib_per_sec: f64,
    format_hex_mib_per_sec: f64,
}

fn measure(quick: bool) -> Measurement {
    let pages = if quick { 2_048 } else { 8_192 };
    let reps = if quick { 3 } else { 8 };
    let page_data = make_pages(pages);
    let views: Vec<&[u8]> = page_data.iter().map(Vec::as_slice).collect();

    // Index contents: half the page digests plus filler, so probes mix
    // hits and misses like a real destination merge.
    let digests = vecycle_hash::digest_pages(&views);
    let mut swiss: DigestTable<PageIndex> = DigestTable::with_capacity(pages);
    let mut sip: HashMap<PageDigest, PageIndex> = HashMap::with_capacity(pages);
    for (i, &d) in digests.iter().enumerate() {
        if i % 2 == 0 {
            swiss.or_insert(d, PageIndex::new(i as u64));
            sip.entry(d).or_insert_with(|| PageIndex::new(i as u64));
        }
    }

    // The acceptance metric: digest + one probe per page.
    let modern = best_of(reps, || {
        let ds = vecycle_hash::digest_pages(&views);
        ds.iter().filter(|d| swiss.contains(**d)).count()
    });
    let legacy = best_of(reps, || {
        let ds: Vec<PageDigest> = views.iter().map(|p| legacy_page_digest(p)).collect();
        ds.iter().filter(|d| sip.contains_key(d)).count()
    });

    // Digest-only throughput (GiB/s hashed).
    let digest_time = best_of(reps, || vecycle_hash::digest_pages(&views));

    // Lookup-only throughput.
    let probes: Vec<PageDigest> = digests.clone();
    let swiss_time = best_of(reps, || {
        probes.iter().filter(|d| swiss.contains(**d)).count()
    });
    let sip_time = best_of(reps, || {
        probes.iter().filter(|d| sip.contains_key(d)).count()
    });

    // Hex rendering: LUT vs the format!-per-byte path it replaced.
    let hex_inputs: Vec<[u8; 16]> = digests.iter().map(|d| d.into_bytes()).collect();
    let lut_time = best_of(reps, || {
        hex_inputs
            .iter()
            .map(|d| vecycle_hash::to_hex(d).len())
            .sum::<usize>()
    });
    let fmt_time = best_of(reps, || {
        hex_inputs
            .iter()
            .map(|d| {
                d.iter()
                    .map(|b| format!("{b:02x}"))
                    .collect::<String>()
                    .len()
            })
            .sum::<usize>()
    });

    let hashed_bytes = (pages * 4096) as f64;
    let hex_bytes = (hex_inputs.len() * 16) as f64;
    Measurement {
        pages,
        reps,
        modern_pages_per_sec: pages as f64 / modern,
        legacy_pages_per_sec: pages as f64 / legacy,
        speedup: legacy / modern,
        digest_gib_per_sec: hashed_bytes / digest_time / (1u64 << 30) as f64,
        swiss_lookups_per_sec: probes.len() as f64 / swiss_time,
        siphash_lookups_per_sec: probes.len() as f64 / sip_time,
        lut_hex_mib_per_sec: hex_bytes / lut_time / (1u64 << 20) as f64,
        format_hex_mib_per_sec: hex_bytes / fmt_time / (1u64 << 20) as f64,
    }
}

fn to_json(m: &Measurement, quick: bool) -> String {
    // Hand-rolled for a stable field order (serde_json maps reorder).
    format!(
        "{{\n  \"schema\": 1,\n  \"quick\": {quick},\n  \"pages\": {},\n  \"reps\": {},\n  \
         \"digest_index_modern_pages_per_sec\": {:.0},\n  \
         \"digest_index_legacy_pages_per_sec\": {:.0},\n  \
         \"digest_index_speedup\": {:.2},\n  \
         \"digest_gib_per_sec\": {:.3},\n  \
         \"swiss_lookups_per_sec\": {:.0},\n  \
         \"siphash_lookups_per_sec\": {:.0},\n  \
         \"to_hex_lut_mib_per_sec\": {:.1},\n  \
         \"to_hex_format_mib_per_sec\": {:.1}\n}}\n",
        m.pages,
        m.reps,
        m.modern_pages_per_sec,
        m.legacy_pages_per_sec,
        m.speedup,
        m.digest_gib_per_sec,
        m.swiss_lookups_per_sec,
        m.siphash_lookups_per_sec,
        m.lut_hex_mib_per_sec,
        m.format_hex_mib_per_sec,
    )
}

/// Pulls one numeric field out of the recorded baseline JSON.
fn json_field(raw: &str, key: &str) -> Option<f64> {
    let pos = raw.find(&format!("\"{key}\""))?;
    let rest = &raw[pos..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn main() {
    let mut check = false;
    let mut quick = false;
    let mut out = String::from("results/hotpath_baseline.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out: path"),
            other => panic!("unknown argument {other}; known: --check --quick --out"),
        }
    }

    let m = measure(quick);
    println!(
        "digest+index: {:.0} pages/s (legacy {:.0} pages/s, speedup {:.2}x)",
        m.modern_pages_per_sec, m.legacy_pages_per_sec, m.speedup
    );
    println!(
        "digest only:  {:.3} GiB/s hashed   lookups: swiss {:.2}M/s vs siphash {:.2}M/s",
        m.digest_gib_per_sec,
        m.swiss_lookups_per_sec / 1e6,
        m.siphash_lookups_per_sec / 1e6
    );
    println!(
        "to_hex:       lut {:.1} MiB/s vs format {:.1} MiB/s",
        m.lut_hex_mib_per_sec, m.format_hex_mib_per_sec
    );

    if !check {
        std::fs::write(&out, to_json(&m, quick)).expect("write baseline file");
        println!("baseline written to {out}");
        return;
    }

    let mut failures = Vec::new();
    if m.speedup < REQUIRED_SPEEDUP {
        failures.push(format!(
            "digest+index speedup {:.2}x is below the required {REQUIRED_SPEEDUP:.1}x",
            m.speedup
        ));
    }
    // The LUT hex path must not be slower than the format! path it
    // replaced (generous 1.5x slack absorbs timer noise; the LUT is
    // typically ~10x faster).
    if m.lut_hex_mib_per_sec * 1.5 < m.format_hex_mib_per_sec {
        failures.push(format!(
            "to_hex LUT ({:.1} MiB/s) is slower than format! ({:.1} MiB/s)",
            m.lut_hex_mib_per_sec, m.format_hex_mib_per_sec
        ));
    }
    match std::fs::read_to_string(&out) {
        Ok(raw) => {
            let recorded = json_field(&raw, "digest_index_modern_pages_per_sec")
                .expect("baseline file has digest_index_modern_pages_per_sec");
            let ratio = m.modern_pages_per_sec / recorded;
            println!(
                "recorded baseline {recorded:.0} pages/s; current is {:.0}% of it",
                ratio * 100.0
            );
            if ratio < REGRESSION_TOLERANCE {
                failures.push(format!(
                    "hot path regressed to {:.0}% of the recorded {recorded:.0} pages/s \
                     (tolerance {:.0}%)",
                    ratio * 100.0,
                    REGRESSION_TOLERANCE * 100.0
                ));
            }
        }
        Err(e) => failures.push(format!("cannot read baseline file {out}: {e}")),
    }

    if failures.is_empty() {
        println!("hot-path check passed");
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
