//! Failure sweep: how VeCycle's recycling degrades — and recovers —
//! as fault rates climb.
//!
//! A ping-pong schedule runs under seeded fault plans with uniform
//! per-fault probability `p` ∈ {0, 0.1, 0.25, 0.5, 0.75}, once with
//! partial-checkpoint resume enabled (the default retry policy) and once
//! retrying from scratch. Reported per cell: outcome counts, useful vs
//! wasted traffic, and mean migration time. The interesting deltas:
//!
//! * wasted traffic grows with `p` but the *resume* column grows slower —
//!   aborted attempts leave landed pages the retry recycles;
//! * fallbacks (corrupt checkpoints, low similarity) cost traffic but
//!   never correctness: every non-failed migration lands the VM.
//!
//! Writes `results/failure_sweep.csv` when `results/` exists, plus
//! `results/failure_sweep_metrics.json` — the canonical
//! [`MetricsSnapshot`](vecycle_obs::MetricsSnapshot) accumulated across
//! every cell, for cross-checking the sweep against the typed counters
//! (injected vs observed faults, engine vs net wire bytes).

use vecycle_analysis::{ExperimentLog, Table};
use vecycle_bench::Options;
use vecycle_core::session::{ScheduleSummary, VeCycleSession, VmInstance};
use vecycle_core::MigrationEngine;
use vecycle_faults::{FaultPlan, FaultRates, RetryPolicy};
use vecycle_host::{Cluster, MigrationSchedule};
use vecycle_mem::{workload::IdleWorkload, DigestMemory, Guest};
use vecycle_net::LinkSpec;
use vecycle_obs::MetricsRegistry;
use vecycle_types::{Bytes, HostId, SimDuration, SimTime, VmId};

const LEGS: u64 = 20;

fn main() {
    let opts = Options::from_args();
    let mut log = ExperimentLog::new();
    let metrics = MetricsRegistry::new();
    let ram = Bytes::from_mib(64);

    println!(
        "Failure sweep — {LEGS}-leg ping-pong, {ram} VM, uniform fault rate p\n\
         (resume = retries recycle the aborted attempt's landed pages)\n"
    );
    let mut t = Table::new(vec![
        "p",
        "retry",
        "ok",
        "retried",
        "fell back",
        "failed",
        "traffic",
        "wasted",
        "mean time",
    ]);
    let mut csv = String::from(
        "rate,retry,migrations,retried,fell_back,failed,traffic_bytes,wasted_bytes,mean_time_s\n",
    );

    for p in [0.0, 0.1, 0.25, 0.5, 0.75] {
        for (retry_name, retry) in [
            ("resume", RetryPolicy::default()),
            ("scratch", RetryPolicy::from_scratch()),
        ] {
            let cluster = Cluster::homogeneous(2, LinkSpec::lan_gigabit());
            let engine = MigrationEngine::new(cluster.link()).with_threads(opts.threads);
            let session = VeCycleSession::new(cluster)
                .with_engine(engine)
                .with_retry_policy(retry)
                .with_metrics(metrics.clone());
            let mem = DigestMemory::with_uniform_content(ram, opts.seed).expect("page-aligned");
            let mut vm = VmInstance::new(VmId::new(0), Guest::new(mem), HostId::new(0));
            let schedule = MigrationSchedule::ping_pong(
                vm.id(),
                HostId::new(0),
                HostId::new(1),
                SimTime::EPOCH + SimDuration::from_hours(1),
                SimDuration::from_hours(1),
                LEGS,
            );
            // ~5% of pages touched per gap.
            let rate = ram.pages_ceil().as_u64() as f64 * 0.05 / 3600.0;
            let mut workload = IdleWorkload::new(opts.seed ^ 1, rate);
            let plan = FaultPlan::seeded(opts.seed, &FaultRates::uniform(p), schedule.len());
            let run = session
                .run_schedule_with_faults(&mut vm, &schedule, &mut workload, &plan)
                .expect("fault-free of real errors");
            let s = ScheduleSummary::of(&run.reports);
            let ok = s.migrations - s.retried - s.fell_back - s.failed;
            t.row(vec![
                format!("{p:.2}"),
                retry_name.into(),
                format!("{ok}"),
                format!("{}", s.retried),
                format!("{}", s.fell_back),
                format!("{}", s.failed),
                format!("{}", s.total_traffic),
                format!("{}", s.wasted_traffic),
                format!("{:.2}s", s.mean_time.as_secs_f64()),
            ]);
            csv.push_str(&format!(
                "{p:.2},{retry_name},{},{},{},{},{},{},{:.3}\n",
                s.migrations,
                s.retried,
                s.fell_back,
                s.failed,
                s.total_traffic.as_u64(),
                s.wasted_traffic.as_u64(),
                s.mean_time.as_secs_f64(),
            ));
            let cell = format!("p={p:.2}/{retry_name}");
            log.record("failure_sweep", &cell, "retried", s.retried as f64);
            log.record("failure_sweep", &cell, "failed", s.failed as f64);
            log.record(
                "failure_sweep",
                &cell,
                "wasted_bytes",
                s.wasted_traffic.as_f64(),
            );
        }
    }
    print!("{}", t.render());

    let snap = metrics.snapshot();
    println!(
        "\nmetrics: {} faults injected, {} observed by the session, \
         {} engine wire bytes",
        snap.counter_total("faults_injected_total"),
        snap.counter_total("faults_observed_total"),
        snap.counter_total("engine_wire_bytes_total"),
    );

    let out = std::path::Path::new("results");
    if out.is_dir() {
        let path = out.join("failure_sweep.csv");
        std::fs::write(&path, csv).expect("writing csv");
        println!("\n[csv written to {}]", path.display());
        let mpath = out.join("failure_sweep_metrics.json");
        std::fs::write(&mpath, snap.to_canonical_json()).expect("writing metrics json");
        println!("[metrics snapshot written to {}]", mpath.display());
    }
    opts.finish(&log);
}
