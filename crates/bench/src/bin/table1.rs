//! Table 1: the traced systems.
//!
//! Prints the catalog — the six Memory Buddies machines plus the paper's
//! own crawler VMs and VDI desktop — with the metadata Table 1 reports.

use vecycle_analysis::Table;
use vecycle_trace::catalog;

fn main() {
    println!("Table 1: summary of the traced systems\n");
    let mut t = Table::new(vec![
        "Name",
        "OS",
        "Trace ID",
        "RAM size",
        "Kind",
        "Trace span",
    ]);
    for m in catalog() {
        t.row(vec![
            m.name.to_string(),
            m.os.to_string(),
            m.trace_id.to_string(),
            format!("{}", m.ram()),
            m.kind.to_string(),
            format!("{:.0} days", m.profile.trace_duration.as_hours_f64() / 24.0),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\n(The first 7 rows mirror the paper's Table 1; crawlers and the\n\
         desktop are the paper's own §2.3/§4.6 traces. Traces here are\n\
         synthetic reproductions — see DESIGN.md for the substitution.)"
    );
}
