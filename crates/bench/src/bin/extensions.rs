//! Extension experiments beyond the paper's evaluation:
//!
//! 1. **Post-copy × VeCycle** — recycled checkpoints shrink post-copy's
//!    degradation window and remote-fault count (related work \[13\]).
//! 2. **Gang migration** — cluster-wide dedup across co-migrating VMs
//!    (related work: VMFlock, Shrinker).
//! 3. **Delta compression** — compression stacked on each strategy
//!    (related work \[24\]).

use vecycle_analysis::{ExperimentLog, Table};
use vecycle_bench::Options;
use vecycle_checkpoint::ChecksumIndex;
use vecycle_core::{DeltaCompression, MigrationEngine, Strategy, Xbzrle};
use vecycle_mem::{DigestMemory, MemoryImage, MutableMemory, PageContent};
use vecycle_net::LinkSpec;
use vecycle_types::{Bytes, BytesPerSec, PageIndex};

fn diverged(base: &DigestMemory, frac: f64, salt: u64) -> DigestMemory {
    let mut now = base.snapshot();
    let n = now.page_count().as_u64();
    for i in 0..((n as f64 * frac) as u64) {
        now.write_page(PageIndex::new(i), PageContent::ContentId((salt << 48) | i));
    }
    now
}

fn main() {
    let opts = Options::from_args();
    let mut log = ExperimentLog::new();
    let base =
        DigestMemory::with_uniform_content(Bytes::from_gib(1), opts.seed).expect("page-aligned");

    // --- 1. Post-copy × VeCycle over the WAN -----------------------------
    println!("Extension 1 — post-copy with and without a recycled checkpoint (WAN, 1 GiB)\n");
    let engine = MigrationEngine::new(LinkSpec::wan_cloudnet());
    let vm = diverged(&base, 0.25, 2);
    let working_set: Vec<PageIndex> = (0..base.page_count().as_u64())
        .step_by(8)
        .map(PageIndex::new)
        .collect();
    let mut t = Table::new(vec![
        "variant",
        "downtime",
        "degradation window [s]",
        "remote faults",
        "stall [s]",
    ]);
    for (name, strategy) in [
        ("post-copy (cold)", Strategy::full()),
        ("post-copy + vecycle", Strategy::vecycle(&base)),
    ] {
        let r = engine
            .migrate_postcopy(&vm, strategy, &working_set)
            .unwrap();
        t.row(vec![
            name.into(),
            format!("{}", r.downtime),
            format!("{:.1}", r.completion_time.as_secs_f64()),
            format!("{}", r.demand_faults),
            format!("{:.1}", r.stall_time.as_secs_f64()),
        ]);
        log.record("ext1", name, "window_s", r.completion_time.as_secs_f64());
        log.record("ext1", name, "faults", r.demand_faults as f64);
    }
    let pre = engine.migrate(&vm, Strategy::vecycle(&base)).unwrap();
    t.row(vec![
        "pre-copy + vecycle".into(),
        format!("{}", pre.downtime()),
        format!("{:.1}", pre.total_time().as_secs_f64()),
        "0".into(),
        "0.0".into(),
    ]);
    print!("{}", t.render());
    println!(
        "A recycled checkpoint shrinks post-copy's degradation window and\n\
         fault count by the similarity fraction — the two techniques\n\
         compose.\n"
    );

    // --- 2. Gang migration ------------------------------------------------
    println!("Extension 2 — gang migration of 4 sibling VMs (LAN, 1 GiB each)\n");
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    let siblings: Vec<DigestMemory> = (0..4).map(|i| diverged(&base, 0.10, 10 + i)).collect();
    let refs: Vec<&DigestMemory> = siblings.iter().collect();
    let strategies = vec![Strategy::dedup(); 4];
    let gang = engine.migrate_gang(&refs, &strategies).unwrap();
    let mut t = Table::new(vec!["vm", "solo dedup", "gang dedup"]);
    let mut solo_total = 0.0;
    let mut gang_total = 0.0;
    for (i, vm) in siblings.iter().enumerate() {
        let solo = engine.migrate(vm, Strategy::dedup()).unwrap();
        solo_total += solo.source_traffic().as_f64();
        gang_total += gang[i].source_traffic().as_f64();
        t.row(vec![
            format!("vm-{i}"),
            format!("{}", solo.source_traffic()),
            format!("{}", gang[i].source_traffic()),
        ]);
    }
    print!("{}", t.render());
    println!(
        "gang total: {:.2} GiB vs solo total {:.2} GiB ({:.0}%)\n",
        gang_total / (1u64 << 30) as f64,
        solo_total / (1u64 << 30) as f64,
        gang_total / solo_total * 100.0
    );
    log.record("ext2", "gang_vs_solo", "fraction", gang_total / solo_total);

    // --- 3. Compression stacking ------------------------------------------
    println!(
        "Extension 3 — delta compression stacked on each strategy (WAN, 1 GiB, 25% diverged)\n"
    );
    let compression = DeltaCompression::new(0.55, BytesPerSec::from_mib_per_sec(400));
    let plain = MigrationEngine::new(LinkSpec::wan_cloudnet());
    let squeezed = MigrationEngine::new(LinkSpec::wan_cloudnet()).with_compression(compression);
    let mut t = Table::new(vec!["strategy", "plain", "compressed", "saving"]);
    for (name, strategy) in [
        ("full", Strategy::full()),
        ("vecycle", Strategy::vecycle(&base)),
    ] {
        let a = plain.migrate(&vm, strategy.clone()).unwrap();
        let b = squeezed.migrate(&vm, strategy).unwrap();
        t.row(vec![
            name.into(),
            format!("{}", a.source_traffic()),
            format!("{}", b.source_traffic()),
            format!(
                "-{:.0}%",
                (1.0 - b.source_traffic().as_f64() / a.source_traffic().as_f64()) * 100.0
            ),
        ]);
        log.record(
            "ext3",
            name,
            "compressed_gib",
            b.source_traffic().as_gib_f64(),
        );
    }
    print!("{}", t.render());
    println!(
        "Compression and checkpoint reuse stack: \"all the insights from\n\
         these works are still valid and can be combined with VeCycle\" (§5).\n"
    );

    // --- 4. Adaptive recycling --------------------------------------------
    println!("Extension 4 — adaptive strategy selection (sampled similarity)\n");
    let _engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    let index = ChecksumIndex::build(base.digests());
    let mut t = Table::new(vec!["true divergence", "estimated similarity", "decision"]);
    for frac in [0.05, 0.3, 0.6, 0.95] {
        let vm = diverged(&base, frac, 20 + (frac * 100.0) as u64);
        let est = MigrationEngine::estimate_similarity(&vm, &index, 256);
        let decision = if est.as_f64() >= 0.5 {
            "vecycle"
        } else {
            "dedup"
        };
        t.row(vec![
            format!("{:.0}%", frac * 100.0),
            format!("{est}"),
            decision.into(),
        ]);
        log.record("ext4", format!("div-{frac}"), "estimate", est.as_f64());
    }
    print!("{}", t.render());
    println!(
        "256 page probes decide whether checksumming the whole image is\n\
         worth it — busy VMs skip VeCycle's checksum pass (§2.3).\n"
    );

    // --- 5. XBZRLE on re-send rounds ---------------------------------------
    println!("Extension 5 — XBZRLE delta encoding of re-sent pages (hot guest, LAN)\n");
    use vecycle_mem::{workload::IdleWorkload, Guest};
    let run = |xbzrle: Option<Xbzrle>| {
        let mut engine = MigrationEngine::new(LinkSpec::lan_gigabit())
            .with_max_downtime(vecycle_types::SimDuration::from_millis(5))
            .with_max_rounds(8);
        if let Some(x) = xbzrle {
            engine = engine.with_xbzrle(x);
        }
        let mut guest = Guest::new(
            DigestMemory::with_uniform_content(Bytes::from_mib(256), opts.seed ^ 77)
                .expect("page-aligned"),
        );
        let mut wl = IdleWorkload::new(opts.seed ^ 78, 80_000.0);
        engine
            .migrate_live(&mut guest, &mut wl, Strategy::full())
            .unwrap()
    };
    let plain = run(None);
    let xb = run(Some(Xbzrle::new(0.85, 0.12)));
    let mut t = Table::new(vec![
        "variant",
        "rounds",
        "traffic",
        "time [s]",
        "downtime [ms]",
    ]);
    for (name, r) in [("plain", &plain), ("xbzrle", &xb)] {
        t.row(vec![
            name.into(),
            format!("{}", r.rounds().len()),
            format!("{}", r.source_traffic()),
            format!("{:.2}", r.total_time().as_secs_f64()),
            format!("{:.0}", r.downtime().as_secs_f64() * 1e3),
        ]);
        log.record("ext5", name, "traffic_gib", r.source_traffic().as_gib_f64());
    }
    print!("{}", t.render());
    println!(
        "Delta-encoding re-sent pages shrinks every round after the first\n\
         — QEMU's XBZRLE, composable with checkpoint recycling."
    );
    opts.finish(&log);
}
