//! Figure 2: Server C's similarity over the full 7-day trace.

use vecycle_analysis::{ExperimentLog, Table};
use vecycle_bench::{machine, Options};
use vecycle_trace::BinnedSimilarity;
use vecycle_types::SimDuration;

fn main() {
    let opts = Options::from_args();
    let mut log = ExperimentLog::new();
    let m = machine("Server C");
    let trace = opts.trace_for(&m);
    let series = BinnedSimilarity::compute(
        trace.fingerprints(),
        m.profile.fingerprint_interval,
        SimDuration::from_hours(168),
    );

    println!(
        "Figure 2 — Server C snapshot similarity over {} fingerprints (7 days)\n",
        trace.fingerprints().len()
    );
    let mut t = Table::new(vec!["Δt [h]", "min", "avg", "max", "pairs"]);
    for bin in series.bins() {
        let h = bin.delta.as_hours_f64();
        if h.fract().abs() > 1e-9 || !(h as u64).is_multiple_of(6) {
            continue; // 6-hour grid keeps the table printable
        }
        t.row(vec![
            format!("{h:>5.0}"),
            format!("{:.3}", bin.min.as_f64()),
            format!("{:.3}", bin.avg.as_f64()),
            format!("{:.3}", bin.max.as_f64()),
            format!("{}", bin.pairs),
        ]);
        let label = format!("server-c/{h:.0}h");
        log.record("fig2", &label, "min_similarity", bin.min.as_f64());
        log.record("fig2", &label, "avg_similarity", bin.avg.as_f64());
        log.record("fig2", &label, "max_similarity", bin.max.as_f64());
    }
    print!("{}", t.render());
    println!(
        "\nPaper target: \"even after one week about 20% of the memory\n\
         content is unchanged\" — the avg curve should plateau near 0.2."
    );
    opts.finish(&log);
}
