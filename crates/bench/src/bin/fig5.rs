//! Figure 5: traffic-reduction techniques compared on the traces.
//!
//! Left panel: mean fraction-of-baseline bars per method (Server A and
//! Server C, as in the paper). Center/right: CDFs of the additional
//! reduction of `hashes+dedup` over `dirty+dedup` for servers and
//! laptops.

use vecycle_analysis::{Cdf, ExperimentLog, Table};
use vecycle_bench::{machine, Options};
use vecycle_core::analytic::summarize_methods;

fn main() {
    let opts = Options::from_args();
    let mut log = ExperimentLog::new();
    // Full pair enumeration is exact but O(n²·pages); stride 7 keeps the
    // default run under a minute while sampling ~8k pairs per machine.
    let stride = 7;

    println!("Figure 5 (left) — mean fraction of baseline traffic\n");
    for name in ["Server A", "Server C"] {
        let m = machine(name);
        let trace = opts.trace_for(&m);
        let s = summarize_methods(trace.fingerprints(), stride);
        let mm = s.means;
        println!("{name} ({} pairs sampled):", mm.pairs);
        let mut t = Table::new(vec!["method", "fraction of baseline"]);
        for (label, v) in [
            ("dedup", mm.dedup),
            ("hashes", mm.hashes),
            ("dirty+dedup", mm.dirty_dedup),
            ("dirty", mm.dirty),
            ("hashes+dedup", mm.hashes_dedup),
        ] {
            t.row(vec![label.into(), format!("{:.2}", v.as_f64())]);
            log.record("fig5", format!("{name}/{label}"), "fraction", v.as_f64());
        }
        println!("{}", t.render());
    }
    println!(
        "Paper bars — Server A: dedup 0.92, hashes 0.65, dirty+dedup 0.77,\n\
         dirty 0.80, hashes+dedup 0.64. Server C: 0.85 / 0.59 / 0.69 /\n\
         0.78 / 0.53.\n"
    );

    let groups: [(&str, &[&str]); 2] = [
        ("servers", &["Server A", "Server B", "Server C"]),
        ("laptops", &["Laptop A", "Laptop B", "Laptop C", "Laptop D"]),
    ];
    for (group, names) in groups {
        // One analysis thread per machine: the pair enumeration is the
        // dominant cost and machines are independent.
        let all: Vec<f64> = crossbeam::scope(|scope| {
            let handles: Vec<_> = names
                .iter()
                .map(|name| {
                    let opts = opts.clone();
                    scope.spawn(move |_| {
                        let m = machine(name);
                        let trace = opts.trace_for(&m);
                        summarize_methods(trace.fingerprints(), stride)
                            .reduction_over_dirty_dedup_pct
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("analysis thread"))
                .collect()
        })
        .expect("no analysis thread panicked");
        let cdf = Cdf::from_values(all);
        println!("Figure 5 ({group} CDF) — reduction of hashes+dedup over dirty+dedup [%]");
        let mut t = Table::new(vec!["percentile", "reduction [%]"]);
        for p in [10.0, 25.0, 50.0, 75.0, 90.0] {
            let v = cdf.percentile(p);
            t.row(vec![format!("p{p:.0}"), format!("{v:.1}")]);
            log.record("fig5", format!("{group}/p{p:.0}"), "reduction_pct", v);
        }
        let at10 = 1.0 - cdf.fraction_at_or_below(10.0);
        t.row(vec![
            "share with ≥10% reduction".into(),
            format!("{:.0}%", at10 * 100.0),
        ]);
        log.record("fig5", format!("{group}/ge10pct"), "share", at10);
        println!("{}", t.render());
    }
    println!(
        "Paper targets: for Server B, ≥10% additional reduction in ~90% of\n\
         cases; for laptops, ≥5% in about half the cases."
    );
    opts.finish(&log);
}
