//! Figure 7: migration time and traffic vs percentage of memory updated.
//!
//! The §4.5 controlled experiment: a 4 GiB VM devotes 90% of its RAM to
//! a ramdisk; between checkpoint and migration, {0, 25, 50, 75, 100}% of
//! the ramdisk is rewritten with fresh random blocks.

use vecycle_analysis::{ExperimentLog, Table};
use vecycle_bench::Options;
use vecycle_core::{MigrationEngine, Strategy};
use vecycle_mem::{workload::RamdiskWorkload, DigestMemory, Guest};
use vecycle_net::LinkSpec;
use vecycle_types::{Bytes, Ratio};

fn main() {
    let opts = Options::from_args();
    let mut log = ExperimentLog::new();
    let ram = Bytes::from_gib(4);
    let updates = [0u32, 25, 50, 75, 100];
    let links = [
        ("lan", LinkSpec::lan_gigabit()),
        ("wan", LinkSpec::wan_cloudnet()),
    ];

    for (link_name, link) in links {
        let engine = MigrationEngine::new(link).with_threads(opts.threads);
        println!("\nFigure 7 ({link_name}) — 4 GiB VM, ramdisk update sweep");
        let mut t = Table::new(vec![
            "updates [%]",
            "qemu time [s]",
            "vecycle time [s]",
            "Δtime",
            "vecycle tx [GiB]",
        ]);
        for pct in updates {
            let mut guest = Guest::new(DigestMemory::zeroed(ram.pages_ceil()));
            let mut ramdisk =
                RamdiskWorkload::fill(&mut guest, Ratio::new(0.9), opts.seed ^ u64::from(pct));
            let checkpoint = guest.memory().snapshot();
            ramdisk.update_fraction(&mut guest, Ratio::new(f64::from(pct) / 100.0));

            let qemu = engine
                .migrate(guest.memory(), Strategy::full())
                .expect("non-empty guest");
            let vecycle = engine
                .migrate(guest.memory(), Strategy::vecycle(&checkpoint))
                .expect("non-empty guest");

            let tq = qemu.total_time().as_secs_f64();
            let tv = vecycle.total_time().as_secs_f64();
            t.row(vec![
                format!("{pct}"),
                format!("{tq:.1}"),
                format!("{tv:.1}"),
                format!("{:+.0}%", (tv / tq - 1.0) * 100.0),
                format!("{:.2}", vecycle.source_traffic().as_gib_f64()),
            ]);
            let label = |s: &str| format!("{link_name}/{pct}pct/{s}");
            log.record("fig7", label("qemu"), "time_s", tq);
            log.record("fig7", label("vecycle"), "time_s", tv);
            log.record(
                "fig7",
                label("vecycle"),
                "traffic_gib",
                vecycle.source_traffic().as_gib_f64(),
            );
        }
        print!("{}", t.render());
    }

    println!(
        "\nPaper targets: QEMU flat across update rates; VeCycle grows\n\
         linearly and converges on QEMU at 100% (LAN reductions ≈ −68%,\n\
         −49%, −27% at 25/50/75%; WAN −72%, −51%, −27%). Note the\n\
         zero-page effect: the 10% of RAM outside the ramdisk stays\n\
         reusable even at 100% updates."
    );
    opts.finish(&log);
}
