//! Figure 6: best-case (idle VM) migration time and traffic vs RAM size.
//!
//! An idle Ubuntu guest ping-pongs between the two benchmark hosts; the
//! destination of each migration holds a checkpoint written ~30 minutes
//! earlier. QEMU 2.0 (full first round) vs VeCycle, over the gigabit LAN
//! and the emulated CloudNet WAN.

use vecycle_analysis::{ExperimentLog, Table};
use vecycle_bench::Options;
use vecycle_core::{MigrationEngine, Strategy};
use vecycle_mem::{workload::IdleWorkload, DigestMemory, Guest};
use vecycle_net::LinkSpec;
use vecycle_types::{Bytes, SimDuration};

fn main() {
    let opts = Options::from_args();
    let mut log = ExperimentLog::new();
    let sizes_mib = [1024u64, 2048, 4096, 6144];
    let links = [
        ("lan", LinkSpec::lan_gigabit()),
        ("wan", LinkSpec::wan_cloudnet()),
    ];

    for (link_name, link) in links {
        let engine = MigrationEngine::new(link).with_threads(opts.threads);
        println!("\nFigure 6 ({link_name}) — idle VM, QEMU 2.0 vs VeCycle");
        let mut t = Table::new(vec![
            "RAM [MiB]",
            "qemu time [s]",
            "vecycle time [s]",
            "Δtime",
            "qemu tx",
            "vecycle tx",
            "Δtraffic",
        ]);
        for mib in sizes_mib {
            let ram = Bytes::from_mib(mib);
            // Guest state: memory filled once with random data (the
            // paper's 95%-fill program), then 30 idle minutes of
            // background-daemon writes separate checkpoint from now.
            let mut guest = Guest::new(
                DigestMemory::with_uniform_content(ram, opts.seed ^ mib).expect("page-aligned"),
            );
            let checkpoint = guest.memory().snapshot();
            let mut daemons = IdleWorkload::new(opts.seed ^ mib ^ 1, 2.0);
            use vecycle_mem::workload::GuestWorkload;
            daemons.advance(&mut guest, SimDuration::from_mins(30));

            let qemu = engine
                .migrate(guest.memory(), Strategy::full())
                .expect("non-empty guest");
            let vecycle = engine
                .migrate(guest.memory(), Strategy::vecycle(&checkpoint))
                .expect("non-empty guest");

            let tq = qemu.total_time().as_secs_f64();
            let tv = vecycle.total_time().as_secs_f64();
            let xq = qemu.source_traffic();
            let xv = vecycle.source_traffic();
            t.row(vec![
                format!("{mib}"),
                format!("{tq:.1}"),
                format!("{tv:.1}"),
                format!("{:+.0}%", (tv / tq - 1.0) * 100.0),
                format!("{xq}"),
                format!("{xv}"),
                format!("{:+.0}%", (xv.as_f64() / xq.as_f64() - 1.0) * 100.0),
            ]);
            let label = |s: &str| format!("{link_name}/{mib}MiB/{s}");
            log.record("fig6", label("qemu"), "time_s", tq);
            log.record("fig6", label("vecycle"), "time_s", tv);
            log.record("fig6", label("qemu"), "traffic_gib", xq.as_gib_f64());
            log.record("fig6", label("vecycle"), "traffic_gib", xv.as_gib_f64());
        }
        print!("{}", t.render());
    }

    println!(
        "\nPaper targets: LAN ~10 s/GiB for QEMU vs 3 s (1 GiB) and 13 s\n\
         (6 GiB) for VeCycle (−76% time); WAN 177 s → 16 s for 1 GiB;\n\
         source traffic −94% (idle VM, near-total reuse)."
    );
    opts.finish(&log);
}
