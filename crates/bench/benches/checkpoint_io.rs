//! Checkpoint serialization throughput: the disk-facing hot path of the
//! §3 cycle (one write per outgoing migration, one read per incoming).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vecycle_checkpoint::Checkpoint;
use vecycle_mem::DigestMemory;
use vecycle_types::{PageCount, SimTime, VmId};

fn checkpoint_io(c: &mut Criterion) {
    for pages in [1u64 << 12, 1 << 16] {
        let mem = DigestMemory::with_distinct_content(PageCount::new(pages), 7);
        let cp = Checkpoint::capture(VmId::new(0), SimTime::EPOCH, &mem);
        let mut encoded = Vec::new();
        cp.write_to(&mut encoded).unwrap();

        let mut group = c.benchmark_group(format!("checkpoint_io_{pages}_pages"));
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", pages), &cp, |b, cp| {
            b.iter(|| {
                let mut buf = Vec::with_capacity(encoded.len());
                cp.write_to(&mut buf).unwrap();
                buf
            });
        });
        group.bench_with_input(BenchmarkId::new("decode", pages), &encoded, |b, bytes| {
            b.iter(|| Checkpoint::read_from(std::hint::black_box(&bytes[..])).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("build_index", pages), &cp, |b, cp| {
            b.iter(|| cp.build_index())
        });
        group.finish();
    }
}

criterion_group!(benches, checkpoint_io);
criterion_main!(benches);
