//! §3.3 index ablation: sorted-array binary search vs hash map.
//!
//! The destination looks one checksum up per received message; for a
//! 4 GiB VM that is up to 2^20 lookups per migration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vecycle_checkpoint::{ChecksumIndex, HashChecksumIndex, PageLookup};
use vecycle_types::PageDigest;

fn make_digests(n: u64) -> Vec<PageDigest> {
    (0..n).map(|i| PageDigest::from_content_id(i + 1)).collect()
}

fn index_lookup(c: &mut Criterion) {
    for n in [1u64 << 14, 1 << 18] {
        let digests = make_digests(n);
        let sorted = ChecksumIndex::build(digests.clone());
        let hashed = HashChecksumIndex::build(digests.clone());
        // Probe mix: half hits, half misses.
        let probes: Vec<PageDigest> = (0..1024u64)
            .map(|i| {
                if i % 2 == 0 {
                    PageDigest::from_content_id(i % n + 1)
                } else {
                    PageDigest::from_content_id(n + i)
                }
            })
            .collect();

        let mut group = c.benchmark_group(format!("index_lookup_{n}_entries"));
        group.bench_with_input(BenchmarkId::new("sorted_array", n), &probes, |b, probes| {
            b.iter(|| {
                probes
                    .iter()
                    .filter(|p| sorted.contains(std::hint::black_box(**p)))
                    .count()
            });
        });
        group.bench_with_input(BenchmarkId::new("hash_map", n), &probes, |b, probes| {
            b.iter(|| {
                probes
                    .iter()
                    .filter(|p| hashed.contains(std::hint::black_box(**p)))
                    .count()
            });
        });
        group.finish();

        let mut group = c.benchmark_group(format!("index_build_{n}_entries"));
        group.bench_function("sorted_array", |b| {
            b.iter(|| ChecksumIndex::build(std::hint::black_box(digests.clone())));
        });
        group.bench_function("hash_map", |b| {
            b.iter(|| HashChecksumIndex::build(std::hint::black_box(digests.clone())));
        });
        group.finish();
    }
}

criterion_group!(benches, index_lookup);
criterion_main!(benches);
