//! First-round page-scan scaling: wall clock at 1, 2, 4, 8 worker
//! threads over a 1 GiB image (ISSUE acceptance: ≥2× at 4 threads).
//!
//! Two groups: the full engine scan (binary-search-heavy VeCycle
//! classification against a 262144-entry checksum index) and the
//! parallel [`ChecksumIndex::build_parallel`] sort/merge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use vecycle_checkpoint::ChecksumIndex;
use vecycle_core::{MigrationEngine, Strategy};
use vecycle_mem::{DigestMemory, MemoryImage, MutableMemory, PageContent};
use vecycle_net::LinkSpec;
use vecycle_types::{Bytes, PageIndex};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// A 1 GiB image diverged from its checkpoint so the scan mixes all
/// message classes: reusable pages, checksum hits, zeros, dedup runs.
fn scan_workload() -> (DigestMemory, Arc<ChecksumIndex>) {
    let ram = Bytes::from_gib(1);
    let cp = DigestMemory::with_uniform_content(ram, 0x5ca1e).expect("page-aligned");
    let mut vm = cp.snapshot();
    let n = vm.page_count().as_u64();
    // 25% fresh content (full sends), 6% zeroed, 6% duplicated runs.
    for i in 0..n / 4 {
        vm.write_page(PageIndex::new(i * 4), PageContent::ContentId((1 << 50) | i));
    }
    for i in 0..n / 16 {
        vm.write_page(PageIndex::new(i * 16 + 1), PageContent::Zero);
    }
    for i in 0..n / 16 {
        vm.write_page(
            PageIndex::new(i * 16 + 2),
            PageContent::ContentId((1 << 51) | (i % 64)),
        );
    }
    let index = Arc::new(ChecksumIndex::build(cp.digests()));
    (vm, index)
}

fn first_round_scan(c: &mut Criterion) {
    let (vm, index) = scan_workload();
    let ram = Bytes::from_pages(vm.page_count().as_u64());
    let strategy = Strategy::vecycle_with_index(Arc::clone(&index)).with_dedup();

    let mut group = c.benchmark_group("first_round_scan_1GiB");
    group.throughput(Throughput::Bytes(ram.as_u64()));
    for threads in THREADS {
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit()).with_threads(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &engine, |b, e| {
            b.iter(|| {
                e.migrate(std::hint::black_box(&vm), strategy.clone())
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn index_build(c: &mut Criterion) {
    let (vm, _) = scan_workload();
    let digests = vm.digests();
    let ram = Bytes::from_pages(digests.len() as u64);

    let mut group = c.benchmark_group("index_build_1GiB");
    group.throughput(Throughput::Bytes(ram.as_u64()));
    for threads in THREADS {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| ChecksumIndex::build_parallel(std::hint::black_box(digests.clone()), t));
        });
    }
    group.finish();
}

criterion_group!(benches, first_round_scan, index_build);
criterion_main!(benches);
