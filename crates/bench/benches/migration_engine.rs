//! Engine throughput: simulated migrations per second at 256 MiB.
//!
//! Not a paper figure — this guards the harness itself: the VDI and
//! sweep experiments run hundreds of engine invocations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use vecycle_checkpoint::ChecksumIndex;
use vecycle_core::{MigrationEngine, Strategy};
use vecycle_mem::{DigestMemory, MemoryImage, MutableMemory, PageContent};
use vecycle_net::LinkSpec;
use vecycle_types::{Bytes, PageIndex};

fn migration_engine(c: &mut Criterion) {
    let vm0 = DigestMemory::with_uniform_content(Bytes::from_mib(256), 3).unwrap();
    let mut vm = vm0.snapshot();
    // 25% divergence from the checkpoint.
    let n = vm.page_count().as_u64();
    for i in 0..n / 4 {
        vm.write_page(PageIndex::new(i * 4), PageContent::ContentId((1 << 50) | i));
    }
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    let index = Arc::new(ChecksumIndex::build(vm0.digests()));

    let mut group = c.benchmark_group("migrate_256MiB");
    group.sample_size(20);
    for (name, strategy) in [
        ("full", Strategy::full()),
        ("dedup", Strategy::dedup()),
        ("vecycle", Strategy::vecycle_with_index(Arc::clone(&index))),
        (
            "vecycle+dedup",
            Strategy::vecycle_with_index(Arc::clone(&index)).with_dedup(),
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, s| {
            b.iter(|| {
                engine
                    .migrate(std::hint::black_box(&vm), s.clone())
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, migration_engine);
criterion_main!(benches);
