//! Single-core scan/digest hot-path microbench.
//!
//! Three components dominate a single-core first-round scan (§3.4's
//! checksum bottleneck plus the dedup bookkeeping around it):
//!
//! 1. page digesting — multi-lane `digest_pages` vs the scalar per-page
//!    path, in pages/s and GiB/s;
//! 2. digest-keyed map lookups — the swiss-table [`DigestTable`] vs
//!    `std::collections::HashMap` (SipHash) and the sorted-array binary
//!    search, in lookups/s;
//! 3. hex rendering of digests — the LUT `to_hex` (micro-asserted
//!    against the `format!` reference it replaced).
//!
//! `hotpath_baseline` (a bin target) measures the same path without the
//! criterion harness and records pages/s into
//! `results/hotpath_baseline.json` for the CI regression gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::collections::HashMap;
use vecycle_checkpoint::{ChecksumIndex, DigestTable, HashChecksumIndex, PageLookup};
use vecycle_hash::ChecksumAlgorithm;
use vecycle_types::{PageDigest, PageIndex};

/// Deterministic patterned pages: 1-in-8 zero (typical idle-guest mix).
fn make_pages(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            if i % 8 == 0 {
                vec![0u8; 4096]
            } else {
                let seed = (i as u8).wrapping_mul(37).wrapping_add(1);
                (0..4096u32)
                    .map(|j| seed.wrapping_mul((j % 251) as u8).wrapping_add(j as u8))
                    .collect()
            }
        })
        .collect()
}

fn digest_throughput(c: &mut Criterion) {
    let pages = make_pages(512);
    let views: Vec<&[u8]> = pages.iter().map(Vec::as_slice).collect();

    let mut group = c.benchmark_group("digest_pages");
    group.throughput(Throughput::Bytes(4096 * views.len() as u64));
    for algo in ChecksumAlgorithm::ALL {
        group.bench_with_input(BenchmarkId::new("multilane", algo), &views, |b, views| {
            b.iter(|| algo.digest_pages(std::hint::black_box(views)));
        });
        group.bench_with_input(BenchmarkId::new("scalar", algo), &views, |b, views| {
            b.iter(|| {
                std::hint::black_box(views)
                    .iter()
                    .map(|p| algo.page_digest(p))
                    .collect::<Vec<_>>()
            });
        });
    }
    group.finish();
}

fn index_throughput(c: &mut Criterion) {
    let n = 1u64 << 18;
    let digests: Vec<PageDigest> = (0..n).map(|i| PageDigest::from_content_id(i + 1)).collect();
    // Probe mix: half hits, half misses — the destination's per-message
    // lookup profile.
    let probes: Vec<PageDigest> = (0..4096u64)
        .map(|i| {
            if i % 2 == 0 {
                PageDigest::from_content_id(i % n + 1)
            } else {
                PageDigest::from_content_id(n + i)
            }
        })
        .collect();

    let swiss = HashChecksumIndex::build(digests.clone());
    let sorted = ChecksumIndex::build(digests.clone());
    let mut sip: HashMap<PageDigest, PageIndex> = HashMap::with_capacity(digests.len());
    for (i, &d) in digests.iter().enumerate() {
        sip.entry(d).or_insert_with(|| PageIndex::new(i as u64));
    }

    let mut group = c.benchmark_group("digest_lookup_262144_entries");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_with_input(
        BenchmarkId::from_parameter("swiss"),
        &probes,
        |b, probes| {
            b.iter(|| {
                probes
                    .iter()
                    .filter(|p| swiss.contains(std::hint::black_box(**p)))
                    .count()
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("siphash_hashmap"),
        &probes,
        |b, probes| {
            b.iter(|| {
                probes
                    .iter()
                    .filter(|p| sip.contains_key(std::hint::black_box(p)))
                    .count()
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("sorted_checksum_index"),
        &probes,
        |b, probes| {
            b.iter(|| {
                probes
                    .iter()
                    .filter(|p| sorted.contains(std::hint::black_box(**p)))
                    .count()
            });
        },
    );
    group.finish();

    // Insert-heavy profile: the scan's per-page or_insert.
    let mut group = c.benchmark_group("digest_insert_first");
    group.throughput(Throughput::Elements(digests.len().min(65_536) as u64));
    let slice = &digests[..digests.len().min(65_536)];
    group.bench_function("swiss", |b| {
        b.iter(|| {
            let mut t: DigestTable<PageIndex> = DigestTable::new();
            for (i, &d) in std::hint::black_box(slice).iter().enumerate() {
                t.or_insert(d, PageIndex::new(i as u64));
            }
            t.len()
        });
    });
    group.bench_function("siphash_hashmap", |b| {
        b.iter(|| {
            let mut t: HashMap<PageDigest, PageIndex> = HashMap::new();
            for (i, &d) in std::hint::black_box(slice).iter().enumerate() {
                t.entry(d).or_insert_with(|| PageIndex::new(i as u64));
            }
            t.len()
        });
    });
    group.finish();
}

fn hex_rendering(c: &mut Criterion) {
    let digests: Vec<[u8; 16]> = (0..256u64)
        .map(|i| PageDigest::from_content_id(i + 1).into_bytes())
        .collect();

    // Micro-assert: the LUT rewrite renders identically to the
    // format!-per-byte reference it replaced.
    for d in &digests {
        let reference: String = d.iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(vecycle_hash::to_hex(d), reference);
    }

    let mut group = c.benchmark_group("to_hex");
    group.throughput(Throughput::Elements(digests.len() as u64));
    group.bench_function("lut", |b| {
        b.iter(|| {
            std::hint::black_box(&digests)
                .iter()
                .map(vecycle_hash::to_hex)
                .map(|s| s.len())
                .sum::<usize>()
        });
    });
    group.bench_function("format_per_byte", |b| {
        b.iter(|| {
            std::hint::black_box(&digests)
                .iter()
                .map(|d| d.iter().map(|b| format!("{b:02x}")).collect::<String>())
                .map(|s| s.len())
                .sum::<usize>()
        });
    });
    group.finish();
}

criterion_group!(benches, digest_throughput, index_throughput, hex_rendering);
criterion_main!(benches);
