//! Fingerprint-pair similarity throughput — the inner loop of the
//! Figure 1/2/5 analyses (56 k pairs per machine).

use criterion::{criterion_group, criterion_main, Criterion};
use vecycle_trace::{Fingerprint, PairStats};
use vecycle_types::{PageDigest, SimDuration, SimTime};

fn fingerprint(n: u64, overlap: u64, salt: u64) -> Fingerprint {
    let pages = (0..n)
        .map(|i| {
            let id = if i < overlap {
                i + 1
            } else {
                (salt << 32) | (i + 1)
            };
            PageDigest::from_content_id(id)
        })
        .collect();
    Fingerprint::new(SimTime::EPOCH + SimDuration::from_mins(salt), pages)
}

fn similarity(c: &mut Criterion) {
    let n = 1u64 << 16; // a 256 MiB image at full page density
    let a = fingerprint(n, n, 0);
    let b = fingerprint(n, n / 2, 7);

    c.bench_function("similarity_64k_pages", |bch| {
        // Forces the cached unique() sets, then measures the merge walk.
        let _ = a.similarity(&b);
        bch.iter(|| std::hint::black_box(&a).similarity(std::hint::black_box(&b)));
    });

    c.bench_function("pair_stats_64k_pages", |bch| {
        bch.iter(|| PairStats::compute(std::hint::black_box(&a), std::hint::black_box(&b)));
    });

    c.bench_function("unique_set_build_64k_pages", |bch| {
        bch.iter(|| {
            let f = fingerprint(n, n / 2, 13);
            std::hint::black_box(f.unique_count())
        });
    });
}

criterion_group!(benches, similarity);
criterion_main!(benches);
