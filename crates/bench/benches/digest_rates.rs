//! §3.4 checksum-rate microbench: MiB/s per algorithm on 4 KiB pages.
//!
//! The paper's premise is that MD5 at ~350 MiB/s outruns gigabit
//! Ethernet (~120 MiB/s); this bench measures our from-scratch
//! implementations the same way (one digest per 4 KiB page).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vecycle_hash::ChecksumAlgorithm;

fn digest_rates(c: &mut Criterion) {
    let page = vec![0xa5u8; 4096];
    let mut group = c.benchmark_group("page_digest");
    group.throughput(Throughput::Bytes(4096));
    for algo in ChecksumAlgorithm::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(algo), &page, |b, page| {
            b.iter(|| algo.page_digest(std::hint::black_box(page)));
        });
    }
    group.finish();

    // Zero-page fast path used by the migration path.
    let zero = vec![0u8; 4096];
    let mut group = c.benchmark_group("page_digest_special");
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("md5_zero_page_shortcut", |b| {
        b.iter(|| vecycle_hash::page_digest(std::hint::black_box(&zero)));
    });
    group.finish();
}

criterion_group!(benches, digest_rates);
criterion_main!(benches);
