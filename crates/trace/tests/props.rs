//! Property tests: similarity metrics and binning invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use vecycle_trace::{BinnedSimilarity, Fingerprint};
use vecycle_types::{PageDigest, SimDuration, SimTime};

fn fp(mins: u64, ids: &[u64]) -> Fingerprint {
    Fingerprint::new(
        SimTime::EPOCH + SimDuration::from_mins(mins),
        ids.iter()
            .map(|&i| PageDigest::from_content_id(i))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Binned statistics satisfy min ≤ avg ≤ max and count all pairs
    /// within range exactly once.
    #[test]
    fn bins_are_consistent(series in vec(vec(0u64..16, 1..12), 2..20)) {
        let fps: Vec<Fingerprint> = series
            .iter()
            .enumerate()
            .map(|(i, ids)| fp(i as u64 * 30, ids))
            .collect();
        let binned = BinnedSimilarity::compute(
            &fps,
            SimDuration::from_mins(30),
            SimDuration::from_hours(24),
        );
        let mut pair_total = 0u64;
        for bin in binned.bins() {
            prop_assert!(bin.min <= bin.avg, "min > avg in {bin:?}");
            prop_assert!(bin.avg <= bin.max, "avg > max in {bin:?}");
            prop_assert!(bin.min.is_fraction() && bin.max.is_fraction());
            prop_assert!(bin.pairs > 0);
            pair_total += bin.pairs;
        }
        // All pairs within 24 h must be counted once.
        let n = fps.len() as u64;
        let within: u64 = (0..n)
            .map(|i| ((i + 1)..n).filter(|j| (j - i) * 30 <= 24 * 60).count() as u64)
            .sum();
        prop_assert_eq!(pair_total, within);
    }

    /// Similarity denominators: sim(a,b)·|Ua| is the intersection size,
    /// which is symmetric.
    #[test]
    fn similarity_intersection_is_symmetric(a in vec(0u64..32, 1..64), b in vec(0u64..32, 1..64)) {
        let fa = fp(0, &a);
        let fb = fp(30, &b);
        let ia = fa.similarity(&fb).as_f64() * fa.unique_count().as_u64() as f64;
        let ib = fb.similarity(&fa).as_f64() * fb.unique_count().as_u64() as f64;
        prop_assert!((ia - ib).abs() < 1e-6, "intersections differ: {ia} vs {ib}");
    }

    /// Duplicate fraction and zero fraction are consistent with unique
    /// counts.
    #[test]
    fn fraction_identities(ids in vec(0u64..8, 1..128)) {
        let f = fp(0, &ids);
        let dup = f.duplicate_fraction().as_f64();
        let expected = 1.0 - f.unique_count().as_u64() as f64 / ids.len() as f64;
        prop_assert!((dup - expected).abs() < 1e-12);
        prop_assert!(f.zero_fraction().is_fraction());
    }
}
