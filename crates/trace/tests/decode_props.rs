//! Property tests: the trace-file decoder is total.

use proptest::collection::vec;
use proptest::prelude::*;

use vecycle_trace::Trace;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the trace loader.
    #[test]
    fn decoder_is_total_on_garbage(bytes in vec(any::<u8>(), 0..8192)) {
        let _ = Trace::read_from(&bytes[..]);
    }
}
