//! [`TraceStats`]: one-look summaries of a trace.

use vecycle_types::{Ratio, SimDuration};

use crate::{BinnedSimilarity, Trace};

/// Headline statistics of one machine's trace — the numbers the paper
/// quotes in prose ("the average similarity after 24 hours is between
/// 40% and 20%", "duplicate pages vary between 5% and 20%").
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Number of recorded fingerprints.
    pub fingerprints: usize,
    /// Pages per fingerprint (scaled).
    pub pages: u64,
    /// Mean duplicate-page fraction across fingerprints.
    pub mean_duplicates: Ratio,
    /// Mean zero-page fraction across fingerprints.
    pub mean_zeros: Ratio,
    /// Average similarity at Δt = 1 h (None if the trace is too short
    /// or too sparse to populate the bin).
    pub avg_similarity_1h: Option<Ratio>,
    /// Average similarity at Δt = 24 h.
    pub avg_similarity_24h: Option<Ratio>,
}

impl TraceStats {
    /// Computes the summary for `trace`.
    pub fn compute(trace: &Trace) -> TraceStats {
        let fps = trace.fingerprints();
        let n = fps.len();
        let pages = fps.first().map(|f| f.pages().len() as u64).unwrap_or(0);
        let mean = |f: &dyn Fn(&crate::Fingerprint) -> f64| {
            if n == 0 {
                0.0
            } else {
                fps.iter().map(f).sum::<f64>() / n as f64
            }
        };
        let mean_duplicates = Ratio::new(mean(&|fp| fp.duplicate_fraction().as_f64()));
        let mean_zeros = Ratio::new(mean(&|fp| fp.zero_fraction().as_f64()));

        let series =
            BinnedSimilarity::compute(fps, SimDuration::from_mins(30), SimDuration::from_hours(25));
        let exact_at = |hours: u64| {
            let want = SimDuration::from_hours(hours);
            series
                .bins()
                .iter()
                .find(|b| b.delta == want)
                .map(|b| b.avg)
        };
        TraceStats {
            fingerprints: n,
            pages,
            mean_duplicates,
            mean_zeros,
            avg_similarity_1h: exact_at(1),
            avg_similarity_24h: exact_at(24),
        }
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} fingerprints × {} pages; dup {}, zero {}; sim@1h {}, sim@24h {}",
            self.fingerprints,
            self.pages,
            self.mean_duplicates,
            self.mean_zeros,
            self.avg_similarity_1h
                .map(|r| r.to_string())
                .unwrap_or_else(|| "–".into()),
            self.avg_similarity_24h
                .map(|r| r.to_string())
                .unwrap_or_else(|| "–".into()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{catalog, TraceGenerator};

    #[test]
    fn stats_of_a_server_trace_hit_calibration_bands() {
        let m = &catalog()[1]; // Server B
        let trace = TraceGenerator::new(m.profile.clone(), 1)
            .scale_pages(2048)
            .generate()
            .unwrap();
        let s = TraceStats::compute(&trace);
        // Servers reboot during the week, dropping a handful of
        // fingerprints (§2.3).
        assert!(s.fingerprints > 320 && s.fingerprints <= 337);
        assert_eq!(s.pages, 2048);
        let dup = s.mean_duplicates.as_f64();
        assert!(dup > 0.05 && dup < 0.25, "dup = {dup}");
        assert!(s.mean_zeros.as_f64() < 0.06);
        let s24 = s.avg_similarity_24h.unwrap().as_f64();
        assert!(s24 > 0.25 && s24 < 0.55, "sim@24h = {s24}");
        let s1 = s.avg_similarity_1h.unwrap().as_f64();
        assert!(s1 > s24, "similarity must decay");
    }

    #[test]
    fn empty_trace_is_harmless() {
        let trace = Trace::from_parts(vecycle_types::Bytes::from_gib(1), Vec::new());
        let s = TraceStats::compute(&trace);
        assert_eq!(s.fingerprints, 0);
        assert!(s.avg_similarity_24h.is_none());
        assert!(s.to_string().contains("–"));
    }

    #[test]
    fn display_is_informative() {
        let m = &catalog()[0];
        let mut p = m.profile.clone();
        p.trace_duration = SimDuration::from_hours(3);
        let trace = TraceGenerator::new(p, 2)
            .scale_pages(256)
            .generate()
            .unwrap();
        let s = TraceStats::compute(&trace);
        let text = s.to_string();
        assert!(text.contains("7 fingerprints"));
        assert!(text.contains("256 pages"));
    }
}
