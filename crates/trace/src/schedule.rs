//! [`ActivitySchedule`]: diurnal/weekly activity modulation.

use vecycle_types::SimTime;

/// How active a machine is as a function of wall-clock time.
///
/// Activity scales the per-page update rates of the synthetic model:
/// an activity of 1.0 means the profile's full update rates apply, 0.0
/// means the machine writes nothing. The paper's minimum/average/maximum
/// similarity spread (Figure 1) "likely stems from different activity
/// levels" — this schedule is what produces that spread.
///
/// The simulation epoch is taken to be **Monday 00:00**.
#[derive(Debug, Clone, PartialEq)]
pub enum ActivitySchedule {
    /// Constant activity, e.g. an always-busy web crawler.
    Constant(f64),
    /// Office-hours pattern: `busy` during [start_hour, end_hour) on
    /// weekdays, `quiet` otherwise (nights and weekends).
    OfficeHours {
        /// Activity during working hours.
        busy: f64,
        /// Activity outside working hours.
        quiet: f64,
        /// First busy hour of the day (0-23).
        start_hour: u8,
        /// First quiet hour after work (0-23, exclusive end).
        end_hour: u8,
    },
    /// A server's mild diurnal wave: `base` plus `swing` · sin(day phase),
    /// peaking mid-day. Never negative.
    Diurnal {
        /// Mean activity.
        base: f64,
        /// Amplitude of the daily wave.
        swing: f64,
    },
}

impl ActivitySchedule {
    /// The activity multiplier at instant `t`.
    pub fn activity(&self, t: SimTime) -> f64 {
        let hours = t.since_epoch().as_hours_f64();
        match *self {
            ActivitySchedule::Constant(a) => a,
            ActivitySchedule::OfficeHours {
                busy,
                quiet,
                start_hour,
                end_hour,
            } => {
                if Self::is_weekend(hours) {
                    return quiet;
                }
                let hour_of_day = hours.rem_euclid(24.0);
                if (f64::from(start_hour)..f64::from(end_hour)).contains(&hour_of_day) {
                    busy
                } else {
                    quiet
                }
            }
            ActivitySchedule::Diurnal { base, swing } => {
                let phase = hours.rem_euclid(24.0) / 24.0 * std::f64::consts::TAU;
                // Peak at 14:00: shift so sin crests there.
                let shifted = phase - std::f64::consts::TAU * (14.0 / 24.0 - 0.25);
                (base + swing * shifted.sin()).max(0.0)
            }
        }
    }

    /// True if `hours` since the Monday-00:00 epoch falls on a weekend.
    pub fn is_weekend(hours: f64) -> bool {
        let day = (hours.rem_euclid(7.0 * 24.0) / 24.0) as u32;
        day >= 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecycle_types::SimDuration;

    fn at(hours: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_hours(hours)
    }

    #[test]
    fn constant_is_constant() {
        let s = ActivitySchedule::Constant(0.7);
        assert_eq!(s.activity(at(0)), 0.7);
        assert_eq!(s.activity(at(1000)), 0.7);
    }

    #[test]
    fn office_hours_distinguish_day_and_night() {
        let s = ActivitySchedule::OfficeHours {
            busy: 1.0,
            quiet: 0.05,
            start_hour: 9,
            end_hour: 17,
        };
        assert_eq!(s.activity(at(10)), 1.0); // Monday 10:00
        assert_eq!(s.activity(at(3)), 0.05); // Monday 03:00
        assert_eq!(s.activity(at(17)), 0.05); // Monday 17:00 (exclusive)
        assert_eq!(s.activity(at(24 + 9)), 1.0); // Tuesday 09:00
    }

    #[test]
    fn office_hours_idle_on_weekends() {
        let s = ActivitySchedule::OfficeHours {
            busy: 1.0,
            quiet: 0.1,
            start_hour: 9,
            end_hour: 17,
        };
        // Saturday 12:00 = 5*24 + 12 hours after Monday 00:00.
        assert_eq!(s.activity(at(5 * 24 + 12)), 0.1);
        // Sunday 12:00.
        assert_eq!(s.activity(at(6 * 24 + 12)), 0.1);
        // Next Monday 12:00 is busy again.
        assert_eq!(s.activity(at(7 * 24 + 12)), 1.0);
    }

    #[test]
    fn diurnal_peaks_mid_day_and_never_negative() {
        let s = ActivitySchedule::Diurnal {
            base: 0.3,
            swing: 0.5,
        };
        let afternoon = s.activity(at(14));
        let night = s.activity(at(2));
        assert!(afternoon > night);
        for h in 0..48 {
            assert!(s.activity(at(h)) >= 0.0, "hour {h}");
        }
    }

    #[test]
    fn weekend_detection() {
        assert!(!ActivitySchedule::is_weekend(0.0)); // Monday
        assert!(!ActivitySchedule::is_weekend(4.0 * 24.0 + 23.0)); // Friday night
        assert!(ActivitySchedule::is_weekend(5.0 * 24.0)); // Saturday 00:00
        assert!(ActivitySchedule::is_weekend(6.0 * 24.0 + 12.0)); // Sunday noon
        assert!(!ActivitySchedule::is_weekend(7.0 * 24.0)); // Monday again
    }
}
