//! [`Fingerprint`]: one timestamped digest-per-page observation.

use std::collections::HashSet;
use std::sync::OnceLock;

use vecycle_types::{PageCount, PageDigest, Ratio, SimTime};

/// A memory fingerprint: the digest of every page at one instant.
///
/// Mirrors the Memory Buddies trace format the paper analyzes — "each
/// traced machine creates one memory fingerprint every 30 minutes" (§2.3).
/// The similarity of two fingerprints is defined on their *unique* hash
/// sets: `sim(Fa, Fb) = |Ua ∩ Ub| / |Ua|`.
#[derive(Debug)]
pub struct Fingerprint {
    taken_at: SimTime,
    pages: Vec<PageDigest>,
    unique_sorted: OnceLock<Vec<PageDigest>>,
}

impl Fingerprint {
    /// Creates a fingerprint from the page digests observed at `taken_at`.
    pub fn new(taken_at: SimTime, pages: Vec<PageDigest>) -> Self {
        Fingerprint {
            taken_at,
            pages,
            unique_sorted: OnceLock::new(),
        }
    }

    /// When the fingerprint was taken.
    pub fn taken_at(&self) -> SimTime {
        self.taken_at
    }

    /// The per-page digests, in page order.
    pub fn pages(&self) -> &[PageDigest] {
        &self.pages
    }

    /// Number of pages.
    pub fn page_count(&self) -> PageCount {
        PageCount::new(self.pages.len() as u64)
    }

    /// The deduplicated, sorted digest list `U` (computed once, cached).
    pub fn unique(&self) -> &[PageDigest] {
        self.unique_sorted.get_or_init(|| {
            let mut v = self.pages.clone();
            v.sort_unstable();
            v.dedup();
            v
        })
    }

    /// Number of unique hashes `|U|`.
    pub fn unique_count(&self) -> PageCount {
        PageCount::new(self.unique().len() as u64)
    }

    /// Fraction of duplicate pages, `1 − unique/total` (§4.2, Figure 4).
    pub fn duplicate_fraction(&self) -> Ratio {
        if self.pages.is_empty() {
            return Ratio::ZERO;
        }
        Ratio::new(1.0 - self.unique().len() as f64 / self.pages.len() as f64)
    }

    /// Fraction of all-zero pages (Figure 4, right).
    pub fn zero_fraction(&self) -> Ratio {
        if self.pages.is_empty() {
            return Ratio::ZERO;
        }
        let zeros = self.pages.iter().filter(|d| d.is_zero_page()).count();
        Ratio::new(zeros as f64 / self.pages.len() as f64)
    }

    /// Similarity to `other`: `|U_self ∩ U_other| / |U_self|` (§2.3).
    ///
    /// Note the asymmetry — the denominator is *this* fingerprint's unique
    /// count, matching the paper's definition of the similarity of `Ua`
    /// with `Ub`.
    pub fn similarity(&self, other: &Fingerprint) -> Ratio {
        let ua = self.unique();
        if ua.is_empty() {
            return Ratio::ZERO;
        }
        let shared = sorted_intersection_len(ua, other.unique());
        Ratio::new(shared as f64 / ua.len() as f64)
    }

    /// Pages whose content changed at the same index between `self` (the
    /// earlier observation) and `other` — the dirty set a tracker would
    /// report (§4.3: "we say a page is dirty if its content changed
    /// between the two fingerprints"). Pages beyond the shorter image
    /// count as dirty.
    pub fn dirty_pages_to(&self, other: &Fingerprint) -> PageCount {
        let common = self.pages.len().min(other.pages.len());
        let changed = self.pages[..common]
            .iter()
            .zip(&other.pages[..common])
            .filter(|(a, b)| a != b)
            .count();
        let extra = other.pages.len().saturating_sub(common);
        PageCount::new((changed + extra) as u64)
    }

    /// The set of digests present in `other` but absent from `self` —
    /// what a checkpoint of `self` cannot supply.
    pub fn novel_unique_in(&self, other: &Fingerprint) -> PageCount {
        let ua: HashSet<&PageDigest> = self.unique().iter().collect();
        let novel = other.unique().iter().filter(|d| !ua.contains(d)).count();
        PageCount::new(novel as u64)
    }

    /// Pages of `other` (with multiplicity) whose digest is absent from
    /// `self`'s unique set — what VeCycle without dedup transfers.
    pub fn novel_pages_in(&self, other: &Fingerprint) -> PageCount {
        let ua = self.unique();
        let novel = other
            .pages
            .iter()
            .filter(|d| ua.binary_search(d).is_err())
            .count();
        PageCount::new(novel as u64)
    }
}

/// Length of the intersection of two sorted, deduplicated slices.
fn sorted_intersection_len(a: &[PageDigest], b: &[PageDigest]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut n = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(id: u64) -> PageDigest {
        PageDigest::from_content_id(id)
    }

    fn fp(ids: &[u64]) -> Fingerprint {
        Fingerprint::new(SimTime::EPOCH, ids.iter().map(|&i| d(i)).collect())
    }

    #[test]
    fn unique_dedups_and_sorts() {
        let f = fp(&[3, 1, 3, 2, 1]);
        assert_eq!(f.unique_count(), PageCount::new(3));
        let u = f.unique();
        assert!(u.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn similarity_is_reflexive() {
        let f = fp(&[1, 2, 3, 4, 2]);
        assert!((f.similarity(&f).as_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_matches_hand_computation() {
        // Ua = {1,2,3}, Ub = {2,3,4,5}; |∩| = 2; sim = 2/3.
        let a = fp(&[1, 2, 3]);
        let b = fp(&[2, 3, 4, 5]);
        assert!((a.similarity(&b).as_f64() - 2.0 / 3.0).abs() < 1e-12);
        // Asymmetric: from b's side, 2/4.
        assert!((b.similarity(&a).as_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disjoint_fingerprints_have_zero_similarity() {
        let a = fp(&[1, 2]);
        let b = fp(&[3, 4]);
        assert_eq!(a.similarity(&b), Ratio::ZERO);
    }

    #[test]
    fn duplicate_and_zero_fractions() {
        let f = Fingerprint::new(
            SimTime::EPOCH,
            vec![d(1), d(1), d(2), PageDigest::ZERO_PAGE],
        );
        // 4 pages, 3 unique -> 25% duplicates; 1 zero page -> 25%.
        assert!((f.duplicate_fraction().as_f64() - 0.25).abs() < 1e-12);
        assert!((f.zero_fraction().as_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn dirty_pages_counts_positional_changes() {
        let a = fp(&[1, 2, 3, 4]);
        let b = fp(&[1, 9, 3, 8]);
        assert_eq!(a.dirty_pages_to(&b), PageCount::new(2));
        // Relocation: content 2 moved from index 1 to index 3.
        let c = fp(&[1, 9, 3, 2]);
        assert_eq!(a.dirty_pages_to(&c), PageCount::new(2));
        // ...but only one *novel* unique digest (9).
        assert_eq!(a.novel_unique_in(&c), PageCount::new(1));
    }

    #[test]
    fn dirty_pages_handles_size_mismatch() {
        let a = fp(&[1, 2]);
        let b = fp(&[1, 2, 3, 4]);
        assert_eq!(a.dirty_pages_to(&b), PageCount::new(2));
    }

    #[test]
    fn novel_pages_counts_multiplicity() {
        let a = fp(&[1, 2]);
        let b = fp(&[1, 7, 7, 7]);
        assert_eq!(a.novel_pages_in(&b), PageCount::new(3));
        assert_eq!(a.novel_unique_in(&b), PageCount::new(1));
    }

    #[test]
    fn empty_fingerprint_edge_cases() {
        let e = fp(&[]);
        let f = fp(&[1]);
        assert_eq!(e.similarity(&f), Ratio::ZERO);
        assert_eq!(e.duplicate_fraction(), Ratio::ZERO);
        assert_eq!(e.zero_fraction(), Ratio::ZERO);
    }
}
