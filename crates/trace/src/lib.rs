//! Memory fingerprints, similarity analysis and synthetic traces.
//!
//! The first half of the paper is *trace analysis*: how similar is a
//! machine's memory to what it was Δt ago (Figures 1, 2), how many pages
//! are duplicates or zeros (Figure 4), and how many pages would each
//! traffic-reduction technique transfer between two observations
//! (Figure 5). The analyses all operate on **fingerprints** — one content
//! digest per page, recorded every 30 minutes, exactly like the Memory
//! Buddies traces the paper uses.
//!
//! The original traces are not redistributable here, so this crate also
//! contains a **synthetic trace generator**: per-machine profiles (server,
//! laptop, web crawler, desktop) whose page-update mixture, duplicate
//! pools, activity schedules and relocation behaviour are calibrated to
//! reproduce the statistical shapes the paper reports. The substitution is
//! sound because every paper analysis is a pure function of the
//! fingerprint sequence.
//!
//! # Examples
//!
//! ```
//! use vecycle_trace::{catalog, TraceGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machine = &catalog()[0]; // Server A
//! // Tiny scale for the example; benches use larger scales.
//! let trace = TraceGenerator::new(machine.profile.clone(), 0x5eed)
//!     .scale_pages(1024)
//!     .generate()?;
//! assert!(trace.fingerprints().len() > 300);
//! let first = &trace.fingerprints()[0];
//! let later = &trace.fingerprints()[48]; // 24 h later
//! let sim = first.similarity(later);
//! assert!(sim.as_f64() > 0.0 && sim.as_f64() < 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod fingerprint;
mod generator;
mod io;
mod pairs;
mod profile;
mod schedule;
mod stats;

pub use catalog::{catalog, MachineKind, TracedMachine};
pub use fingerprint::Fingerprint;
pub use generator::{Trace, TraceGenerator};
pub use pairs::{BinnedSimilarity, PairStats, SimilarityBin};
pub use profile::{MachineProfile, PageClass, UpdateMix};
pub use schedule::ActivitySchedule;
pub use stats::TraceStats;
