//! On-disk trace files: save a generated trace, reload it later.
//!
//! The original Memory Buddies traces are distributed as fingerprint
//! files; this module gives our synthetic traces the same property so
//! experiments can be re-run against a *fixed* trace artifact instead of
//! regenerating (useful for cross-machine reproducibility and for
//! sharing calibrated traces).
//!
//! Format: `VECYTRC1` magic, nominal RAM, fingerprint count, then per
//! fingerprint a timestamp, page count and raw digests; an FNV-1a 64
//! trailer detects truncation and corruption.

use vecycle_hash::{Fnv1a64, Hasher};
use vecycle_types::{Bytes, Error, PageDigest, SimDuration, SimTime};

use crate::{Fingerprint, Trace};

const MAGIC: &[u8; 8] = b"VECYTRC1";

impl Trace {
    /// Serializes the trace to `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_to<W: std::io::Write>(&self, mut w: W) -> vecycle_types::Result<()> {
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&self.ram().as_u64().to_le_bytes());
        buf.extend_from_slice(&(self.fingerprints().len() as u64).to_le_bytes());
        for fp in self.fingerprints() {
            buf.extend_from_slice(&fp.taken_at().since_epoch().as_nanos().to_le_bytes());
            buf.extend_from_slice(&(fp.pages().len() as u64).to_le_bytes());
            for d in fp.pages() {
                buf.extend_from_slice(d.as_bytes());
            }
        }
        let mut fnv = Fnv1a64::new();
        fnv.update(&buf);
        let trailer = fnv.finalize();
        w.write_all(&buf)?;
        w.write_all(&trailer)?;
        Ok(())
    }

    /// Deserializes a trace written by [`Trace::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on bad magic, truncation or trailer
    /// mismatch, and [`Error::Io`] on read failures.
    pub fn read_from<R: std::io::Read>(mut r: R) -> vecycle_types::Result<Trace> {
        let mut raw = Vec::new();
        r.read_to_end(&mut raw)?;
        if raw.len() < MAGIC.len() + 8 + 8 + 8 {
            return Err(Error::Corrupt {
                detail: format!("trace file too short: {} bytes", raw.len()),
            });
        }
        let (body, trailer) = raw.split_at(raw.len() - 8);
        let mut fnv = Fnv1a64::new();
        fnv.update(body);
        if fnv.finalize() != <[u8; 8]>::try_from(trailer).expect("8 bytes") {
            return Err(Error::Corrupt {
                detail: "trace trailer checksum mismatch".into(),
            });
        }

        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> vecycle_types::Result<&[u8]> {
            let end = pos.checked_add(n).ok_or(Error::Corrupt {
                detail: "trace length overflow".into(),
            })?;
            let slice = body.get(*pos..end).ok_or(Error::Corrupt {
                detail: "trace truncated mid-record".into(),
            })?;
            *pos = end;
            Ok(slice)
        };
        let take_u64 = |pos: &mut usize| -> vecycle_types::Result<u64> {
            Ok(u64::from_le_bytes(
                take(pos, 8)?.try_into().expect("8 bytes"),
            ))
        };

        if take(&mut pos, 8)? != MAGIC {
            return Err(Error::Corrupt {
                detail: "bad trace magic".into(),
            });
        }
        let ram = Bytes::new(take_u64(&mut pos)?);
        let count = take_u64(&mut pos)?;
        // Every declared count is attacker-controlled until it has been
        // checked against the bytes actually present: each fingerprint
        // record is at least 16 bytes (timestamp + page count), so a
        // count beyond `remaining / 16` cannot possibly be satisfied.
        // Rejecting here caps the Vec pre-allocation by input length.
        let max_count = (body.len().saturating_sub(pos) / 16) as u64;
        if count > max_count {
            return Err(Error::Corrupt {
                detail: format!(
                    "declared fingerprint count {count} exceeds what {} remaining bytes can hold",
                    body.len() - pos
                ),
            });
        }
        let mut fingerprints = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let at = SimTime::from_epoch(SimDuration::from_nanos(take_u64(&mut pos)?));
            let pages = take_u64(&mut pos)?;
            // Checked multiply: a forged per-fingerprint page count must
            // not wrap into a small slice length (or panic in debug).
            let need = pages
                .checked_mul(16)
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| Error::Corrupt {
                    detail: format!("declared page count {pages} overflows digest payload size"),
                })?;
            let bytes = take(&mut pos, need)?;
            let digests: Vec<PageDigest> = bytes
                .chunks_exact(16)
                .map(|c| PageDigest::new(c.try_into().expect("16 bytes")))
                .collect();
            fingerprints.push(Fingerprint::new(at, digests));
        }
        if pos != body.len() {
            return Err(Error::Corrupt {
                detail: format!("{} trailing bytes after last fingerprint", body.len() - pos),
            });
        }
        Ok(Trace::from_parts(ram, fingerprints))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{catalog, TraceGenerator};

    fn small_trace() -> Trace {
        let mut profile = catalog()[0].profile.clone();
        profile.trace_duration = vecycle_types::SimDuration::from_hours(6);
        TraceGenerator::new(profile, 9)
            .scale_pages(128)
            .generate()
            .unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let trace = small_trace();
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let back = Trace::read_from(&buf[..]).unwrap();
        assert_eq!(back.ram(), trace.ram());
        assert_eq!(back.fingerprints().len(), trace.fingerprints().len());
        for (a, b) in back.fingerprints().iter().zip(trace.fingerprints()) {
            assert_eq!(a.taken_at(), b.taken_at());
            assert_eq!(a.pages(), b.pages());
        }
    }

    #[test]
    fn truncation_is_detected() {
        let trace = small_trace();
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        for cut in [buf.len() - 1, buf.len() / 2, 5] {
            assert!(
                matches!(Trace::read_from(&buf[..cut]), Err(Error::Corrupt { .. })),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn bit_flip_is_detected() {
        let trace = small_trace();
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        buf[20] ^= 1;
        assert!(matches!(
            Trace::read_from(&buf[..]),
            Err(Error::Corrupt { .. })
        ));
    }

    #[test]
    fn empty_input_is_corrupt() {
        assert!(Trace::read_from(&[][..]).is_err());
    }

    /// Recomputes the FNV trailer so forged counts reach the record
    /// parser instead of dying at the integrity check.
    fn refix_trailer(buf: &mut [u8]) {
        let body_len = buf.len() - 8;
        let mut fnv = Fnv1a64::new();
        fnv.update(&buf[..body_len]);
        let t = fnv.finalize();
        buf[body_len..].copy_from_slice(&t);
    }

    #[test]
    fn forged_fingerprint_count_is_rejected_before_allocating() {
        let trace = small_trace();
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        // Fingerprint count lives at offset 16 (magic 8 + ram 8).
        for forged in [u64::MAX, 1 << 40, (buf.len() as u64 / 16) + 1] {
            let mut f = buf.clone();
            f[16..24].copy_from_slice(&forged.to_le_bytes());
            refix_trailer(&mut f);
            let err = Trace::read_from(&f[..]).unwrap_err();
            assert!(
                matches!(err, Error::Corrupt { .. }),
                "count={forged}: {err}"
            );
        }
    }

    #[test]
    fn forged_page_count_is_rejected_without_overflow() {
        let trace = small_trace();
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        // First fingerprint's page count lives at offset 32 (magic 8 +
        // ram 8 + count 8 + timestamp 8). Wrapping multipliers must fail
        // Corrupt, not panic or mis-slice.
        for forged in [u64::MAX, u64::MAX / 16 + 1, 1 << 61] {
            let mut f = buf.clone();
            f[32..40].copy_from_slice(&forged.to_le_bytes());
            refix_trailer(&mut f);
            let err = Trace::read_from(&f[..]).unwrap_err();
            assert!(
                matches!(err, Error::Corrupt { .. }),
                "pages={forged}: {err}"
            );
        }
    }
}
