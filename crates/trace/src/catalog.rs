//! The trace catalog: the machines of Table 1 plus the paper's own traces.

use vecycle_types::{Bytes, MachineId, Ratio, SimDuration};

use crate::{ActivitySchedule, MachineProfile, PageClass, UpdateMix};

/// The broad workload category of a traced machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineKind {
    /// A 24/7 Linux server (web/e-mail workload).
    Server,
    /// An OS X laptop, active only when its user is.
    Laptop,
    /// A VM running the Apache Nutch web crawler — always busy.
    Crawler,
    /// The author's desktop used for the VDI study (§4.6).
    Desktop,
}

impl std::fmt::Display for MachineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MachineKind::Server => "server",
            MachineKind::Laptop => "laptop",
            MachineKind::Crawler => "crawler",
            MachineKind::Desktop => "desktop",
        })
    }
}

/// One entry of the trace catalog (Table 1 and §2.3/§4.6).
#[derive(Debug, Clone)]
pub struct TracedMachine {
    /// Catalog identifier.
    pub id: MachineId,
    /// Human-readable name as used in the paper's figures.
    pub name: &'static str,
    /// Operating system reported in Table 1.
    pub os: &'static str,
    /// Trace ID within the original Memory Buddies repository, where
    /// applicable ("—" for the paper's own traces).
    pub trace_id: &'static str,
    /// Workload category.
    pub kind: MachineKind,
    /// The synthetic evolution profile calibrated for this machine.
    pub profile: MachineProfile,
}

impl TracedMachine {
    /// Nominal RAM (convenience accessor; also in the profile).
    pub fn ram(&self) -> Bytes {
        self.profile.ram
    }
}

fn server_profile(ram: Bytes, cold: f64, warm: f64, dup_pool: f64) -> MachineProfile {
    let hot = 1.0 - cold - warm;
    MachineProfile {
        ram,
        initial_zero: Ratio::new(0.03),
        initial_pool: Ratio::new(dup_pool),
        pool_contents: 48,
        classes: vec![
            PageClass {
                fraction: cold,
                updates_per_hour: 0.0004,
            },
            PageClass {
                fraction: warm,
                updates_per_hour: 0.08,
            },
            PageClass {
                fraction: hot,
                updates_per_hour: 1.0,
            },
        ],
        update_mix: UpdateMix {
            pool: 0.06,
            recycle: 0.32,
            zero: 0.01,
        },
        relocation_fraction_per_hour: 0.010,
        schedule: ActivitySchedule::Diurnal {
            base: 0.55,
            swing: 0.35,
        },
        fingerprint_interval: SimDuration::from_mins(30),
        trace_duration: SimDuration::from_days(7),
        fingerprints_require_activity: false,
        // "a handful of fingerprints for the servers are missing" over
        // the week — a reboot every ~3 days on average.
        reboot_interval: Some(SimDuration::from_hours(72)),
    }
}

fn laptop_profile() -> MachineProfile {
    MachineProfile {
        ram: Bytes::from_gib(2),
        initial_zero: Ratio::new(0.04),
        initial_pool: Ratio::new(0.15),
        pool_contents: 40,
        classes: vec![
            PageClass {
                fraction: 0.22,
                updates_per_hour: 0.0005,
            },
            PageClass {
                fraction: 0.30,
                updates_per_hour: 0.09,
            },
            PageClass {
                fraction: 0.48,
                updates_per_hour: 1.2,
            },
        ],
        update_mix: UpdateMix {
            pool: 0.08,
            recycle: 0.30,
            zero: 0.02,
        },
        relocation_fraction_per_hour: 0.008,
        schedule: ActivitySchedule::OfficeHours {
            busy: 1.0,
            quiet: 0.03,
            start_hour: 8,
            end_hour: 22,
        },
        fingerprint_interval: SimDuration::from_mins(30),
        trace_duration: SimDuration::from_days(7),
        fingerprints_require_activity: true,
        reboot_interval: None,
    }
}

fn crawler_profile() -> MachineProfile {
    MachineProfile {
        ram: Bytes::from_gib(8),
        initial_zero: Ratio::new(0.02),
        initial_pool: Ratio::new(0.06),
        pool_contents: 64,
        classes: vec![
            PageClass {
                fraction: 0.08,
                updates_per_hour: 0.001,
            },
            PageClass {
                fraction: 0.12,
                updates_per_hour: 0.12,
            },
            PageClass {
                fraction: 0.80,
                updates_per_hour: 1.6,
            },
        ],
        update_mix: UpdateMix {
            pool: 0.03,
            recycle: 0.12,
            zero: 0.005,
        },
        relocation_fraction_per_hour: 0.002,
        schedule: ActivitySchedule::Constant(1.0),
        fingerprint_interval: SimDuration::from_mins(30),
        trace_duration: SimDuration::from_days(4),
        fingerprints_require_activity: false,
        reboot_interval: None,
    }
}

/// The §4.6 desktop: 6 GiB, 19 days, office-hours usage.
fn desktop_profile() -> MachineProfile {
    MachineProfile {
        ram: Bytes::from_gib(6),
        initial_zero: Ratio::new(0.04),
        initial_pool: Ratio::new(0.12),
        pool_contents: 56,
        classes: vec![
            PageClass {
                fraction: 0.38,
                updates_per_hour: 0.0004,
            },
            PageClass {
                fraction: 0.22,
                updates_per_hour: 0.02,
            },
            PageClass {
                fraction: 0.40,
                updates_per_hour: 0.28,
            },
        ],
        update_mix: UpdateMix {
            pool: 0.07,
            recycle: 0.30,
            zero: 0.015,
        },
        relocation_fraction_per_hour: 0.003,
        schedule: ActivitySchedule::OfficeHours {
            busy: 1.0,
            quiet: 0.03,
            start_hour: 9,
            end_hour: 17,
        },
        fingerprint_interval: SimDuration::from_mins(30),
        trace_duration: SimDuration::from_days(19),
        fingerprints_require_activity: false,
        reboot_interval: None,
    }
}

/// The full catalog: 3 servers, 4 laptops (Table 1), 3 crawler VMs
/// (§2.3) and the VDI desktop (§4.6).
///
/// Calibration notes per entry are in `EXPERIMENTS.md`; the headline
/// targets are Figure 1's similarity decay (avg ≈ 0.4 after 24 h for
/// Server B, ≈ 0.2 for Server C, crawlers < 0.2 within ~5 h) and
/// Figure 4's duplicate fractions (servers 5–20 %, laptops 10–20 %).
pub fn catalog() -> Vec<TracedMachine> {
    let mut id = 0u32;
    let mut next = |name, os, trace_id, kind, profile| {
        let m = TracedMachine {
            id: MachineId::new(id),
            name,
            os,
            trace_id,
            kind,
            profile,
        };
        id += 1;
        m
    };
    vec![
        next(
            "Server A",
            "Linux",
            "00065BEE5AA7",
            MachineKind::Server,
            // Low duplicate count (~5 %), moderate churn.
            server_profile(Bytes::from_gib(1), 0.20, 0.26, 0.055),
        ),
        next(
            "Server B",
            "Linux",
            "00188B30D847",
            MachineKind::Server,
            // The stickiest server: avg similarity ≈ 0.4 after 24 h.
            server_profile(Bytes::from_gib(4), 0.27, 0.28, 0.10),
        ),
        next(
            "Server C",
            "Linux",
            "001E4F36E2FB",
            MachineKind::Server,
            // Fastest-churning server (avg ≈ 0.2 after 24 h) but the
            // most duplicates (~20 %).
            server_profile(Bytes::from_gib(8), 0.21, 0.12, 0.26),
        ),
        next(
            "Laptop A",
            "OSX",
            "001B6333F86A",
            MachineKind::Laptop,
            laptop_profile(),
        ),
        next(
            "Laptop B",
            "OSX",
            "001B6333F90A",
            MachineKind::Laptop,
            laptop_profile(),
        ),
        next(
            "Laptop C",
            "OSX",
            "001B6334DE9F",
            MachineKind::Laptop,
            laptop_profile(),
        ),
        next(
            "Laptop D",
            "OSX",
            "001B6338238A",
            MachineKind::Laptop,
            laptop_profile(),
        ),
        next(
            "Crawler A",
            "Linux",
            "—",
            MachineKind::Crawler,
            crawler_profile(),
        ),
        next(
            "Crawler B",
            "Linux",
            "—",
            MachineKind::Crawler,
            crawler_profile(),
        ),
        next(
            "Crawler C",
            "Linux",
            "—",
            MachineKind::Crawler,
            crawler_profile(),
        ),
        next(
            "Desktop",
            "Linux (Ubuntu 10.04)",
            "—",
            MachineKind::Desktop,
            desktop_profile(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_1_shape() {
        let c = catalog();
        assert_eq!(c.len(), 11);
        let servers: Vec<_> = c.iter().filter(|m| m.kind == MachineKind::Server).collect();
        assert_eq!(servers.len(), 3);
        assert_eq!(servers[0].ram(), Bytes::from_gib(1));
        assert_eq!(servers[1].ram(), Bytes::from_gib(4));
        assert_eq!(servers[2].ram(), Bytes::from_gib(8));
        assert_eq!(
            c.iter().filter(|m| m.kind == MachineKind::Laptop).count(),
            4
        );
        assert_eq!(
            c.iter().filter(|m| m.kind == MachineKind::Crawler).count(),
            3
        );
        assert!(c
            .iter()
            .filter(|m| m.kind == MachineKind::Laptop)
            .all(|m| m.ram() == Bytes::from_gib(2)));
    }

    #[test]
    fn all_profiles_validate() {
        for m in catalog() {
            m.profile.validate().unwrap_or_else(|e| {
                panic!("profile for {} invalid: {e}", m.name);
            });
        }
    }

    #[test]
    fn ids_are_unique_and_dense() {
        let c = catalog();
        for (i, m) in c.iter().enumerate() {
            assert_eq!(m.id.as_usize(), i);
        }
    }

    #[test]
    fn trace_durations_match_paper() {
        let c = catalog();
        let by_name = |n: &str| c.iter().find(|m| m.name == n).unwrap();
        assert_eq!(
            by_name("Server A").profile.trace_duration,
            SimDuration::from_days(7)
        );
        assert_eq!(
            by_name("Crawler A").profile.trace_duration,
            SimDuration::from_days(4)
        );
        assert_eq!(
            by_name("Desktop").profile.trace_duration,
            SimDuration::from_days(19)
        );
    }
}
