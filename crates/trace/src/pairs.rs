//! Fingerprint-pair enumeration and similarity binning (Figures 1 & 2).

use vecycle_types::{Ratio, SimDuration};

use crate::Fingerprint;

/// Aggregate statistics for one time-delta bin.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityBin {
    /// Center of the bin (e.g. 30 min, 60 min, ...).
    pub delta: SimDuration,
    /// Number of fingerprint pairs in the bin.
    pub pairs: u64,
    /// Minimum similarity observed.
    pub min: Ratio,
    /// Mean similarity.
    pub avg: Ratio,
    /// Maximum similarity observed.
    pub max: Ratio,
}

/// The binned min/avg/max similarity series of one machine's trace.
///
/// Reproduces the paper's methodology (§2.3): enumerate all fingerprint
/// pairs, compute their similarity, and sort the pairs into bins by time
/// delta — the first bin covering [15 min, 45 min), the second
/// [45 min, 75 min), and so on.
#[derive(Debug, Clone)]
pub struct BinnedSimilarity {
    bins: Vec<SimilarityBin>,
}

impl BinnedSimilarity {
    /// Computes the series over all pairs with `delta ≤ max_delta`.
    ///
    /// `bin_width` is the fingerprint interval (30 min in the paper);
    /// pair `(a, b)` falls into the bin whose center is the nearest
    /// multiple of `bin_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero.
    pub fn compute(
        fingerprints: &[Fingerprint],
        bin_width: SimDuration,
        max_delta: SimDuration,
    ) -> Self {
        assert!(!bin_width.is_zero(), "bin width must be positive");
        let nbins = (max_delta.as_nanos() / bin_width.as_nanos() + 1) as usize;
        let mut acc: Vec<(u64, f64, f64, f64)> =
            vec![(0, f64::INFINITY, 0.0, f64::NEG_INFINITY); nbins];

        for (i, fa) in fingerprints.iter().enumerate() {
            for fb in &fingerprints[i + 1..] {
                let delta = fb.taken_at().duration_since(fa.taken_at());
                if delta > max_delta || delta.is_zero() {
                    continue;
                }
                // Nearest-multiple binning: [15, 45) min -> bin 1, etc.
                let bin =
                    ((delta.as_nanos() + bin_width.as_nanos() / 2) / bin_width.as_nanos()) as usize;
                if bin == 0 || bin >= nbins {
                    continue;
                }
                let s = fa.similarity(fb).as_f64();
                let (count, min, sum, max) = &mut acc[bin];
                *count += 1;
                *min = min.min(s);
                *sum += s;
                *max = max.max(s);
            }
        }

        let bins = acc
            .into_iter()
            .enumerate()
            .filter(|(_, (count, ..))| *count > 0)
            .map(|(i, (count, min, sum, max))| SimilarityBin {
                delta: SimDuration::from_nanos(bin_width.as_nanos() * i as u64),
                pairs: count,
                min: Ratio::new(min),
                avg: Ratio::new(sum / count as f64),
                max: Ratio::new(max),
            })
            .collect();
        BinnedSimilarity { bins }
    }

    /// The populated bins, in increasing time-delta order.
    pub fn bins(&self) -> &[SimilarityBin] {
        &self.bins
    }

    /// The bin nearest to `delta`, if populated.
    pub fn at(&self, delta: SimDuration) -> Option<&SimilarityBin> {
        self.bins.iter().min_by_key(|b| {
            b.delta
                .saturating_sub(delta)
                .max(delta.saturating_sub(b.delta))
        })
    }
}

/// Per-pair transfer statistics of the Figure 5 methods.
///
/// Counts are *pages transferred in full* by each technique when
/// migrating the machine state observed in fingerprint `b`, given that
/// the destination holds a checkpoint of fingerprint `a`. See
/// `vecycle_core::strategy` for the within-migration engine versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairStats {
    /// Total pages (the baseline full transfer).
    pub total: u64,
    /// Sender-side deduplication: each distinct content once.
    pub dedup: u64,
    /// Dirty-page tracking: pages changed in place (Miyakodori).
    pub dirty: u64,
    /// Dirty tracking combined with deduplication.
    pub dirty_dedup: u64,
    /// Content-based redundancy elimination (VeCycle): pages whose
    /// content is absent from the checkpoint.
    pub hashes: u64,
    /// VeCycle combined with deduplication.
    pub hashes_dedup: u64,
}

impl PairStats {
    /// Computes all six methods for the pair `(a, b)`, `a` earlier.
    pub fn compute(a: &Fingerprint, b: &Fingerprint) -> Self {
        let total = b.page_count().as_u64();
        let dedup = b.unique_count().as_u64();
        let dirty = a.dirty_pages_to(b).as_u64();

        // Dirty + dedup: each distinct content among the dirty pages once.
        let common = a.pages().len().min(b.pages().len());
        let mut dirty_contents: Vec<_> = a.pages()[..common]
            .iter()
            .zip(&b.pages()[..common])
            .filter(|(x, y)| x != y)
            .map(|(_, y)| *y)
            .chain(b.pages()[common..].iter().copied())
            .collect();
        dirty_contents.sort_unstable();
        dirty_contents.dedup();
        let dirty_dedup = dirty_contents.len() as u64;

        let hashes = a.novel_pages_in(b).as_u64();
        let hashes_dedup = a.novel_unique_in(b).as_u64();

        PairStats {
            total,
            dedup,
            dirty,
            dirty_dedup,
            hashes,
            hashes_dedup,
        }
    }

    /// Fraction of baseline traffic for each method, in the order
    /// `(dedup, dirty, dirty+dedup, hashes, hashes+dedup)`.
    pub fn fractions(&self) -> [Ratio; 5] {
        let f = |x: u64| {
            if self.total == 0 {
                Ratio::ZERO
            } else {
                Ratio::new(x as f64 / self.total as f64)
            }
        };
        [
            f(self.dedup),
            f(self.dirty),
            f(self.dirty_dedup),
            f(self.hashes),
            f(self.hashes_dedup),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecycle_types::{PageDigest, SimTime};

    fn fp(mins: u64, ids: &[u64]) -> Fingerprint {
        Fingerprint::new(
            SimTime::EPOCH + SimDuration::from_mins(mins),
            ids.iter()
                .map(|&i| PageDigest::from_content_id(i))
                .collect(),
        )
    }

    #[test]
    fn binning_groups_by_delta() {
        let fps = vec![fp(0, &[1, 2]), fp(30, &[1, 2]), fp(60, &[1, 3])];
        let b = BinnedSimilarity::compute(
            &fps,
            SimDuration::from_mins(30),
            SimDuration::from_hours(24),
        );
        // Deltas: 30 (x2) and 60 (x1).
        assert_eq!(b.bins().len(), 2);
        assert_eq!(b.bins()[0].delta, SimDuration::from_mins(30));
        assert_eq!(b.bins()[0].pairs, 2);
        assert_eq!(b.bins()[1].pairs, 1);
    }

    #[test]
    fn bin_stats_track_min_avg_max() {
        // Two 30-min pairs: identical (sim 1.0) and half-overlap (0.5).
        let fps = vec![fp(0, &[1, 2]), fp(30, &[1, 2]), fp(60, &[1, 9])];
        let b =
            BinnedSimilarity::compute(&fps, SimDuration::from_mins(30), SimDuration::from_hours(1));
        let bin = &b.bins()[0];
        assert_eq!(bin.pairs, 2);
        assert!((bin.min.as_f64() - 0.5).abs() < 1e-12);
        assert!((bin.max.as_f64() - 1.0).abs() < 1e-12);
        assert!((bin.avg.as_f64() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn max_delta_is_respected() {
        let fps = vec![fp(0, &[1]), fp(30, &[1]), fp(24 * 60 + 30, &[1])];
        let b = BinnedSimilarity::compute(
            &fps,
            SimDuration::from_mins(30),
            SimDuration::from_hours(24),
        );
        let total_pairs: u64 = b.bins().iter().map(|x| x.pairs).sum();
        // The 24.5 h pairs fall outside; only (0,30) and (30, 24h30)... the
        // latter is exactly 24 h -> included. (0, 24h30) excluded.
        assert_eq!(total_pairs, 2);
    }

    #[test]
    fn pair_stats_hand_example() {
        // a: [1,2,3,4]; b: [1,9,3,2] — page1 rewritten to 9, content 2
        // relocated from index 1 to index 3 (4 evicted).
        let a = fp(0, &[1, 2, 3, 4]);
        let b = fp(30, &[1, 9, 3, 2]);
        let s = PairStats::compute(&a, &b);
        assert_eq!(s.total, 4);
        assert_eq!(s.dedup, 4); // all contents distinct in b
        assert_eq!(s.dirty, 2); // indexes 1 and 3 changed
        assert_eq!(s.dirty_dedup, 2); // contents {9, 2}
        assert_eq!(s.hashes, 1); // only content 9 is novel
        assert_eq!(s.hashes_dedup, 1);
    }

    #[test]
    fn pair_stats_duplicates_in_b() {
        let a = fp(0, &[1, 2]);
        let b = fp(30, &[7, 7]);
        let s = PairStats::compute(&a, &b);
        assert_eq!(s.dedup, 1);
        assert_eq!(s.dirty, 2);
        assert_eq!(s.dirty_dedup, 1);
        assert_eq!(s.hashes, 2); // both pages sent without dedup
        assert_eq!(s.hashes_dedup, 1);
    }

    #[test]
    fn method_ordering_invariants() {
        // On any pair: hashes+dedup <= hashes <= total, dirty_dedup <=
        // dirty <= total, dedup <= total.
        let a = fp(0, &[1, 2, 3, 4, 5, 6, 2, 0]);
        let b = fp(30, &[1, 9, 3, 2, 5, 5, 8, 0]);
        let s = PairStats::compute(&a, &b);
        assert!(s.hashes_dedup <= s.hashes);
        assert!(s.hashes <= s.total);
        assert!(s.dirty_dedup <= s.dirty);
        assert!(s.dirty <= s.total);
        assert!(s.dedup <= s.total);
        // Content-based elimination never transfers more than dirty
        // tracking: a page unchanged in place is by definition in Ua.
        assert!(s.hashes <= s.dirty);
    }

    #[test]
    fn fractions_are_fractions() {
        let a = fp(0, &[1, 2, 3]);
        let b = fp(30, &[4, 5, 6]);
        for f in PairStats::compute(&a, &b).fractions() {
            assert!(f.is_fraction());
        }
    }
}
