//! [`TraceGenerator`]: the synthetic memory-evolution engine.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use vecycle_types::{Bytes, PageDigest, SimTime};

use crate::{Fingerprint, MachineProfile};

/// Upper bound on the recently-retired contents kept for recycling.
const RECYCLE_RING_MAX: usize = 4096;

/// A generated trace: the fingerprint sequence of one machine.
#[derive(Debug)]
pub struct Trace {
    ram: Bytes,
    fingerprints: Vec<Fingerprint>,
}

impl Trace {
    /// The nominal RAM of the traced machine.
    pub fn ram(&self) -> Bytes {
        self.ram
    }

    /// The recorded fingerprints, in time order.
    pub fn fingerprints(&self) -> &[Fingerprint] {
        &self.fingerprints
    }

    /// Consumes the trace, returning its fingerprints.
    pub fn into_fingerprints(self) -> Vec<Fingerprint> {
        self.fingerprints
    }

    /// Reassembles a trace from its parts (used by the trace-file
    /// loader).
    pub fn from_parts(ram: Bytes, fingerprints: Vec<Fingerprint>) -> Trace {
        Trace { ram, fingerprints }
    }
}

/// Generates synthetic fingerprint traces from a [`MachineProfile`].
///
/// The model: every page belongs to an update-rate class; per 30-minute
/// epoch each page is rewritten with probability
/// `1 − exp(−rate · activity · Δt)`. New content is fresh, recycled,
/// pooled or zero according to the profile's update mix, and a fraction
/// of pages is relocated between frames each epoch. Fingerprints are
/// recorded at every epoch boundary (unless the machine is "off").
///
/// Generation is deterministic in `(profile, seed, scale)`.
#[derive(Debug)]
pub struct TraceGenerator {
    profile: MachineProfile,
    seed: u64,
    scale_pages: Option<u64>,
}

impl TraceGenerator {
    /// Creates a generator for `profile`, seeded deterministically.
    pub fn new(profile: MachineProfile, seed: u64) -> Self {
        TraceGenerator {
            profile,
            seed,
            scale_pages: None,
        }
    }

    /// Overrides the page count, keeping all *fractional* statistics.
    ///
    /// Every paper metric is a fraction of pages, so a machine can be
    /// simulated at reduced scale: an 8 GiB server generated with 16 Ki
    /// pages has the same similarity/duplicate/novelty fractions, and the
    /// experiment harness rescales byte counts by the nominal RAM.
    #[must_use]
    pub fn scale_pages(mut self, pages: u64) -> Self {
        self.scale_pages = Some(pages);
        self
    }

    /// Runs the model and returns the fingerprint sequence.
    ///
    /// # Errors
    ///
    /// Returns [`vecycle_types::Error::InvalidConfig`] if the profile is
    /// inconsistent (see [`MachineProfile::validate`]).
    pub fn generate(self) -> vecycle_types::Result<Trace> {
        self.profile.validate()?;
        let p = &self.profile;
        let n = self
            .scale_pages
            .unwrap_or_else(|| p.ram.pages_ceil().as_u64()) as usize;
        if n == 0 {
            return Err(vecycle_types::Error::InvalidConfig {
                reason: "scaled page count must be positive".into(),
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x7ec7_ec7e);

        // Content namespaces, disjoint by construction:
        //   0                    -> the zero page
        //   ns | (1 << 38) | k   -> pool content k
        //   ns | counter         -> fresh content (counter < 2^36)
        let ns = (self.seed & 0xff_ffff) << 40;
        let pool_id = |k: u32| ns | (1 << 38) | u64::from(k);
        let mut fresh_counter: u64 = 1;
        let mut fresh = || {
            let id = ns | fresh_counter;
            fresh_counter += 1;
            id
        };

        // Initial page contents.
        let mut contents: Vec<u64> = Vec::with_capacity(n);
        for _ in 0..n {
            let roll: f64 = rng.gen();
            if roll < p.initial_zero.as_f64() {
                contents.push(0);
            } else if roll < p.initial_zero.as_f64() + p.initial_pool.as_f64() {
                contents.push(pool_id(rng.gen_range(0..p.pool_contents)));
            } else {
                contents.push(fresh());
            }
        }

        // Class assignment: contiguous runs proportional to the class
        // fractions, then shuffled so classes are spread across frames.
        let mut classes: Vec<u8> = Vec::with_capacity(n);
        for (ci, class) in p.classes.iter().enumerate() {
            let count = (class.fraction * n as f64).round() as usize;
            classes.extend(std::iter::repeat_n(ci as u8, count));
        }
        classes.resize(n, (p.classes.len() - 1) as u8);
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            classes.swap(i, j);
        }

        // The recycle ring scales with memory so small-scale traces keep
        // the same recycled-content *fraction* as full-scale ones.
        let ring_cap = (n / 16).clamp(16, RECYCLE_RING_MAX);
        let mut recycle_ring: Vec<u64> = Vec::with_capacity(ring_cap);
        let mut recycle_pos = 0usize;
        let retire = |ring: &mut Vec<u64>, pos: &mut usize, id: u64| {
            if id == 0 {
                return;
            }
            if ring.len() < ring_cap {
                ring.push(id);
            } else {
                ring[*pos] = id;
                *pos = (*pos + 1) % ring_cap;
            }
        };

        // Relocation destinations come from the hottest class: the OS
        // moves data into recently-freed frames, not into the cold
        // resident set. (Letting relocations clobber cold pages would
        // erase the long-term similarity plateau of Figure 2.)
        let hottest = p
            .classes
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.updates_per_hour
                    .partial_cmp(&b.1.updates_per_hour)
                    .expect("rates are finite")
            })
            .map(|(i, _)| i as u8)
            .expect("profiles have at least one class");
        let hot_pages: Vec<u64> = (0..n as u64)
            .filter(|&i| classes[i as usize] == hottest)
            .collect();

        let dt_hours = p.fingerprint_interval.as_hours_f64();
        let steps = p.trace_duration.as_nanos() / p.fingerprint_interval.as_nanos();
        let mut fingerprints = Vec::with_capacity(steps as usize + 1);
        let mut reloc_carry = 0.0f64;
        // Poisson-ish reboots: per-epoch probability dt / mean-interval.
        let reboot_prob = p
            .reboot_interval
            .map(|iv| (p.fingerprint_interval.as_secs_f64() / iv.as_secs_f64()).min(1.0))
            .unwrap_or(0.0);
        let mut rebooting = false;

        let record = |t: SimTime, contents: &[u64]| {
            let pages: Vec<PageDigest> = contents
                .iter()
                .map(|&id| PageDigest::from_content_id(id))
                .collect();
            Fingerprint::new(t, pages)
        };

        for step in 0..=steps {
            let t = SimTime::EPOCH + p.fingerprint_interval * step;
            let activity = p.schedule.activity(t);
            let powered_on = (!p.fingerprints_require_activity || activity >= 0.5) && !rebooting;
            if powered_on {
                fingerprints.push(record(t, &contents));
            }
            rebooting = false;
            if step == steps {
                break;
            }

            if reboot_prob > 0.0 && rng.gen::<f64>() < reboot_prob {
                // Reboot: part of the hot class — anonymous memory and
                // not-yet-refilled page cache — comes back as zeros;
                // cold/warm pages (resident services, re-read file data)
                // return as before. The machine misses the next
                // fingerprint while down. The zero spike then decays as
                // the cache refills over subsequent epochs, producing the
                // transient spikes of Figure 4.
                for i in 0..n {
                    if classes[i] == hottest && rng.gen::<f64>() < 0.35 {
                        contents[i] = 0;
                    }
                }
                rebooting = true;
                continue;
            }

            // Per-class update probability for this epoch.
            let probs: Vec<f64> = p
                .classes
                .iter()
                .map(|c| 1.0 - (-c.updates_per_hour * activity * dt_hours).exp())
                .collect();

            for i in 0..n {
                let prob = probs[classes[i] as usize];
                if prob <= 0.0 || rng.gen::<f64>() >= prob {
                    continue;
                }
                let old = contents[i];
                let roll: f64 = rng.gen();
                let m = &p.update_mix;
                contents[i] = if roll < m.pool {
                    pool_id(rng.gen_range(0..p.pool_contents))
                } else if roll < m.pool + m.recycle && !recycle_ring.is_empty() {
                    recycle_ring[rng.gen_range(0..recycle_ring.len())]
                } else if roll < m.pool + m.recycle + m.zero {
                    0
                } else {
                    fresh()
                };
                retire(&mut recycle_ring, &mut recycle_pos, old);
            }

            // Relocations: fraction of pages per hour, with carry so slow
            // rates still fire eventually.
            let want =
                p.relocation_fraction_per_hour * activity * dt_hours * n as f64 + reloc_carry;
            let moves = want.floor() as u64;
            reloc_carry = want - moves as f64;
            for _ in 0..moves {
                if hot_pages.is_empty() {
                    break;
                }
                let src = rng.gen_range(0..n);
                let dst = hot_pages[rng.gen_range(0..hot_pages.len())] as usize;
                if src != dst {
                    let old = contents[dst];
                    contents[dst] = contents[src];
                    retire(&mut recycle_ring, &mut recycle_pos, old);
                }
            }
        }

        Ok(Trace {
            ram: p.ram,
            fingerprints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActivitySchedule, PageClass, UpdateMix};
    use vecycle_types::{Ratio, SimDuration};

    fn tiny_profile() -> MachineProfile {
        MachineProfile {
            ram: Bytes::from_gib(1),
            initial_zero: Ratio::new(0.05),
            initial_pool: Ratio::new(0.10),
            pool_contents: 16,
            classes: vec![
                PageClass {
                    fraction: 0.3,
                    updates_per_hour: 0.0,
                },
                PageClass {
                    fraction: 0.7,
                    updates_per_hour: 0.5,
                },
            ],
            update_mix: UpdateMix {
                pool: 0.05,
                recycle: 0.25,
                zero: 0.02,
            },
            relocation_fraction_per_hour: 0.005,
            schedule: ActivitySchedule::Constant(1.0),
            fingerprint_interval: SimDuration::from_mins(30),
            trace_duration: SimDuration::from_days(2),
            fingerprints_require_activity: false,
            reboot_interval: None,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TraceGenerator::new(tiny_profile(), 1)
            .scale_pages(512)
            .generate()
            .unwrap();
        let b = TraceGenerator::new(tiny_profile(), 1)
            .scale_pages(512)
            .generate()
            .unwrap();
        assert_eq!(a.fingerprints().len(), b.fingerprints().len());
        for (fa, fb) in a.fingerprints().iter().zip(b.fingerprints()) {
            assert_eq!(fa.pages(), fb.pages());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceGenerator::new(tiny_profile(), 1)
            .scale_pages(512)
            .generate()
            .unwrap();
        let b = TraceGenerator::new(tiny_profile(), 2)
            .scale_pages(512)
            .generate()
            .unwrap();
        assert_ne!(a.fingerprints()[10].pages(), b.fingerprints()[10].pages());
    }

    #[test]
    fn fingerprint_count_matches_duration() {
        let trace = TraceGenerator::new(tiny_profile(), 3)
            .scale_pages(256)
            .generate()
            .unwrap();
        // 2 days at 30-min intervals, inclusive: 97 fingerprints.
        assert_eq!(trace.fingerprints().len(), 97);
        assert_eq!(
            trace.fingerprints()[1].taken_at().since_epoch(),
            SimDuration::from_mins(30)
        );
    }

    #[test]
    fn similarity_decays_with_time() {
        let trace = TraceGenerator::new(tiny_profile(), 4)
            .scale_pages(2048)
            .generate()
            .unwrap();
        let f = trace.fingerprints();
        let s1 = f[0].similarity(&f[2]).as_f64(); // 1 h
        let s24 = f[0].similarity(&f[48]).as_f64(); // 24 h
        assert!(s1 > s24, "similarity should decay: {s1} vs {s24}");
        // Cold pages (30%) plus recycling keep a plateau.
        assert!(s24 > 0.15, "plateau too low: {s24}");
        assert!(s1 > 0.7, "short-term similarity too low: {s1}");
    }

    #[test]
    fn zero_and_duplicate_fractions_are_plausible() {
        let trace = TraceGenerator::new(tiny_profile(), 5)
            .scale_pages(4096)
            .generate()
            .unwrap();
        for f in [
            &trace.fingerprints()[0],
            trace.fingerprints().last().unwrap(),
        ] {
            let dup = f.duplicate_fraction().as_f64();
            let zero = f.zero_fraction().as_f64();
            assert!(dup > 0.02 && dup < 0.4, "dup = {dup}");
            assert!(zero < 0.15, "zero = {zero}");
            // Zero pages are part of the duplicates.
            assert!(dup >= zero - 1e-9);
        }
    }

    #[test]
    fn laptop_mode_skips_off_hours() {
        let mut p = tiny_profile();
        p.schedule = ActivitySchedule::OfficeHours {
            busy: 1.0,
            quiet: 0.02,
            start_hour: 9,
            end_hour: 17,
        };
        p.fingerprints_require_activity = true;
        p.trace_duration = SimDuration::from_days(7);
        let trace = TraceGenerator::new(p, 6)
            .scale_pages(128)
            .generate()
            .unwrap();
        let max = 337;
        let got = trace.fingerprints().len();
        assert!(got < max / 2, "expected sparse laptop trace, got {got}");
        assert!(got > 30, "trace unexpectedly empty: {got}");
    }

    #[test]
    fn reboots_spike_zero_pages_and_drop_fingerprints() {
        let mut p = tiny_profile();
        p.reboot_interval = Some(SimDuration::from_hours(8));
        p.trace_duration = SimDuration::from_days(4);
        let trace = TraceGenerator::new(p.clone(), 11)
            .scale_pages(2048)
            .generate()
            .unwrap();
        let max = p.max_fingerprints() as usize;
        assert!(
            trace.fingerprints().len() < max,
            "reboots must drop fingerprints ({} of {max})",
            trace.fingerprints().len()
        );
        // Right after a reboot the zero fraction spikes well above the
        // steady state.
        let peak = trace
            .fingerprints()
            .iter()
            .map(|f| f.zero_fraction().as_f64())
            .fold(0.0, f64::max);
        let first = trace.fingerprints()[0].zero_fraction().as_f64();
        assert!(peak > first * 3.0, "peak {peak} vs initial {first}");
    }

    #[test]
    fn invalid_profile_is_rejected() {
        let mut p = tiny_profile();
        p.classes.clear();
        assert!(TraceGenerator::new(p, 1).generate().is_err());
    }
}
