//! [`MachineProfile`]: the synthetic memory-evolution model parameters.

use vecycle_types::{Bytes, Ratio, SimDuration};

use crate::ActivitySchedule;

/// The update behaviour of one page class.
///
/// Pages are partitioned into classes with different write rates; the
/// mixture of rates is what produces the paper's characteristic
/// fast-drop-then-plateau similarity curves (Figure 1): hot pages destroy
/// similarity within hours, cold pages keep the long-term plateau.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageClass {
    /// Fraction of (non-pool) pages in this class.
    pub fraction: f64,
    /// Mean updates per page per hour at activity 1.0.
    pub updates_per_hour: f64,
}

/// Where an update's new content comes from.
///
/// Not every guest write creates novel bytes: file caches re-read the
/// same blocks, allocators recycle freed pages, shared libraries re-map.
/// These probabilities control how often a "dirty" page ends up with
/// content the checkpoint (or another frame) already holds — the gap
/// between dirty tracking and content-based elimination in Figure 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateMix {
    /// Probability an update draws from the machine's shared-content pool
    /// (library pages, common file blocks) instead of fresh bytes.
    pub pool: f64,
    /// Probability an update rewrites content the machine has held before
    /// (recycled allocations, re-read cache blocks).
    pub recycle: f64,
    /// Probability an update zeroes the page.
    pub zero: f64,
}

impl UpdateMix {
    fn validate(&self) -> Result<(), String> {
        let sum = self.pool + self.recycle + self.zero;
        if !(0.0..=1.0).contains(&sum) || self.pool < 0.0 || self.recycle < 0.0 || self.zero < 0.0 {
            return Err(format!(
                "update mix probabilities must be non-negative and sum to ≤ 1 (got {sum})"
            ));
        }
        Ok(())
    }
}

/// Full parameter set for one synthetic machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineProfile {
    /// Nominal RAM of the real machine (Table 1).
    pub ram: Bytes,
    /// Fraction of pages that are all-zero at t = 0.
    pub initial_zero: Ratio,
    /// Fraction of pages initially drawn from the shared pool (drives the
    /// duplicate-page percentage of Figure 4).
    pub initial_pool: Ratio,
    /// Number of distinct contents in the shared pool. Smaller pools mean
    /// more duplicates per content.
    pub pool_contents: u32,
    /// The page classes; fractions must sum to 1.
    pub classes: Vec<PageClass>,
    /// Content source mix for updates.
    pub update_mix: UpdateMix,
    /// Fraction of pages whose content is *relocated* to another frame
    /// per hour at activity 1.0. Relocation moves existing content
    /// between frames; it inflates dirty tracking but not content
    /// novelty (Figure 3).
    pub relocation_fraction_per_hour: f64,
    /// Activity modulation over time.
    pub schedule: ActivitySchedule,
    /// Interval between fingerprints (30 min in the paper).
    pub fingerprint_interval: SimDuration,
    /// Total traced duration (7 days for Memory Buddies, 4 for crawlers,
    /// 19 for the desktop).
    pub trace_duration: SimDuration,
    /// If true, fingerprints are only recorded while the machine is
    /// powered on (laptops sleep at night — the paper has only 151–205 of
    /// 336 possible laptop fingerprints).
    pub fingerprints_require_activity: bool,
    /// Mean time between reboots, if the machine reboots during the
    /// trace. A reboot zeroes the hot page class (freshly booted
    /// machines "have a large number of pages containing only zeros",
    /// §2.1 — the zero-page spikes of Figure 4) and drops one
    /// fingerprint ("due to server reboots ... a handful of fingerprints
    /// for the servers are missing", §2.3).
    pub reboot_interval: Option<SimDuration>,
}

impl MachineProfile {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`vecycle_types::Error::InvalidConfig`] when fractions are
    /// out of range or class fractions do not sum to 1.
    pub fn validate(&self) -> vecycle_types::Result<()> {
        let fail = |reason: String| Err(vecycle_types::Error::InvalidConfig { reason });
        if self.ram.is_zero() {
            return fail("ram must be positive".into());
        }
        if !self.initial_zero.is_fraction() || !self.initial_pool.is_fraction() {
            return fail("initial fractions must be in [0, 1]".into());
        }
        if self.initial_zero.as_f64() + self.initial_pool.as_f64() > 1.0 + 1e-9 {
            return fail("initial zero + pool fractions exceed 1".into());
        }
        if self.pool_contents == 0 {
            return fail("pool must contain at least one content".into());
        }
        let class_sum: f64 = self.classes.iter().map(|c| c.fraction).sum();
        if self.classes.is_empty() || (class_sum - 1.0).abs() > 1e-6 {
            return fail(format!(
                "page class fractions must sum to 1 (got {class_sum})"
            ));
        }
        if self
            .classes
            .iter()
            .any(|c| c.fraction < 0.0 || c.updates_per_hour < 0.0)
        {
            return fail("page class parameters must be non-negative".into());
        }
        if let Err(e) = self.update_mix.validate() {
            return fail(e);
        }
        if self.relocation_fraction_per_hour < 0.0 {
            return fail("relocation rate must be non-negative".into());
        }
        if self.fingerprint_interval.is_zero() || self.trace_duration.is_zero() {
            return fail("fingerprint interval and duration must be positive".into());
        }
        if let Some(interval) = self.reboot_interval {
            if interval < self.fingerprint_interval {
                return fail("reboot interval shorter than fingerprint interval".into());
            }
        }
        Ok(())
    }

    /// Expected number of fingerprints if none are skipped.
    pub fn max_fingerprints(&self) -> u64 {
        self.trace_duration.as_nanos() / self.fingerprint_interval.as_nanos() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> MachineProfile {
        MachineProfile {
            ram: Bytes::from_gib(1),
            initial_zero: Ratio::new(0.03),
            initial_pool: Ratio::new(0.10),
            pool_contents: 64,
            classes: vec![
                PageClass {
                    fraction: 0.3,
                    updates_per_hour: 0.0,
                },
                PageClass {
                    fraction: 0.7,
                    updates_per_hour: 0.5,
                },
            ],
            update_mix: UpdateMix {
                pool: 0.1,
                recycle: 0.2,
                zero: 0.02,
            },
            relocation_fraction_per_hour: 0.01,
            schedule: ActivitySchedule::Constant(1.0),
            fingerprint_interval: SimDuration::from_mins(30),
            trace_duration: SimDuration::from_days(7),
            fingerprints_require_activity: false,
            reboot_interval: None,
        }
    }

    #[test]
    fn valid_profile_passes() {
        base().validate().unwrap();
    }

    #[test]
    fn max_fingerprints_matches_paper_density() {
        // 7 days at 30-min intervals: the paper's "ideally 336"
        // (inclusive counting gives 337 instants; the first is t = 0).
        let p = base();
        assert_eq!(p.max_fingerprints(), 337);
    }

    #[test]
    fn class_fractions_must_sum_to_one() {
        let mut p = base();
        p.classes[0].fraction = 0.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn update_mix_must_be_probabilities() {
        let mut p = base();
        p.update_mix.pool = 0.9;
        p.update_mix.recycle = 0.9;
        assert!(p.validate().is_err());
        let mut q = base();
        q.update_mix.zero = -0.1;
        assert!(q.validate().is_err());
    }

    #[test]
    fn zero_plus_pool_must_fit() {
        let mut p = base();
        p.initial_zero = Ratio::new(0.6);
        p.initial_pool = Ratio::new(0.6);
        assert!(p.validate().is_err());
    }

    #[test]
    fn reboot_interval_must_exceed_fingerprint_interval() {
        let mut p = base();
        p.reboot_interval = Some(SimDuration::from_mins(10));
        assert!(p.validate().is_err());
        p.reboot_interval = Some(SimDuration::from_days(3));
        p.validate().unwrap();
    }

    #[test]
    fn degenerate_sizes_rejected() {
        let mut p = base();
        p.ram = Bytes::ZERO;
        assert!(p.validate().is_err());
        let mut q = base();
        q.pool_contents = 0;
        assert!(q.validate().is_err());
        let mut r = base();
        r.fingerprint_interval = SimDuration::ZERO;
        assert!(r.validate().is_err());
    }
}
