//! Post-copy migration (extension; related work \[13\] in the paper).
//!
//! Pre-copy keeps the VM at the *source* until memory has crossed the
//! wire; post-copy moves execution *first* and pulls memory afterwards:
//! background prepaging streams pages while demand faults fetch what the
//! guest touches before prepaging reaches it. Downtime is minimal by
//! construction, but the guest runs degraded until its memory arrives.
//!
//! VeCycle composes naturally with post-copy: a recycled checkpoint
//! means most pages are *already at the destination*, shrinking both the
//! degradation window and the number of remote demand faults. This
//! module quantifies that composition.

use std::collections::HashSet;

use vecycle_checkpoint::PageLookup;
use vecycle_faults::AttemptFaults;
use vecycle_mem::MemoryImage;
use vecycle_net::{wire, TrafficCategory, TrafficLedger};
use vecycle_types::{Bytes, PageCount, PageIndex, SimDuration};

use crate::pipeline::rounds::TransferLoop;
use crate::{MigrationEngine, Strategy};

/// Outcome of a post-copy migration.
#[derive(Debug, Clone)]
pub struct PostCopyReport {
    /// The execution-handover pause (device state only).
    pub downtime: SimDuration,
    /// Time until every page is resident at the destination — the
    /// degradation window during which faults can stall the guest.
    pub completion_time: SimDuration,
    /// Working-set pages that faulted remotely (each stalls the guest
    /// for one WAN/LAN round trip plus a page transfer).
    pub demand_faults: u64,
    /// Total guest stall time from remote faults.
    pub stall_time: SimDuration,
    /// Pages served locally from the recycled checkpoint.
    pub pages_from_checkpoint: PageCount,
    /// Pages pulled over the network.
    pub pages_from_network: PageCount,
    /// Source → destination traffic.
    pub forward: TrafficLedger,
}

impl PostCopyReport {
    /// Source → destination bytes.
    pub fn source_traffic(&self) -> Bytes {
        self.forward.total()
    }
}

impl MigrationEngine {
    /// Runs a post-copy migration of `vm`.
    ///
    /// `working_set` lists the pages the guest touches early after
    /// resuming at the destination — these fault remotely if prepaging
    /// (or the checkpoint) has not supplied them yet. With a VeCycle
    /// [`Strategy`], pages whose content the destination checkpoint
    /// holds are never pulled at all: the source streams their checksums
    /// and the destination materializes them locally.
    ///
    /// # Errors
    ///
    /// Returns [`vecycle_types::Error::InvalidConfig`] if the image is
    /// empty.
    pub fn migrate_postcopy<M: MemoryImage>(
        &self,
        vm: &M,
        strategy: Strategy,
        working_set: &[PageIndex],
    ) -> vecycle_types::Result<PostCopyReport> {
        let n = vm.page_count().as_u64();
        if n == 0 {
            return Err(vecycle_types::Error::InvalidConfig {
                reason: "cannot migrate an empty memory image".into(),
            });
        }

        // Classify pages: resident-via-checkpoint vs network-pulled.
        let mut from_checkpoint = 0u64;
        let mut from_network = 0u64;
        let mut network_pages: HashSet<PageIndex> = HashSet::new();
        for i in 0..n {
            let idx = PageIndex::new(i);
            let digest = vm.page_digest(idx);
            let in_checkpoint = strategy
                .index()
                .map(|ix| ix.contains(digest))
                .unwrap_or(false);
            if in_checkpoint || (digest.is_zero_page()) {
                from_checkpoint += 1;
            } else {
                from_network += 1;
                network_pages.insert(idx);
            }
        }

        let faults = AttemptFaults::none();
        let mut tl = TransferLoop::start(
            self,
            "postcopy",
            &strategy,
            vm.ram_size(),
            vm.page_count(),
            &faults,
        );
        // Handover: vCPU + device state, a few MiB in practice.
        let device_state = Bytes::from_mib(4);
        tl.record_forward(TrafficCategory::Control, device_state);
        let downtime = self.link().transfer_time(device_state);

        // Checksum stream tells the destination which checkpoint pages
        // stand; network pages follow as full pages (prepaging).
        tl.record_forward_many(
            TrafficCategory::Checksums,
            from_checkpoint,
            wire::checksum_msg(),
        );
        tl.record_forward_many(
            TrafficCategory::FullPages,
            from_network,
            wire::full_page_msg(),
        );
        let completion_time =
            self.link()
                .transfer_time(tl.forward_total())
                .max(if strategy.computes_checksums() {
                    // Source hashes the whole image to produce the stream.
                    self.cpu.checksum_time(self.algorithm, vm.ram_size())
                } else {
                    SimDuration::ZERO
                });

        // Demand faults: working-set pages that must come from the
        // network fault before prepaging delivers them (worst case: all
        // of them; prepaging order is oblivious to the working set).
        let demand_faults = working_set
            .iter()
            .filter(|idx| network_pages.contains(idx))
            .count() as u64;
        let per_fault = self
            .link()
            .round_trip()
            .saturating_add(self.link().transfer_time(wire::full_page_msg()));
        let stall_time = SimDuration::from_secs_f64(per_fault.as_secs_f64() * demand_faults as f64);

        let forward = tl.finish_observed(&[
            ("pages_from_checkpoint", from_checkpoint),
            ("pages_from_network", from_network),
            ("demand_faults", demand_faults),
        ]);
        Ok(PostCopyReport {
            downtime,
            completion_time,
            demand_faults,
            stall_time,
            pages_from_checkpoint: PageCount::new(from_checkpoint),
            pages_from_network: PageCount::new(from_network),
            forward,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecycle_mem::{DigestMemory, MutableMemory, PageContent};
    use vecycle_net::LinkSpec;

    fn vm_with_divergence(frac_changed: f64) -> (DigestMemory, DigestMemory) {
        let base = DigestMemory::with_distinct_content(PageCount::new(4096), 3);
        let mut now = base.snapshot();
        let changed = (4096.0 * frac_changed) as u64;
        for i in 0..changed {
            now.write_page(PageIndex::new(i), PageContent::ContentId((1 << 52) | i));
        }
        (base, now)
    }

    #[test]
    fn postcopy_downtime_is_tiny_compared_to_precopy_time() {
        let (cp, vm) = vm_with_divergence(0.5);
        let engine = MigrationEngine::new(LinkSpec::wan_cloudnet());
        let post = engine
            .migrate_postcopy(&vm, Strategy::vecycle(&cp), &[])
            .unwrap();
        let pre = engine.migrate(&vm, Strategy::vecycle(&cp)).unwrap();
        assert!(post.downtime < pre.total_time());
        assert!(post.downtime.as_secs_f64() < 1.5);
    }

    #[test]
    fn checkpoint_shrinks_degradation_window_and_faults() {
        let (cp, vm) = vm_with_divergence(0.25);
        let engine = MigrationEngine::new(LinkSpec::wan_cloudnet());
        let ws: Vec<PageIndex> = (0..2048).map(PageIndex::new).collect();
        let with_cp = engine
            .migrate_postcopy(&vm, Strategy::vecycle(&cp), &ws)
            .unwrap();
        let without = engine.migrate_postcopy(&vm, Strategy::full(), &ws).unwrap();
        assert!(with_cp.completion_time < without.completion_time);
        assert!(with_cp.demand_faults < without.demand_faults);
        assert!(with_cp.stall_time < without.stall_time);
        // 25% of the working set diverged -> 25% of faults remain.
        assert_eq!(with_cp.demand_faults, 1024);
        assert_eq!(without.demand_faults, 2048);
    }

    #[test]
    fn page_accounting_is_conserved() {
        let (cp, vm) = vm_with_divergence(0.3);
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        let r = engine
            .migrate_postcopy(&vm, Strategy::vecycle(&cp), &[])
            .unwrap();
        assert_eq!(
            r.pages_from_checkpoint + r.pages_from_network,
            vm.page_count()
        );
        assert_eq!(
            r.pages_from_network,
            PageCount::new((4096.0_f64 * 0.3) as u64)
        );
    }

    #[test]
    fn full_strategy_pulls_everything() {
        let (_, vm) = vm_with_divergence(0.1);
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        let r = engine.migrate_postcopy(&vm, Strategy::full(), &[]).unwrap();
        assert_eq!(r.pages_from_checkpoint, PageCount::ZERO);
        assert_eq!(r.pages_from_network, vm.page_count());
    }

    #[test]
    fn empty_image_is_rejected() {
        let vm = DigestMemory::zeroed(PageCount::ZERO);
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        assert!(engine.migrate_postcopy(&vm, Strategy::full(), &[]).is_err());
    }
}
