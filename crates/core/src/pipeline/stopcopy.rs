//! The final stop-and-copy flush and the downtime budget it must fit.

use vecycle_mem::MemoryImage;
use vecycle_net::{wire, LinkSpec, TrafficCategory, TrafficLedger};
use vecycle_types::{Bytes, PageIndex, SimDuration};

use crate::MigrationEngine;

impl MigrationEngine {
    /// Pauses the guest, flushes the residual dirty set and hands over
    /// execution: one transfer plus the resume handshake.
    pub(crate) fn stop_and_copy(
        &self,
        dirty_full: u64,
        dirty_zeros: u64,
        forward: &mut TrafficLedger,
        link: LinkSpec,
    ) -> SimDuration {
        // The final flush re-sends pages already transferred once, so
        // XBZRLE applies here as well; zero-page suppression does too —
        // a guest that zeroes pages during the last round pays 13-byte
        // markers, not full pages, exactly as in the copy rounds.
        let page_msg = self.wire_costs().resend_page();
        self.rec_many(
            forward,
            "forward",
            TrafficCategory::FullPages,
            dirty_full,
            page_msg,
        );
        self.rec_many(
            forward,
            "forward",
            TrafficCategory::ZeroMarkers,
            dirty_zeros,
            wire::zero_page_msg(),
        );
        self.rec(
            forward,
            "forward",
            TrafficCategory::Control,
            Bytes::new(wire::MSG_HEADER),
        );
        self.obs_pages(
            "engine_stop_copy_pages_total",
            &[("full", dirty_full), ("zero", dirty_zeros)],
        );
        let bytes = page_msg * dirty_full + wire::zero_page_msg() * dirty_zeros;
        link.transfer_time(bytes).saturating_add(link.round_trip())
    }

    /// Splits a dirty set into (full, zero) page counts under the
    /// current zero-suppression setting.
    pub(crate) fn split_zero_pages<M: MemoryImage>(
        &self,
        vm: &M,
        dirty: &[PageIndex],
    ) -> (u64, u64) {
        if !self.zero_suppression {
            return (dirty.len() as u64, 0);
        }
        let zeros = dirty
            .iter()
            .filter(|idx| vm.page_digest(**idx).is_zero_page())
            .count() as u64;
        (dirty.len() as u64 - zeros, zeros)
    }

    /// Pages the final round may still carry within the downtime target.
    ///
    /// Divides the downtime byte budget by the wire size a resent page
    /// *actually* occupies: XBZRLE deltas and compressed payloads shrink
    /// resends, so more residual pages fit the same pause — using the
    /// uncompressed size here would stop iterating too early and then
    /// overshoot the downtime target it was meant to respect.
    pub(crate) fn downtime_budget_pages(&self) -> u64 {
        let budget = self.link.effective_bandwidth().bytes_in(self.max_downtime);
        budget.as_u64() / self.wire_costs().resend_page().as_u64()
    }
}
