//! The transfer pipeline: one parameterized migration loop.
//!
//! Every migration the engine offers — static, gang, live, faulted,
//! post-copy — is a thin driver over [`rounds::TransferLoop`], so fault
//! handling, wire accounting and observability exist exactly once:
//!
//! * [`wire_costs`] — per-message byte costs, shared with `estimate.rs`.
//! * [`scan`] — the first-round page scan (serial = parallel with one
//!   shard).
//! * [`rounds`] — the [`rounds::TransferLoop`] itself: first round,
//!   resend rounds, abort tracking.
//! * [`stopcopy`] — the final stop-and-copy flush and the downtime
//!   budget.
//! * [`obs`] — metrics/span emission, fused with ledger recording.
//!
//! Two invariants hold by construction. *Clean is faulted*: the clean
//! path is the faulted path with [`vecycle_faults::AttemptFaults::none`],
//! every fault check a no-op. *Serial is parallel*: one thread is the
//! parallel scan with a single shard run inline. Both are pinned by the
//! golden suite and `tests/parallel_props.rs`.

pub(crate) mod obs;
pub(crate) mod rounds;
pub(crate) mod scan;
pub(crate) mod stopcopy;
pub(crate) mod wire_costs;
