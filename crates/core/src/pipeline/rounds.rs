//! [`TransferLoop`]: the one abortable transfer pipeline every
//! migration flavor drives.
//!
//! A transfer is: setup, a first round, zero or more resend rounds, a
//! stop-and-copy flush, completion. The loop owns the ledgers, the
//! migration span, the elapsed clock and the (optional) link-cut
//! tracker; the drivers in `engine.rs` own only the *policy* — when to
//! stop iterating, what the workload dirties in between. The clean path
//! is this loop with [`AttemptFaults::none`]: every fault check is a
//! no-op and the results are bit-identical, a property pinned by the
//! golden suite and `tests/parallel_props.rs`.

use vecycle_checkpoint::{DedupIndex, PageLookup};
use vecycle_faults::{AttemptFaults, FaultCause};
use vecycle_mem::MemoryImage;
use vecycle_net::{wire, LinkSpec, TrafficCategory, TrafficLedger};
use vecycle_obs::SpanId;
use vecycle_types::{Bytes, BytesPerSec, PageCount, PageDigest, PageIndex, SimDuration};

use super::scan::ScanOutcome;
use crate::strategy::PageAction;
use crate::{
    ExchangeProtocol, MigrationEngine, MigrationReport, PageMsg, RoundReport, SetupReport,
    Strategy, Transcript,
};

/// What a (possibly faulted) live migration attempt produced.
///
/// Transient — matched and consumed immediately by the session, never
/// stored in bulk, so the variant size gap is harmless.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum LiveOutcome {
    /// The attempt ran to handover.
    Completed(MigrationReport),
    /// An injected fault killed the transfer mid-flight.
    Aborted(AbortedTransfer),
}

/// The wreckage of an aborted migration attempt: what landed at the
/// destination before the link died, and what the attempt cost.
///
/// The landed map is the raw material of a
/// [`vecycle_checkpoint::PartialCheckpoint`]; the session layer wraps it
/// (the engine does not know VM identities).
#[derive(Debug, Clone)]
pub struct AbortedTransfer {
    /// Why the attempt died.
    pub cause: FaultCause,
    /// Per guest page, the digest of the content that reached the
    /// destination before the cut (page order; `None` = never arrived).
    pub landed: Vec<Option<PageDigest>>,
    /// Source traffic spent on the attempt (all of it wasted).
    pub traffic: Bytes,
    /// Time spent on the attempt before it died.
    pub elapsed: SimDuration,
}

impl AbortedTransfer {
    /// Pages whose content reached the destination.
    pub fn landed_pages(&self) -> PageCount {
        PageCount::new(self.landed.iter().filter(|d| d.is_some()).count() as u64)
    }
}

/// Tracks the forward-path byte cursor of a doomed transfer: messages
/// land until the cumulative payload crosses the cut point, and each
/// landed message deposits its page's digest at the destination.
struct CutTracker {
    limit: u64,
    sent: u64,
    landed: Vec<Option<PageDigest>>,
}

impl CutTracker {
    fn new(limit: Bytes, pages: PageCount) -> Self {
        CutTracker {
            limit: limit.as_u64(),
            sent: 0,
            landed: vec![None; pages.as_u64() as usize],
        }
    }

    /// Accounts one message for page `idx` carrying `digest`. Returns
    /// false (and deposits nothing) if the link dies first.
    fn land(&mut self, bytes: Bytes, idx: PageIndex, digest: PageDigest) -> bool {
        let next = self.sent + bytes.as_u64();
        if next > self.limit {
            return false;
        }
        self.sent = next;
        self.landed[idx.as_usize()] = Some(digest);
        true
    }
}

/// Per-category landed-message counts of a partially transferred round.
#[derive(Default)]
struct LandedCounts {
    full: u64,
    checksums: u64,
    refs: u64,
    zeros: u64,
}

/// How a [`TransferLoop`] handles the first round's message stream.
pub(crate) enum RoundMode<'t> {
    /// Count pages per class only — no per-message work.
    Count,
    /// Record every message into a replayable [`Transcript`].
    Record(&'t mut Transcript),
    /// Walk every message against the armed link cut.
    Walk,
}

/// One in-flight transfer: ledgers, span, rounds, elapsed pre-copy time
/// and the optional link-cut tracker, advanced by the driver one round
/// at a time.
pub(crate) struct TransferLoop<'e> {
    engine: &'e MigrationEngine,
    faults: &'e AttemptFaults,
    span: SpanId,
    setup: SetupReport,
    forward: TrafficLedger,
    reverse: TrafficLedger,
    rounds: Vec<RoundReport>,
    cut: Option<CutTracker>,
    elapsed: SimDuration,
}

impl<'e> TransferLoop<'e> {
    /// Opens the migration span, runs the setup phase and arms the link
    /// cut (if the faults carry one).
    pub(crate) fn start(
        engine: &'e MigrationEngine,
        mode: &'static str,
        strategy: &Strategy,
        ram: Bytes,
        pages: PageCount,
        faults: &'e AttemptFaults,
    ) -> Self {
        let span = engine.obs_migration_start(mode, strategy);
        let forward = TrafficLedger::new();
        let mut reverse = TrafficLedger::new();
        let setup = engine.setup_phase(strategy, ram, &mut reverse);
        let cut = faults
            .cut_after
            .map(|point| CutTracker::new(point.resolve(ram), pages));
        TransferLoop {
            engine,
            faults,
            span,
            setup,
            forward,
            reverse,
            rounds: Vec::new(),
            cut,
            elapsed: SimDuration::ZERO,
        }
    }

    /// Whether a link cut is armed (drivers pick [`RoundMode::Walk`]
    /// when it is).
    pub(crate) fn cut_armed(&self) -> bool {
        self.cut.is_some()
    }

    /// Rounds completed so far.
    pub(crate) fn rounds_len(&self) -> usize {
        self.rounds.len()
    }

    /// Cumulative pre-copy time.
    pub(crate) fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Duration of the most recent round.
    pub(crate) fn last_round_duration(&self) -> SimDuration {
        self.rounds.last().map_or(SimDuration::ZERO, |r| r.duration)
    }

    /// The workload-advance time for a round under a possible
    /// dirty-spike fault.
    pub(crate) fn spiked(&self, round: u32, duration: SimDuration) -> SimDuration {
        spiked_duration(self.faults, round, duration)
    }

    /// Runs round 1: scan, handle the message stream per `mode`, record
    /// the round. An armed cut can kill the round mid-walk; the `Err`
    /// carries the wreckage (already counted and span-closed).
    pub(crate) fn first_round<M: MemoryImage>(
        &mut self,
        vm: &M,
        strategy: &Strategy,
        sent: &mut DedupIndex,
        mode: RoundMode<'_>,
    ) -> Result<(), AbortedTransfer> {
        let engine = self.engine;
        let link = engine.link_for_round(1, self.faults);
        let want_msgs = !matches!(mode, RoundMode::Count);
        let mut scan = engine.scan(vm, strategy, sent, want_msgs);
        match mode {
            RoundMode::Count => {}
            RoundMode::Record(transcript) => {
                if let Some(msgs) = scan.msgs.take() {
                    transcript.extend(msgs);
                }
            }
            RoundMode::Walk => {
                // Walk the message stream against the cut point. If the
                // round survives it is recorded identically to the
                // untracked path; if the link dies mid-round, only landed
                // messages are recorded (the control trailer never made
                // it out).
                let page_msg = engine.wire_costs().full_page();
                let tracker = self.cut.as_mut().expect("walk mode requires an armed cut");
                let mut landed = LandedCounts::default();
                let mut aborted = false;
                for msg in scan.msgs.as_deref().expect("tracked scan records messages") {
                    let (idx, size) = match msg {
                        PageMsg::Full { idx, .. } => (*idx, page_msg),
                        PageMsg::Checksum { idx, .. } => (*idx, wire::checksum_msg()),
                        PageMsg::DedupRef { idx, .. } => (*idx, wire::dedup_ref_msg()),
                        PageMsg::Zero { idx } => (*idx, wire::zero_page_msg()),
                    };
                    if !tracker.land(size, idx, vm.page_digest(idx)) {
                        aborted = true;
                        break;
                    }
                    match msg {
                        PageMsg::Full { .. } => landed.full += 1,
                        PageMsg::Checksum { .. } => landed.checksums += 1,
                        PageMsg::DedupRef { .. } => landed.refs += 1,
                        PageMsg::Zero { .. } => landed.zeros += 1,
                    }
                }
                if aborted {
                    engine.rec_many(
                        &mut self.forward,
                        "forward",
                        TrafficCategory::FullPages,
                        landed.full,
                        page_msg,
                    );
                    engine.rec_many(
                        &mut self.forward,
                        "forward",
                        TrafficCategory::Checksums,
                        landed.checksums,
                        wire::checksum_msg(),
                    );
                    engine.rec_many(
                        &mut self.forward,
                        "forward",
                        TrafficCategory::DedupRefs,
                        landed.refs,
                        wire::dedup_ref_msg(),
                    );
                    engine.rec_many(
                        &mut self.forward,
                        "forward",
                        TrafficCategory::ZeroMarkers,
                        landed.zeros,
                        wire::zero_page_msg(),
                    );
                    let wreck = AbortedTransfer {
                        cause: self.faults.abort_cause(),
                        landed: std::mem::take(
                            &mut self.cut.as_mut().expect("cut tracker armed").landed,
                        ),
                        traffic: self.forward.total(),
                        elapsed: link.transfer_time(self.forward.total()),
                    };
                    engine.obs_abort(self.span, 1, &wreck);
                    return Err(wreck);
                }
            }
        }
        let round = self.finish_first_round(vm.page_count().as_u64(), &scan, strategy, link);
        engine.obs_round(&round);
        self.elapsed = self.elapsed.saturating_add(round.duration);
        self.rounds.push(round);
        Ok(())
    }

    /// Records a completed round-1 scan into the ledgers and computes its
    /// [`RoundReport`] — shared between the clean and cut-tracked paths,
    /// so a surviving faulted round is accounted bit-identically to a
    /// fault-free one.
    fn finish_first_round(
        &mut self,
        n: u64,
        scan: &ScanOutcome,
        strategy: &Strategy,
        link: LinkSpec,
    ) -> RoundReport {
        let engine = self.engine;
        let &ScanOutcome {
            full,
            checksums,
            refs,
            skipped,
            zeros,
            ..
        } = scan;

        let page_msg = engine.wire_costs().full_page();
        engine.rec_many(
            &mut self.forward,
            "forward",
            TrafficCategory::FullPages,
            full,
            page_msg,
        );
        engine.rec_many(
            &mut self.forward,
            "forward",
            TrafficCategory::Checksums,
            checksums,
            wire::checksum_msg(),
        );
        engine.rec_many(
            &mut self.forward,
            "forward",
            TrafficCategory::DedupRefs,
            refs,
            wire::dedup_ref_msg(),
        );
        engine.rec_many(
            &mut self.forward,
            "forward",
            TrafficCategory::ZeroMarkers,
            zeros,
            wire::zero_page_msg(),
        );
        engine.rec(
            &mut self.forward,
            "forward",
            TrafficCategory::Control,
            Bytes::new(wire::MSG_HEADER),
        );
        // Miyakodori ships the page-reuse bitmap so the destination knows
        // which checkpoint pages stand (1 bit per page).
        if skipped > 0 {
            engine.rec(
                &mut self.forward,
                "forward",
                TrafficCategory::Control,
                Bytes::new(n.div_ceil(8) + wire::MSG_HEADER),
            );
        }

        let mut query_time = SimDuration::ZERO;
        if strategy.needs_exchange() {
            if let ExchangeProtocol::PerPage { pipeline_depth } = engine.exchange {
                // Every scanned page costs a query/reply pair; queries
                // pipeline `pipeline_depth` deep.
                engine.rec_many(
                    &mut self.forward,
                    "forward",
                    TrafficCategory::Checksums,
                    n,
                    wire::page_query(),
                );
                engine.rec_many(
                    &mut self.reverse,
                    "reverse",
                    TrafficCategory::Control,
                    n,
                    wire::page_query_reply(),
                );
                let rtts = n.div_ceil(u64::from(pipeline_depth.max(1)));
                query_time =
                    SimDuration::from_secs_f64(link.round_trip().as_secs_f64() * rtts as f64);
            }
        }

        let bytes = self.forward.total();
        let network = link.transfer_time(bytes);
        // §3.4: with reuse, the checksum rate bounds the round from
        // below; checksums for all n pages are computed during round 1.
        let checksum_cost = if strategy.computes_checksums() {
            engine
                .cpu
                .checksum_time(engine.algorithm, Bytes::from_pages(n))
        } else {
            SimDuration::ZERO
        };
        let compress_cost = match engine.compression {
            Some(c) => c.time(Bytes::from_pages(full)),
            None => SimDuration::ZERO,
        };
        let duration = network
            .max(checksum_cost)
            .max(compress_cost)
            .saturating_add(query_time);

        RoundReport {
            round: 1,
            full_pages: PageCount::new(full),
            checksum_pages: PageCount::new(checksums),
            dedup_refs: PageCount::new(refs),
            skipped_pages: PageCount::new(skipped),
            zero_pages: PageCount::new(zeros),
            bytes_sent: bytes,
            duration,
        }
    }

    /// Runs one resend round over the drained dirty set. Every resend
    /// goes back through the strategy: a guest that rewrites a page with
    /// content the destination's checkpoint already holds costs a 28-byte
    /// checksum message, not a full page (§3.1 — the re-dirtied page is
    /// classified exactly like a first-round page, minus the stale
    /// reusable-set check). Returns the round's duration, or the
    /// wreckage if the armed cut struck mid-round.
    pub(crate) fn resend_round<M: MemoryImage>(
        &mut self,
        vm: &M,
        dirty: &[PageIndex],
        strategy: &Strategy,
        sent: &mut DedupIndex,
    ) -> Result<SimDuration, AbortedTransfer> {
        let engine = self.engine;
        let round_no = self.rounds.len() as u32 + 1;
        let link = engine.link_for_round(round_no, self.faults);
        let page_msg = engine.wire_costs().resend_page();
        let mut full = 0u64;
        let mut checksums = 0u64;
        let mut refs = 0u64;
        let mut zeros = 0u64;
        let mut aborted = false;
        // The dirty set arrives in ascending page order, so dedup cache
        // updates stay deterministic across runs.
        for &idx in dirty {
            let digest = vm.page_digest(idx);
            if engine.zero_suppression && digest.is_zero_page() {
                if let Some(tracker) = self.cut.as_mut() {
                    if !tracker.land(wire::zero_page_msg(), idx, digest) {
                        aborted = true;
                        break;
                    }
                }
                zeros += 1;
                continue;
            }
            let action = strategy.classify_resend(digest, sent);
            if let Some(tracker) = self.cut.as_mut() {
                let size = match action {
                    PageAction::SendFull => page_msg,
                    PageAction::SendChecksum => wire::checksum_msg(),
                    PageAction::SendDedupRef(_) => wire::dedup_ref_msg(),
                    PageAction::Skip => unreachable!("classify_resend never skips"),
                };
                if !tracker.land(size, idx, digest) {
                    aborted = true;
                    break;
                }
            }
            match action {
                PageAction::SendFull => {
                    full += 1;
                    sent.insert_first(digest, idx);
                }
                PageAction::SendChecksum => {
                    checksums += 1;
                    sent.insert_first(digest, idx);
                }
                PageAction::SendDedupRef(_) => refs += 1,
                PageAction::Skip => unreachable!("classify_resend never skips"),
            }
        }
        let bytes = page_msg * full
            + wire::checksum_msg() * checksums
            + wire::dedup_ref_msg() * refs
            + wire::zero_page_msg() * zeros;
        engine.rec_many(
            &mut self.forward,
            "forward",
            TrafficCategory::FullPages,
            full,
            page_msg,
        );
        engine.rec_many(
            &mut self.forward,
            "forward",
            TrafficCategory::Checksums,
            checksums,
            wire::checksum_msg(),
        );
        engine.rec_many(
            &mut self.forward,
            "forward",
            TrafficCategory::DedupRefs,
            refs,
            wire::dedup_ref_msg(),
        );
        engine.rec_many(
            &mut self.forward,
            "forward",
            TrafficCategory::ZeroMarkers,
            zeros,
            wire::zero_page_msg(),
        );
        engine.obs_pages(
            "engine_resend_pages_total",
            &[
                ("full", full),
                ("checksum", checksums),
                ("dedup_ref", refs),
                ("zero", zeros),
            ],
        );
        if aborted {
            // Landed messages are accounted above; the control trailer
            // never made it out.
            let wreck = AbortedTransfer {
                cause: self.faults.abort_cause(),
                landed: std::mem::take(&mut self.cut.as_mut().expect("cut tracker armed").landed),
                traffic: self.forward.total(),
                elapsed: self.elapsed.saturating_add(link.transfer_time(bytes)),
            };
            engine.obs_abort(self.span, round_no, &wreck);
            return Err(wreck);
        }
        engine.rec(
            &mut self.forward,
            "forward",
            TrafficCategory::Control,
            Bytes::new(wire::MSG_HEADER),
        );
        // Re-dirtied pages must be re-hashed before the index lookup.
        let checksum_cost = if strategy.computes_checksums() {
            engine
                .cpu
                .checksum_time(engine.algorithm, Bytes::from_pages(dirty.len() as u64))
        } else {
            SimDuration::ZERO
        };
        let compress_cost = match engine.compression {
            Some(c) => c.time(Bytes::from_pages(full)),
            None => SimDuration::ZERO,
        };
        let duration = link
            .transfer_time(bytes)
            .max(checksum_cost)
            .max(compress_cost);
        self.rounds.push(RoundReport {
            round: round_no,
            full_pages: PageCount::new(full),
            checksum_pages: PageCount::new(checksums),
            dedup_refs: PageCount::new(refs),
            skipped_pages: PageCount::ZERO,
            zero_pages: PageCount::new(zeros),
            bytes_sent: bytes,
            duration,
        });
        engine.obs_round(self.rounds.last().expect("just pushed"));
        self.elapsed = self.elapsed.saturating_add(duration);
        Ok(duration)
    }

    /// Runs the final stop-and-copy flush over the residual dirty set
    /// and returns the downtime. The armed cut can strike this flush
    /// too; the `Err` carries the wreckage.
    pub(crate) fn stop_copy<M: MemoryImage>(
        &mut self,
        vm: &M,
        dirty: &[PageIndex],
    ) -> Result<SimDuration, AbortedTransfer> {
        let engine = self.engine;
        let final_round = self.rounds.len() as u32 + 1;
        let link_final = engine.link_for_round(final_round, self.faults);
        if let Some(tracker) = self.cut.as_mut() {
            let page_msg = engine.wire_costs().resend_page();
            let mut landed_full = 0u64;
            let mut landed_zeros = 0u64;
            let mut aborted = false;
            for &idx in dirty {
                let digest = vm.page_digest(idx);
                let (size, zero) = if engine.zero_suppression && digest.is_zero_page() {
                    (wire::zero_page_msg(), true)
                } else {
                    (page_msg, false)
                };
                if !tracker.land(size, idx, digest) {
                    aborted = true;
                    break;
                }
                if zero {
                    landed_zeros += 1;
                } else {
                    landed_full += 1;
                }
            }
            if aborted {
                engine.rec_many(
                    &mut self.forward,
                    "forward",
                    TrafficCategory::FullPages,
                    landed_full,
                    page_msg,
                );
                engine.rec_many(
                    &mut self.forward,
                    "forward",
                    TrafficCategory::ZeroMarkers,
                    landed_zeros,
                    wire::zero_page_msg(),
                );
                let bytes = page_msg * landed_full + wire::zero_page_msg() * landed_zeros;
                let wreck = AbortedTransfer {
                    cause: self.faults.abort_cause(),
                    landed: std::mem::take(
                        &mut self.cut.as_mut().expect("cut tracker armed").landed,
                    ),
                    traffic: self.forward.total(),
                    elapsed: self.elapsed.saturating_add(link_final.transfer_time(bytes)),
                };
                engine.obs_abort(self.span, final_round, &wreck);
                return Err(wreck);
            }
        }
        let (residue_full, residue_zeros) = engine.split_zero_pages(vm, dirty);
        Ok(engine.stop_and_copy(residue_full, residue_zeros, &mut self.forward, link_final))
    }

    /// Seals the transfer into a [`MigrationReport`], exporting the
    /// ledgers and closing the migration span.
    pub(crate) fn complete(
        self,
        strategy: &Strategy,
        ram: Bytes,
        downtime: SimDuration,
        converged: bool,
    ) -> MigrationReport {
        let mut report = MigrationReport::new(
            strategy.name(),
            ram,
            self.rounds,
            downtime,
            self.setup,
            self.forward,
            self.reverse,
        );
        report.set_converged(converged);
        self.engine.obs_migration_end(self.span, &report);
        report
    }

    /// Records one forward-path message outside the round structure
    /// (post-copy streams its traffic directly).
    pub(crate) fn record_forward(&mut self, category: TrafficCategory, bytes: Bytes) {
        self.engine
            .rec(&mut self.forward, "forward", category, bytes);
    }

    /// Bulk form of [`TransferLoop::record_forward`].
    pub(crate) fn record_forward_many(
        &mut self,
        category: TrafficCategory,
        count: u64,
        size: Bytes,
    ) {
        self.engine
            .rec_many(&mut self.forward, "forward", category, count, size);
    }

    /// Forward-path bytes recorded so far.
    pub(crate) fn forward_total(&self) -> Bytes {
        self.forward.total()
    }

    /// Seals a round-less transfer (post-copy): exports both ledgers to
    /// `net_wire_*`, closes the migration span with `attrs`, and hands
    /// the forward ledger back for the caller's report.
    pub(crate) fn finish_observed(self, attrs: &[(&str, u64)]) -> TrafficLedger {
        vecycle_net::observe_ledger(&self.engine.metrics, "forward", &self.forward);
        vecycle_net::observe_ledger(&self.engine.metrics, "reverse", &self.reverse);
        self.engine.metrics.span_end(self.span, attrs);
        self.forward
    }
}

impl MigrationEngine {
    /// Runs the destination's setup phase: checkpoint read + index build,
    /// plus the bulk checksum exchange when that protocol is active.
    pub(crate) fn setup_phase(
        &self,
        strategy: &Strategy,
        ram: Bytes,
        reverse: &mut TrafficLedger,
    ) -> SetupReport {
        let Some(index) = strategy.index() else {
            return SetupReport::default();
        };
        // Destination: sequential checkpoint read, hashing each block as
        // it streams past (§3.3); the slower of disk and hash rate wins.
        let read = self
            .dest_disk
            .sequential_time(ram)
            .max(self.cpu.checksum_time(self.algorithm, ram));
        // Sorting ~n log n digest comparisons; ~20 ns per element-move is
        // generous for 16-byte keys.
        let entries = index.distinct() as u64;
        let index_build = SimDuration::from_nanos(
            entries.max(1) * (64 - entries.max(2).leading_zeros() as u64) * 20,
        );
        let mut setup = SetupReport {
            checkpoint_read: read,
            checkpoint_write: SimDuration::ZERO,
            index_build,
            exchange_bytes: Bytes::ZERO,
            exchange_time: SimDuration::ZERO,
        };
        if matches!(self.exchange, ExchangeProtocol::Bulk) {
            let bytes = wire::bulk_exchange(entries);
            self.rec(reverse, "reverse", TrafficCategory::BulkExchange, bytes);
            setup.exchange_bytes = bytes;
            setup.exchange_time = self.link.transfer_time(bytes);
        }
        setup
    }

    /// The link a given round experiences under the attempt's faults: a
    /// `LinkDegrade` fault multiplies bandwidth by its factor from its
    /// onset round onward. Clean attempts always see the engine's link.
    pub(crate) fn link_for_round(&self, round: u32, faults: &AttemptFaults) -> LinkSpec {
        match faults.degrade {
            Some((factor, from_round)) if round >= from_round => self
                .link
                .with_bandwidth(BytesPerSec::new(self.link.bandwidth().as_f64() * factor)),
            _ => self.link,
        }
    }
}

/// The workload-advance time for a round under a possible dirty-spike
/// fault: from the spike's onset round the guest dirties memory as if
/// `factor`× the round duration had elapsed. Clean attempts (and rounds
/// before the onset) pass the duration through untouched, bit-exactly.
fn spiked_duration(faults: &AttemptFaults, round: u32, duration: SimDuration) -> SimDuration {
    match faults.dirty_spike {
        Some((factor, from_round)) if round >= from_round && factor > 1.0 => {
            SimDuration::from_secs_f64(duration.as_secs_f64() * factor)
        }
        _ => duration,
    }
}
