//! [`WireCosts`]: the single source of truth for per-message wire sizes.
//!
//! Both the transfer pipeline and the closed-form estimators in
//! [`crate::estimate`] price pages through this type, so an analytic
//! prediction can never drift from what the engine actually charges —
//! the agreement is pinned per strategy in this module's tests.

use vecycle_net::wire;
use vecycle_types::{Bytes, BytesPerSec, SimDuration, PAGE_SIZE};

/// A delta/block-compression model for full-page payloads.
///
/// Svärd et al. \[24 in the paper\] show compression shrinks migration
/// data at a CPU cost; this model captures both: payloads shrink to
/// `ratio` of their size, and compressing competes with the wire for
/// round time at `throughput`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaCompression {
    ratio: f64,
    throughput: BytesPerSec,
}

impl DeltaCompression {
    /// Creates a compression model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ratio ≤ 1`.
    pub fn new(ratio: f64, throughput: BytesPerSec) -> Self {
        assert!(
            ratio > 0.0 && ratio <= 1.0,
            "compression ratio must be in (0, 1], got {ratio}"
        );
        DeltaCompression { ratio, throughput }
    }

    /// The output/input size ratio.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Compressed wire size of a payload.
    pub fn compress(&self, payload: Bytes) -> Bytes {
        Bytes::new((payload.as_f64() * self.ratio).ceil() as u64)
    }

    /// CPU time to compress a payload.
    pub fn time(&self, payload: Bytes) -> SimDuration {
        self.throughput.time_to_transfer(payload)
    }
}

/// QEMU-style XBZRLE delta encoding for *re-sent* pages.
///
/// In pre-copy rounds ≥ 2 the source re-sends pages the guest dirtied;
/// QEMU's XBZRLE cache keeps the previously-sent version and transmits
/// only the byte delta when the page is still cached. Modeled here as a
/// cache hit rate and a mean delta/page size ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Xbzrle {
    hit_rate: f64,
    delta_ratio: f64,
}

impl Xbzrle {
    /// Creates an XBZRLE model.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are in `[0, 1]`.
    pub fn new(hit_rate: f64, delta_ratio: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&hit_rate) && (0.0..=1.0).contains(&delta_ratio),
            "xbzrle parameters must be fractions: hit {hit_rate}, delta {delta_ratio}"
        );
        Xbzrle {
            hit_rate,
            delta_ratio,
        }
    }

    /// Mean wire bytes for one re-sent page of `raw` bytes.
    pub fn resend_bytes(&self, raw: Bytes) -> Bytes {
        let mean = self.hit_rate * self.delta_ratio + (1.0 - self.hit_rate);
        Bytes::new((raw.as_f64() * mean).ceil() as u64)
    }
}

/// The exact byte cost of every message class one migration can emit,
/// fixed at engine-configuration time (compression and XBZRLE fold into
/// the page sizes; the small-message classes come straight from
/// [`vecycle_net::wire`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireCosts {
    full_page: Bytes,
    resend_page: Bytes,
}

impl WireCosts {
    /// Derives the cost table from the active encodings.
    pub fn new(compression: Option<DeltaCompression>, xbzrle: Option<Xbzrle>) -> Self {
        let full_page = match compression {
            Some(c) => {
                let payload = c.compress(Bytes::new(PAGE_SIZE));
                Bytes::new(wire::MSG_HEADER + wire::CHECKSUM_SIZE) + payload
            }
            None => wire::full_page_msg(),
        };
        let resend_page = match xbzrle {
            Some(x) => {
                Bytes::new(wire::MSG_HEADER + wire::CHECKSUM_SIZE)
                    + x.resend_bytes(Bytes::new(PAGE_SIZE))
            }
            None => full_page,
        };
        WireCosts {
            full_page,
            resend_page,
        }
    }

    /// The cost table with no compression and no XBZRLE — what the
    /// closed-form estimators assume.
    pub fn uncompressed() -> Self {
        WireCosts::new(None, None)
    }

    /// Wire size of one full-page message in the first round (after
    /// optional compression).
    pub fn full_page(&self) -> Bytes {
        self.full_page
    }

    /// Wire size of one *re-sent* full page (rounds ≥ 2 and the final
    /// flush): XBZRLE delta-encodes against the cached previous version
    /// when enabled, otherwise the (possibly compressed) full-page size.
    pub fn resend_page(&self) -> Bytes {
        self.resend_page
    }

    /// Wire size of a checksum-only message (content exists remotely).
    pub fn checksum(&self) -> Bytes {
        wire::checksum_msg()
    }

    /// Wire size of a dedup back-reference.
    pub fn dedup_ref(&self) -> Bytes {
        wire::dedup_ref_msg()
    }

    /// Wire size of a suppressed-zero-page marker.
    pub fn zero_marker(&self) -> Bytes {
        wire::zero_page_msg()
    }

    /// Wire size of one end-of-round control trailer.
    pub fn control_trailer(&self) -> Bytes {
        Bytes::new(wire::MSG_HEADER)
    }

    /// Wire size of the Miyakodori page-reuse bitmap over `n` pages
    /// (1 bit per page plus one message header).
    pub fn reuse_bitmap(&self, n: u64) -> Bytes {
        Bytes::new(n.div_ceil(8) + wire::MSG_HEADER)
    }
}

impl crate::MigrationEngine {
    /// The wire-cost table this engine's configuration implies.
    pub fn wire_costs(&self) -> WireCosts {
        WireCosts::new(self.compression, self.xbzrle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MigrationEngine, Strategy, StrategyName};
    use vecycle_mem::{DigestMemory, GenerationTable, MemoryImage, MutableMemory, PageContent};
    use vecycle_net::LinkSpec;
    use vecycle_types::PageIndex;

    /// Builds one concrete strategy per [`StrategyName`] against a
    /// shared checkpoint of `vm`.
    fn strategy_matrix(vm: &DigestMemory) -> Vec<Strategy> {
        // Miyakodori tracks write generations, not content: dirty every
        // third page so its first round mixes skips with sends.
        let mut table = GenerationTable::new(vm.page_count());
        let snapshot = table.snapshot();
        for i in (0..vm.page_count().as_u64()).step_by(3) {
            table.bump(PageIndex::new(i));
        }
        vec![
            Strategy::full(),
            Strategy::dedup(),
            Strategy::miyakodori(&table, &snapshot),
            Strategy::miyakodori(&table, &snapshot).with_dedup(),
            Strategy::vecycle(vm),
            Strategy::vecycle(vm).with_dedup(),
        ]
    }

    /// The engine charges exactly what [`WireCosts`] predicts, for every
    /// strategy family: reconstructing a migration's forward traffic
    /// from its round report and the cost table matches the ledger to
    /// the byte. This is the anti-drift contract `estimate.rs` relies
    /// on.
    #[test]
    fn engine_charges_agree_with_wire_costs_for_every_strategy() {
        let base = DigestMemory::with_uniform_content(Bytes::from_mib(4), 11).unwrap();
        let mut vm = base.snapshot();
        let n = vm.page_count().as_u64();
        // Mix in duplicates and zero pages so every message class fires.
        for i in 0..n / 8 {
            vm.write_page(
                PageIndex::new(i * 4),
                PageContent::ContentId((1 << 47) | (i % 16)),
            );
        }
        for i in 0..n / 32 {
            vm.write_page(PageIndex::new(i * 16 + 3), PageContent::ContentId(0));
        }
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        let costs = engine.wire_costs();
        let mut seen = std::collections::HashSet::new();
        for strategy in strategy_matrix(&base) {
            seen.insert(strategy.name());
            let report = engine.migrate(&vm, strategy).unwrap();
            let r1 = &report.rounds()[0];
            let mut predicted = costs.full_page() * r1.full_pages.as_u64()
                + costs.checksum() * r1.checksum_pages.as_u64()
                + costs.dedup_ref() * r1.dedup_refs.as_u64()
                + costs.zero_marker() * r1.zero_pages.as_u64()
                + costs.control_trailer();
            if r1.skipped_pages.as_u64() > 0 {
                predicted += costs.reuse_bitmap(n);
            }
            assert_eq!(
                r1.bytes_sent,
                predicted,
                "round-1 bytes drift from WireCosts under {}",
                report.strategy()
            );
            // The static path's stop-and-copy is an empty flush: one
            // more control trailer.
            assert_eq!(
                report.source_traffic(),
                predicted + costs.control_trailer(),
                "total traffic drifts from WireCosts under {}",
                report.strategy()
            );
        }
        assert_eq!(seen.len(), 6, "every StrategyName must be covered");
        for name in [
            StrategyName::Full,
            StrategyName::Dedup,
            StrategyName::Dirty,
            StrategyName::DirtyDedup,
            StrategyName::VeCycle,
            StrategyName::VeCycleDedup,
        ] {
            assert!(seen.contains(&name), "{name} missing from the matrix");
        }
    }

    #[test]
    fn compression_and_xbzrle_fold_into_the_page_sizes() {
        let plain = WireCosts::uncompressed();
        assert_eq!(plain.full_page(), wire::full_page_msg());
        assert_eq!(plain.resend_page(), plain.full_page());

        let c = DeltaCompression::new(0.5, BytesPerSec::from_mib_per_sec(800));
        let compressed = WireCosts::new(Some(c), None);
        assert!(compressed.full_page() < plain.full_page());
        assert_eq!(compressed.resend_page(), compressed.full_page());

        let x = Xbzrle::new(0.9, 0.1);
        let delta = WireCosts::new(Some(c), Some(x));
        assert_eq!(delta.full_page(), compressed.full_page());
        assert!(delta.resend_page() < delta.full_page());
    }

    #[test]
    fn small_message_classes_come_from_the_wire_module() {
        let costs = WireCosts::uncompressed();
        assert_eq!(costs.checksum(), wire::checksum_msg());
        assert_eq!(costs.dedup_ref(), wire::dedup_ref_msg());
        assert_eq!(costs.zero_marker(), wire::zero_page_msg());
        assert_eq!(costs.control_trailer().as_u64(), wire::MSG_HEADER);
        assert_eq!(costs.reuse_bitmap(16).as_u64(), 2 + wire::MSG_HEADER);
    }
}
