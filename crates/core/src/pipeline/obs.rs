//! Observability for the transfer pipeline.
//!
//! Ledger recording and metric emission are fused here — [`rec`] and
//! [`rec_many`] update a [`TrafficLedger`] *and* the `engine_wire_*`
//! counters in one step, so the two accountings cannot drift apart at a
//! call site. This module is the only place the pipeline touches the
//! metrics registry.
//!
//! [`rec`]: MigrationEngine::rec
//! [`rec_many`]: MigrationEngine::rec_many

use vecycle_net::{TrafficCategory, TrafficLedger};
use vecycle_obs::{layouts, FieldValue, SpanId};
use vecycle_types::{Bytes, PageCount, PageIndex};

use super::rounds::AbortedTransfer;
use crate::{MigrationEngine, MigrationReport, RoundReport, Strategy};

impl MigrationEngine {
    /// Records traffic in a ledger *and* in the engine-side
    /// `engine_wire_*` counters in one step, so the two accountings
    /// cannot drift apart at a call site. [`vecycle_net::observe_ledger`]
    /// later exports the finished ledger into the independent `net_wire_*`
    /// family; the invariant suite reconciles the two.
    pub(crate) fn rec(
        &self,
        ledger: &mut TrafficLedger,
        direction: &'static str,
        category: TrafficCategory,
        bytes: Bytes,
    ) {
        ledger.record(category, bytes);
        self.obs_wire(direction, category, 1, bytes);
    }

    /// Bulk form of [`MigrationEngine::rec`]: `count` messages of `size`
    /// bytes each.
    pub(crate) fn rec_many(
        &self,
        ledger: &mut TrafficLedger,
        direction: &'static str,
        category: TrafficCategory,
        count: u64,
        size: Bytes,
    ) {
        ledger.record_many(category, count, size);
        self.obs_wire(direction, category, count, size * count);
    }

    /// Bumps the engine-side wire counters; zero-message records are
    /// skipped so the series set stays minimal (and matches the skip rule
    /// of [`vecycle_net::observe_ledger`]).
    fn obs_wire(&self, direction: &str, category: TrafficCategory, messages: u64, bytes: Bytes) {
        if messages == 0 && bytes == Bytes::ZERO {
            return;
        }
        let labels = [("direction", direction), ("kind", category.label())];
        self.metrics
            .inc("engine_wire_bytes_total", &labels, bytes.as_u64());
        self.metrics
            .inc("engine_wire_messages_total", &labels, messages);
    }

    /// Bumps one `{class}`-labelled page counter per nonzero class.
    pub(crate) fn obs_pages(&self, name: &str, classes: &[(&str, u64)]) {
        for &(class, count) in classes {
            if count > 0 {
                self.metrics.inc(name, &[("class", class)], count);
            }
        }
    }

    /// Opens the `migration` root span and counts the attempt.
    pub(crate) fn obs_migration_start(&self, mode: &'static str, strategy: &Strategy) -> SpanId {
        let name = strategy.name().to_string();
        let labels = [("mode", mode), ("strategy", name.as_str())];
        self.metrics.inc("engine_migrations_total", &labels, 1);
        self.metrics.span_start("migration", &labels)
    }

    /// Closes the migration span with summary attributes, feeds the
    /// per-migration histograms, and exports the completed ledgers to the
    /// `net_wire_*` counter families — the second, independent accounting
    /// of the same traffic.
    pub(crate) fn obs_migration_end(&self, span: SpanId, report: &MigrationReport) {
        vecycle_net::observe_ledger(&self.metrics, "forward", report.forward_ledger());
        vecycle_net::observe_ledger(&self.metrics, "reverse", report.reverse_ledger());
        self.metrics.observe(
            "engine_migration_rounds",
            &[],
            layouts::ROUNDS,
            report.rounds().len() as u64,
        );
        self.metrics.observe(
            "engine_downtime_sim_millis",
            &[],
            layouts::SIM_MILLIS,
            report.downtime().as_nanos() / 1_000_000,
        );
        self.metrics.span_end(
            span,
            &[
                ("rounds", report.rounds().len() as u64),
                ("forward_bytes", report.source_traffic().as_u64()),
                ("downtime_ns", report.downtime().as_nanos()),
            ],
        );
    }

    /// Closes the migration span for an attempt a fault killed, leaving
    /// an `engine_abort` event carrying the wreckage counts. The aborted
    /// attempt's landed bytes stay in the `engine_wire_*` counters but
    /// never reach `net_wire_*` (no completed ledger) — the difference
    /// between the families is exactly the wasted wire traffic.
    pub(crate) fn obs_abort(&self, span: SpanId, round: u32, wreck: &AbortedTransfer) {
        self.metrics.inc("engine_aborts_total", &[], 1);
        self.metrics.event(
            "engine_abort",
            &[
                ("round", FieldValue::from(u64::from(round))),
                (
                    "landed_pages",
                    FieldValue::from(wreck.landed_pages().as_u64()),
                ),
                ("traffic_bytes", FieldValue::from(wreck.traffic.as_u64())),
            ],
        );
        self.metrics.span_end(span, &[("aborted", 1)]);
    }

    /// Counts a freshly drained dirty set.
    pub(crate) fn obs_dirty(&self, dirty: &[PageIndex]) {
        if !dirty.is_empty() {
            self.metrics
                .inc("engine_dirty_pages_total", &[], dirty.len() as u64);
        }
    }

    /// Emits one completed round: a `round` span with one `page_class`
    /// child span per nonzero class, plus the per-round histograms.
    pub(crate) fn obs_round(&self, report: &RoundReport) {
        let round = report.round.to_string();
        let span = self
            .metrics
            .span_start("round", &[("round", round.as_str())]);
        for (class, pages) in [
            ("full", report.full_pages),
            ("checksum", report.checksum_pages),
            ("dedup_ref", report.dedup_refs),
            ("skipped", report.skipped_pages),
            ("zero", report.zero_pages),
        ] {
            if pages == PageCount::ZERO {
                continue;
            }
            let child = self.metrics.span_start("page_class", &[("class", class)]);
            self.metrics.span_end(child, &[("pages", pages.as_u64())]);
        }
        self.metrics.span_end(
            span,
            &[
                ("bytes", report.bytes_sent.as_u64()),
                ("sim_ns", report.duration.as_nanos()),
            ],
        );
        self.metrics.observe(
            "engine_round_bytes",
            &[],
            layouts::BYTES,
            report.bytes_sent.as_u64(),
        );
        self.metrics.observe(
            "engine_round_sim_millis",
            &[],
            layouts::SIM_MILLIS,
            report.duration.as_nanos() / 1_000_000,
        );
    }
}
