//! The first-round page scan: one phased algorithm for every thread
//! count.
//!
//! There is no separate sequential scan. One thread is simply the
//! parallel scan with a single shard, run inline on the caller's thread —
//! the *serial-is-parallel* invariant. Results are bit-identical for any
//! thread count (`tests/parallel_props.rs` pins this): the phases merge
//! shards in page order, so the dedup cache resolves exactly as a
//! one-page-at-a-time walk would have resolved it.

use vecycle_checkpoint::{DedupIndex, DigestTable};
use vecycle_mem::{MemoryImage, PageArena};
use vecycle_types::{PageDigest, PageIndex};

use crate::strategy::PageAction;
use crate::{MigrationEngine, PageMsg, Strategy};

/// What one first-round scan produced: per-action page counts and, when
/// a transcript was requested, the ordered message stream.
pub(crate) struct ScanOutcome {
    pub(crate) full: u64,
    pub(crate) checksums: u64,
    pub(crate) refs: u64,
    pub(crate) skipped: u64,
    pub(crate) zeros: u64,
    pub(crate) msgs: Option<Vec<PageMsg>>,
}

impl ScanOutcome {
    fn new(want_msgs: bool) -> Self {
        ScanOutcome {
            full: 0,
            checksums: 0,
            refs: 0,
            skipped: 0,
            zeros: 0,
            msgs: want_msgs.then(Vec::new),
        }
    }

    /// Appends a later shard's outcome (shards arrive in page order).
    fn merge(&mut self, part: ScanOutcome) {
        self.full += part.full;
        self.checksums += part.checksums;
        self.refs += part.refs;
        self.skipped += part.skipped;
        self.zeros += part.zeros;
        if let (Some(acc), Some(msgs)) = (self.msgs.as_mut(), part.msgs) {
            acc.extend(msgs);
        }
    }
}

/// Phase-A result for one contiguous page range of the scan.
struct ShardScan {
    /// Dirty-tracking skips (count only; they emit nothing).
    skipped: u64,
    /// Non-skipped pages in range order, awaiting dedup resolution.
    records: Vec<PreRecord>,
    /// Digest → lowest in-range page that would insert it into the dedup
    /// cache (both full-page candidates and checksum announcements).
    inserts: DigestTable<PageIndex>,
}

/// A page's dedup-independent classification, before `SendFull`
/// candidates are resolved into full pages or back-references.
enum PreRecord {
    /// Suppressed all-zero page.
    Zero(PageIndex),
    /// Checkpoint-index hit: sends a checksum message unconditionally.
    Checksum(PageIndex, PageDigest),
    /// Would send in full; may become a dedup ref in phase C.
    Candidate(PageIndex, PageDigest),
}

/// Runs the shard jobs: inline on the caller's thread when one shard (or
/// one thread) suffices, on scoped worker threads otherwise. Either way
/// the results come back in job order.
fn run_shards<T, F>(threads: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|job| scope.spawn(move |_| job()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scan worker panicked"))
            .collect()
    })
    .expect("scoped scan threads")
}

impl MigrationEngine {
    /// The first-round page scan.
    ///
    /// The image splits into `threads` contiguous page ranges. Phase A
    /// classifies each range concurrently with [`Strategy::preclassify`],
    /// which depends only on `(idx, digest)` — never on what was sent
    /// earlier — recording per-shard outcomes in page order plus a
    /// per-shard first-occurrence map over the digests that would enter
    /// the dedup cache. Phase B merges those maps in range order, so each
    /// digest resolves to the *lowest* page index that inserts it — the
    /// page a one-at-a-time walk would have inserted first. Phase C then
    /// resolves `SendFull` candidates concurrently against the
    /// pre-existing cache and the merged map, which is exactly the state
    /// a sequential walk would have consulted: classification outcomes
    /// partition digests into disjoint classes (index hits always send
    /// checksums, dirty-tracking skips never insert, suppressed zeros
    /// never insert), so no candidate can race a checksum insert. Phase D
    /// concatenates shard outcomes in page order and commits this round's
    /// first-senders to the shared dedup cache.
    pub(crate) fn scan<M: MemoryImage>(
        &self,
        vm: &M,
        strategy: &Strategy,
        sent: &mut DedupIndex,
        want_msgs: bool,
    ) -> ScanOutcome {
        let n = vm.page_count().as_u64();
        let shard_len = n.div_ceil(self.threads as u64).max(1);
        let ranges: Vec<(u64, u64)> = (0..n)
            .step_by(shard_len as usize)
            .map(|lo| (lo, (lo + shard_len).min(n)))
            .collect();

        // Phase A: dedup-independent classification, one shard per thread.
        let shards: Vec<ShardScan> = run_shards(
            self.threads,
            ranges
                .iter()
                .map(|&(lo, hi)| {
                    move || {
                        let mut shard = ShardScan {
                            skipped: 0,
                            records: Vec::with_capacity((hi - lo) as usize),
                            inserts: DigestTable::new(),
                        };
                        for i in lo..hi {
                            let idx = PageIndex::new(i);
                            let digest = vm.page_digest(idx);
                            let action = strategy.preclassify(idx, digest);
                            // Zero suppression applies whenever a payload
                            // would be sent: a 13-byte marker beats both
                            // the full page and the 28-byte checksum
                            // message. Dirty-tracking skips stay skips.
                            if self.zero_suppression
                                && digest.is_zero_page()
                                && action != PageAction::Skip
                            {
                                shard.records.push(PreRecord::Zero(idx));
                                continue;
                            }
                            match action {
                                PageAction::SendFull => {
                                    shard.inserts.or_insert(digest, idx);
                                    shard.records.push(PreRecord::Candidate(idx, digest));
                                }
                                PageAction::SendChecksum => {
                                    shard.inserts.or_insert(digest, idx);
                                    shard.records.push(PreRecord::Checksum(idx, digest));
                                }
                                PageAction::Skip => shard.skipped += 1,
                                PageAction::SendDedupRef(_) => {
                                    unreachable!("preclassify never emits dedup refs")
                                }
                            }
                        }
                        shard
                    }
                })
                .collect(),
        );

        // Phase B: merge shard maps in page order — the earliest range
        // holding a digest wins, which is the global minimum index.
        let mut round_min: DigestTable<PageIndex> = DigestTable::new();
        for shard in &shards {
            for (digest, &idx) in shard.inserts.iter() {
                round_min.or_insert(digest, idx);
            }
        }

        // Phase C: resolve candidates against the dedup state, again one
        // shard per thread (both maps are now read-only).
        let dedup = strategy.dedup_enabled();
        let sent_view: &DedupIndex = sent;
        let round_min_view = &round_min;
        let resolved: Vec<(ScanOutcome, vecycle_obs::CounterShard)> = run_shards(
            self.threads,
            shards
                .iter()
                .map(|shard| {
                    move || {
                        let mut out = ScanOutcome::new(want_msgs);
                        let mut pages = vecycle_obs::CounterShard::default();
                        // Full-page payloads for this shard accumulate in
                        // one arena; messages get refcounted slices of it
                        // after sealing instead of per-page boxes.
                        let mut arena = PageArena::new();
                        let mut fixups: Vec<(usize, vecycle_mem::ArenaSlot)> = Vec::new();
                        out.skipped = shard.skipped;
                        if shard.skipped > 0 {
                            pages.inc(
                                "engine_scan_pages_total",
                                &[("class", "skipped")],
                                shard.skipped,
                            );
                        }
                        for rec in &shard.records {
                            match *rec {
                                PreRecord::Zero(idx) => {
                                    out.zeros += 1;
                                    pages.inc("engine_scan_pages_total", &[("class", "zero")], 1);
                                    if let Some(t) = out.msgs.as_mut() {
                                        t.push(PageMsg::Zero { idx });
                                    }
                                }
                                PreRecord::Checksum(idx, digest) => {
                                    out.checksums += 1;
                                    pages.inc(
                                        "engine_scan_pages_total",
                                        &[("class", "checksum")],
                                        1,
                                    );
                                    if let Some(t) = out.msgs.as_mut() {
                                        t.push(PageMsg::Checksum { idx, digest });
                                    }
                                }
                                PreRecord::Candidate(idx, digest) => {
                                    // A prior sender of this content
                                    // (an earlier gang VM, or a lower
                                    // page of this image) turns the
                                    // candidate into a back-reference.
                                    let source = if dedup {
                                        sent_view.get(digest).or_else(|| {
                                            let first = *round_min_view
                                                .get(digest)
                                                .expect("candidate digest recorded in phase A");
                                            (first < idx).then_some(first)
                                        })
                                    } else {
                                        None
                                    };
                                    match source {
                                        Some(source) => {
                                            out.refs += 1;
                                            pages.inc(
                                                "engine_scan_pages_total",
                                                &[("class", "dedup_ref")],
                                                1,
                                            );
                                            if let Some(t) = out.msgs.as_mut() {
                                                t.push(PageMsg::DedupRef { idx, source });
                                            }
                                        }
                                        None => {
                                            out.full += 1;
                                            pages.inc(
                                                "engine_scan_pages_total",
                                                &[("class", "full")],
                                                1,
                                            );
                                            if let Some(t) = out.msgs.as_mut() {
                                                if let Some(b) = vm.page_bytes(idx) {
                                                    fixups.push((t.len(), arena.push(b)));
                                                }
                                                t.push(PageMsg::Full {
                                                    idx,
                                                    digest,
                                                    bytes: None,
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        // Seal the arena and patch the byte-carrying full
                        // pages. Message order is untouched, so results
                        // stay bit-identical to the per-page-box path.
                        if !fixups.is_empty() {
                            let sealed = arena.seal();
                            let msgs = out.msgs.as_mut().expect("fixups imply recorded messages");
                            for (pos, slot) in fixups {
                                if let PageMsg::Full { bytes, .. } = &mut msgs[pos] {
                                    *bytes = Some(sealed.slice(slot));
                                }
                            }
                        }
                        (out, pages)
                    }
                })
                .collect(),
        );

        // Phase D: concatenate shard outcomes in page order and commit
        // this round's first-senders to the shared dedup cache (existing
        // entries — earlier gang VMs — keep priority, as they did when
        // a sequential walk inserted per page).
        let mut out = ScanOutcome::new(want_msgs);
        for (part, pages) in resolved {
            out.merge(part);
            // Counter addition commutes, so absorbing the per-worker
            // shards in range order yields the same totals a per-page
            // walk records — snapshots stay bit-identical across thread
            // counts.
            self.metrics.absorb(pages);
        }
        for (digest, &idx) in round_min.iter() {
            sent.insert_first(digest, idx);
        }
        out
    }
}
