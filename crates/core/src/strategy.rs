//! First-round traffic-reduction strategies.

use std::collections::HashSet;
use std::sync::Arc;

use vecycle_checkpoint::{Checkpoint, ChecksumIndex, DedupIndex, PageLookup};
use vecycle_mem::{GenerationSnapshot, GenerationTable, MemoryImage};
use vecycle_types::{PageDigest, PageIndex};

/// Which technique a strategy implements, for reports and figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyName {
    /// Indiscriminate full first round (QEMU 2.0 baseline).
    Full,
    /// Sender-side deduplication only.
    Dedup,
    /// Dirty-page tracking against a stored generation vector.
    Dirty,
    /// Dirty tracking combined with deduplication.
    DirtyDedup,
    /// Content-based redundancy elimination (VeCycle).
    VeCycle,
    /// VeCycle combined with deduplication.
    VeCycleDedup,
}

impl std::fmt::Display for StrategyName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StrategyName::Full => "full",
            StrategyName::Dedup => "dedup",
            StrategyName::Dirty => "dirty",
            StrategyName::DirtyDedup => "dirty+dedup",
            StrategyName::VeCycle => "vecycle",
            StrategyName::VeCycleDedup => "vecycle+dedup",
        })
    }
}

/// How the source treats one page in the first copy round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageAction {
    /// Transfer the full page (plus its checksum under VeCycle).
    SendFull,
    /// Send only the checksum; the destination has the content.
    SendChecksum,
    /// Send a back-reference to an identical page sent earlier in this
    /// migration (sender-side dedup).
    SendDedupRef(PageIndex),
    /// Send nothing; dirty tracking proved the destination's checkpoint
    /// copy is current.
    Skip,
}

/// A first-round traffic-reduction strategy.
///
/// Construct with [`Strategy::full`], [`Strategy::dedup`],
/// [`Strategy::vecycle`], [`Strategy::miyakodori`] or their combining
/// variants, then pass to [`crate::MigrationEngine::migrate`].
#[derive(Debug, Clone)]
pub struct Strategy {
    name: StrategyName,
    dedup: bool,
    /// VeCycle: index over the destination's checkpoint.
    index: Option<Arc<ChecksumIndex>>,
    /// Miyakodori: pages whose generation is unchanged since checkpoint.
    reusable: Option<Arc<HashSet<PageIndex>>>,
}

impl Strategy {
    /// The QEMU 2.0 baseline: send every page in full.
    pub fn full() -> Self {
        Strategy {
            name: StrategyName::Full,
            dedup: false,
            index: None,
            reusable: None,
        }
    }

    /// Sender-side deduplication: each distinct content is sent once per
    /// migration; repeats become back-references (CloudNet-style).
    pub fn dedup() -> Self {
        Strategy {
            name: StrategyName::Dedup,
            dedup: true,
            index: None,
            reusable: None,
        }
    }

    /// VeCycle: content-based redundancy elimination against a checkpoint
    /// image held at the destination.
    pub fn vecycle<M: MemoryImage>(checkpoint: &M) -> Self {
        Strategy::vecycle_with_index(Arc::new(ChecksumIndex::build(checkpoint.digests())))
    }

    /// VeCycle from a stored [`Checkpoint`].
    pub fn vecycle_from_checkpoint(checkpoint: &Checkpoint) -> Self {
        Strategy::vecycle_with_index(Arc::new(checkpoint.build_index()))
    }

    /// VeCycle from a pre-built index (avoids rebuilding across
    /// repeated migrations in benches).
    pub fn vecycle_with_index(index: Arc<ChecksumIndex>) -> Self {
        Strategy {
            name: StrategyName::VeCycle,
            dedup: false,
            index: Some(index),
            reusable: None,
        }
    }

    /// Miyakodori-style dirty tracking: `table` is the guest's current
    /// generation table, `snapshot` the vector stored with the
    /// destination's checkpoint. Pages with unchanged generations are
    /// skipped entirely.
    ///
    /// # Panics
    ///
    /// Panics if the table and snapshot cover different page counts.
    pub fn miyakodori(table: &GenerationTable, snapshot: &GenerationSnapshot) -> Self {
        let reusable: HashSet<PageIndex> = table.unchanged_since(snapshot).into_iter().collect();
        Strategy {
            name: StrategyName::Dirty,
            dedup: false,
            index: None,
            reusable: Some(Arc::new(reusable)),
        }
    }

    /// Adds sender-side deduplication on top of this strategy.
    #[must_use]
    pub fn with_dedup(mut self) -> Self {
        self.dedup = true;
        self.name = match self.name {
            StrategyName::Full | StrategyName::Dedup => StrategyName::Dedup,
            StrategyName::Dirty | StrategyName::DirtyDedup => StrategyName::DirtyDedup,
            StrategyName::VeCycle | StrategyName::VeCycleDedup => StrategyName::VeCycleDedup,
        };
        self
    }

    /// The technique this strategy implements.
    pub fn name(&self) -> StrategyName {
        self.name
    }

    /// True if this strategy needs per-page checksums at the source
    /// (drives the checksum-rate term of migration time, §3.4).
    pub fn computes_checksums(&self) -> bool {
        self.index.is_some()
    }

    /// True if this strategy requires a checksum pre-exchange.
    pub fn needs_exchange(&self) -> bool {
        self.index.is_some()
    }

    /// The checkpoint index, if this is a VeCycle strategy.
    pub fn index(&self) -> Option<&ChecksumIndex> {
        self.index.as_deref()
    }

    /// True if sender-side deduplication is enabled.
    pub fn dedup_enabled(&self) -> bool {
        self.dedup
    }

    /// Decides the first-round action for one page.
    ///
    /// `sent` is the per-migration dedup cache: digest → first page index
    /// that carried this content. The caller inserts into it when this
    /// returns [`PageAction::SendFull`] or [`PageAction::SendChecksum`].
    pub fn classify(&self, idx: PageIndex, digest: PageDigest, sent: &DedupIndex) -> PageAction {
        match self.preclassify(idx, digest) {
            PageAction::SendFull if self.dedup => match sent.get(digest) {
                Some(first) => PageAction::SendDedupRef(first),
                None => PageAction::SendFull,
            },
            action => action,
        }
    }

    /// The dedup-independent part of [`Strategy::classify`].
    ///
    /// Depends only on `(idx, digest)` — never on what was sent earlier —
    /// so the parallel scan can run it on every page concurrently and
    /// resolve [`PageAction::SendFull`] candidates against the dedup
    /// cache afterwards. `classify(idx, d, sent)` ≡ `preclassify(idx, d)`
    /// with the `SendFull` outcome refined through `sent`.
    pub fn preclassify(&self, idx: PageIndex, digest: PageDigest) -> PageAction {
        if let Some(reusable) = &self.reusable {
            if reusable.contains(&idx) {
                return PageAction::Skip;
            }
        }
        if let Some(index) = &self.index {
            if index.contains(digest) {
                return PageAction::SendChecksum;
            }
        }
        PageAction::SendFull
    }

    /// Decides the action for a page re-dirtied after the first round.
    ///
    /// Same precedence as [`Strategy::classify`] minus the reusable-set
    /// check: that set proves a page unchanged *since the checkpoint*,
    /// which a dirty page in round ≥ 2 by definition no longer is. A
    /// checkpoint-index hit still collapses the resend to a checksum
    /// message — the guest may have rewritten the page with content the
    /// destination's checkpoint already holds.
    pub fn classify_resend(&self, digest: PageDigest, sent: &DedupIndex) -> PageAction {
        if let Some(index) = &self.index {
            if index.contains(digest) {
                return PageAction::SendChecksum;
            }
        }
        if self.dedup {
            if let Some(first) = sent.get(digest) {
                return PageAction::SendDedupRef(first);
            }
        }
        PageAction::SendFull
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecycle_mem::DigestMemory;
    use vecycle_types::PageCount;

    fn d(id: u64) -> PageDigest {
        PageDigest::from_content_id(id)
    }

    #[test]
    fn full_sends_everything() {
        let s = Strategy::full();
        let sent = DedupIndex::new();
        assert_eq!(
            s.classify(PageIndex::new(0), d(1), &sent),
            PageAction::SendFull
        );
        assert!(!s.computes_checksums());
        assert_eq!(s.name(), StrategyName::Full);
    }

    #[test]
    fn dedup_references_repeats() {
        let s = Strategy::dedup();
        let mut sent = DedupIndex::new();
        assert_eq!(
            s.classify(PageIndex::new(0), d(1), &sent),
            PageAction::SendFull
        );
        sent.insert_first(d(1), PageIndex::new(0));
        assert_eq!(
            s.classify(PageIndex::new(5), d(1), &sent),
            PageAction::SendDedupRef(PageIndex::new(0))
        );
    }

    #[test]
    fn vecycle_sends_checksums_for_known_content() {
        let cp = DigestMemory::with_distinct_content(PageCount::new(4), 1);
        let s = Strategy::vecycle(&cp);
        let sent = DedupIndex::new();
        let known = cp.page_digest(PageIndex::new(2));
        assert_eq!(
            s.classify(PageIndex::new(9), known, &sent),
            PageAction::SendChecksum
        );
        assert_eq!(
            s.classify(PageIndex::new(9), d(999_999), &sent),
            PageAction::SendFull
        );
        assert!(s.computes_checksums());
        assert!(s.needs_exchange());
    }

    #[test]
    fn vecycle_dedup_prefers_checkpoint_over_ref() {
        let cp = DigestMemory::with_distinct_content(PageCount::new(4), 1);
        let s = Strategy::vecycle(&cp).with_dedup();
        assert_eq!(s.name(), StrategyName::VeCycleDedup);
        let mut sent = DedupIndex::new();
        let known = cp.page_digest(PageIndex::new(0));
        sent.insert_first(known, PageIndex::new(3));
        // Checkpoint hit wins: a checksum message is the cheapest option
        // and the destination's copy is already in place.
        assert_eq!(
            s.classify(PageIndex::new(7), known, &sent),
            PageAction::SendChecksum
        );
        // Novel-but-repeated content becomes a dedup ref.
        sent.insert_first(d(42), PageIndex::new(1));
        assert_eq!(
            s.classify(PageIndex::new(8), d(42), &sent),
            PageAction::SendDedupRef(PageIndex::new(1))
        );
    }

    #[test]
    fn miyakodori_skips_unchanged_generations() {
        let mut table = GenerationTable::new(PageCount::new(4));
        let snap = table.snapshot();
        table.bump(PageIndex::new(1));
        let s = Strategy::miyakodori(&table, &snap);
        let sent = DedupIndex::new();
        assert_eq!(s.classify(PageIndex::new(0), d(1), &sent), PageAction::Skip);
        assert_eq!(
            s.classify(PageIndex::new(1), d(2), &sent),
            PageAction::SendFull
        );
        assert!(!s.computes_checksums());
    }

    #[test]
    fn preclassify_refined_by_sent_matches_classify() {
        let cp = DigestMemory::with_distinct_content(PageCount::new(4), 1);
        let strategies = [
            Strategy::full(),
            Strategy::dedup(),
            Strategy::vecycle(&cp),
            Strategy::vecycle(&cp).with_dedup(),
        ];
        let mut sent = DedupIndex::new();
        sent.insert_first(d(42), PageIndex::new(1));
        for s in &strategies {
            for (i, content) in [(0u64, 42u64), (1, 42), (2, 7), (3, 1)] {
                let idx = PageIndex::new(i);
                let digest = d(content);
                let refined = match s.preclassify(idx, digest) {
                    PageAction::SendFull if s.dedup_enabled() => match sent.get(digest) {
                        Some(first) => PageAction::SendDedupRef(first),
                        None => PageAction::SendFull,
                    },
                    action => action,
                };
                assert_eq!(refined, s.classify(idx, digest, &sent), "{}", s.name());
            }
        }
    }

    #[test]
    fn resend_skips_reusable_check_but_keeps_checksum_and_dedup() {
        let mut table = GenerationTable::new(PageCount::new(4));
        let snap = table.snapshot();
        table.bump(PageIndex::new(1));
        let s = Strategy::miyakodori(&table, &snap);
        let mut sent = DedupIndex::new();
        // Page 0 is in the reusable set, but a *resend* of it must not be
        // skipped — it was dirtied after the first round.
        assert_eq!(s.classify_resend(d(9), &sent), PageAction::SendFull);

        let cp = DigestMemory::with_distinct_content(PageCount::new(4), 1);
        let v = Strategy::vecycle(&cp).with_dedup();
        let known = cp.page_digest(PageIndex::new(2));
        assert_eq!(v.classify_resend(known, &sent), PageAction::SendChecksum);
        sent.insert_first(d(5), PageIndex::new(0));
        assert_eq!(
            v.classify_resend(d(5), &sent),
            PageAction::SendDedupRef(PageIndex::new(0))
        );
        assert_eq!(v.classify_resend(d(6), &sent), PageAction::SendFull);
    }

    #[test]
    fn strategy_names_render() {
        assert_eq!(Strategy::full().name().to_string(), "full");
        assert_eq!(Strategy::full().with_dedup().name().to_string(), "dedup");
        let cp = DigestMemory::zeroed(PageCount::new(1));
        assert_eq!(
            Strategy::vecycle(&cp).with_dedup().name().to_string(),
            "vecycle+dedup"
        );
    }
}
