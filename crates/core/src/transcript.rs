//! Migration transcripts and the destination merge (Listing 1).

use vecycle_checkpoint::{Checkpoint, PageLookup};
use vecycle_mem::{ByteMemory, MemoryImage, MutableMemory, PageBuf, PageContent};
use vecycle_types::{Error, PageDigest, PageIndex};

/// One message of the migration stream, as the destination receives it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageMsg {
    /// A full page: number, checksum, and (for byte-level sources) the
    /// page bytes. "Sending the checksum along with the full page saves
    /// the receiver from re-computing the checksum" (§3.2).
    Full {
        /// Guest page number.
        idx: PageIndex,
        /// Content checksum.
        digest: PageDigest,
        /// Page bytes; `None` when the source is digest-level. Backed by
        /// a scan arena, so cloning a message never copies page bytes.
        bytes: Option<PageBuf>,
    },
    /// Only the checksum: the destination already holds this content.
    Checksum {
        /// Guest page number.
        idx: PageIndex,
        /// Content checksum.
        digest: PageDigest,
    },
    /// Back-reference to a page sent earlier in this migration.
    DedupRef {
        /// Guest page number.
        idx: PageIndex,
        /// The earlier page carrying identical content.
        source: PageIndex,
    },
    /// An all-zero page, suppressed to a marker.
    Zero {
        /// Guest page number.
        idx: PageIndex,
    },
}

/// The ordered message stream of one migration.
pub type Transcript = Vec<PageMsg>;

/// Applies a transcript at the destination, reconstructing guest memory.
///
/// This is Listing 1 of the paper: memory starts initialized from the
/// local `checkpoint`; each checksum message is verified against the
/// already-resident page and, on mismatch, resolved through the
/// checkpoint's checksum index (`lookup` + read at the found offset).
///
/// # Errors
///
/// Returns [`Error::Corrupt`] if a checksum message references content
/// that neither the resident page nor the checkpoint can supply, or if a
/// dedup reference points at a page not yet received — both indicate a
/// protocol violation or checkpoint corruption.
pub fn apply_transcript(
    checkpoint: &Checkpoint,
    transcript: &Transcript,
) -> vecycle_types::Result<ByteMemory> {
    let index = checkpoint.build_index();
    let mut mem = checkpoint
        .restore_byte_memory()
        .ok_or(Error::InvalidConfig {
            reason: "destination merge needs a full-byte checkpoint".into(),
        })?;

    for msg in transcript {
        match msg {
            PageMsg::Full { idx, digest, bytes } => {
                let bytes = bytes.as_deref().ok_or(Error::Corrupt {
                    detail: format!("full-page message for {idx} carries no bytes"),
                })?;
                mem.write_page(*idx, PageContent::Bytes(bytes));
                // The attached checksum lets the receiver verify without
                // re-hashing later; verify here to model that.
                if mem.page_digest(*idx) != *digest {
                    return Err(Error::Corrupt {
                        detail: format!("page {idx} bytes do not match attached checksum"),
                    });
                }
            }
            PageMsg::Checksum { idx, digest } => {
                // Listing 1: if the resident page (from the checkpoint
                // restore) already matches, nothing to do; otherwise look
                // the checksum up and copy from the checkpoint offset.
                if mem.page_digest(*idx) == *digest {
                    continue;
                }
                let offset = index.lookup(*digest).ok_or(Error::Corrupt {
                    detail: format!("checksum for {idx} not found in checkpoint index"),
                })?;
                let page = checkpoint.read_page(offset).ok_or(Error::Corrupt {
                    detail: format!("checkpoint page {offset} unreadable"),
                })?;
                mem.write_page(*idx, PageContent::Bytes(page));
                if mem.page_digest(*idx) != *digest {
                    return Err(Error::Corrupt {
                        detail: format!(
                            "checkpoint content at {offset} does not match checksum for {idx}"
                        ),
                    });
                }
            }
            PageMsg::DedupRef { idx, source } => {
                if source.as_u64() >= mem.page_count().as_u64() {
                    return Err(Error::Corrupt {
                        detail: format!("dedup reference {source} out of range"),
                    });
                }
                mem.relocate_page(*source, *idx);
            }
            PageMsg::Zero { idx } => {
                mem.write_page(*idx, PageContent::Zero);
            }
        }
    }
    Ok(mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecycle_types::{PageCount, SimTime, VmId};

    fn byte_mem(seed: u64) -> ByteMemory {
        ByteMemory::with_distinct_content(PageCount::new(8), seed)
    }

    fn cp_of(mem: &ByteMemory) -> Checkpoint {
        Checkpoint::capture_bytes(VmId::new(0), SimTime::EPOCH, mem)
    }

    #[test]
    fn checksum_only_transcript_restores_checkpoint_state() {
        let mem = byte_mem(1);
        let cp = cp_of(&mem);
        let transcript: Transcript = (0..8)
            .map(|i| PageMsg::Checksum {
                idx: PageIndex::new(i),
                digest: mem.page_digest(PageIndex::new(i)),
            })
            .collect();
        let rebuilt = apply_transcript(&cp, &transcript).unwrap();
        assert!(rebuilt.content_equals(&mem));
    }

    #[test]
    fn relocated_content_is_found_via_index() {
        let mut now = byte_mem(1);
        let cp = cp_of(&now);
        // Guest relocates page 2's content to page 5 after checkpoint.
        now.relocate_page(PageIndex::new(2), PageIndex::new(5));
        let transcript: Transcript = (0..8)
            .map(|i| PageMsg::Checksum {
                idx: PageIndex::new(i),
                digest: now.page_digest(PageIndex::new(i)),
            })
            .collect();
        let rebuilt = apply_transcript(&cp, &transcript).unwrap();
        assert!(rebuilt.content_equals(&now));
    }

    #[test]
    fn full_pages_overwrite() {
        let mut now = byte_mem(1);
        let cp = cp_of(&now);
        now.write_page(PageIndex::new(3), PageContent::Bytes(b"fresh data"));
        let mut transcript = Transcript::new();
        for i in 0..8u64 {
            let idx = PageIndex::new(i);
            if i == 3 {
                transcript.push(PageMsg::Full {
                    idx,
                    digest: now.page_digest(idx),
                    bytes: Some(PageBuf::copy_from(now.read_page(idx))),
                });
            } else {
                transcript.push(PageMsg::Checksum {
                    idx,
                    digest: now.page_digest(idx),
                });
            }
        }
        let rebuilt = apply_transcript(&cp, &transcript).unwrap();
        assert!(rebuilt.content_equals(&now));
    }

    #[test]
    fn dedup_refs_copy_earlier_pages() {
        let mut now = ByteMemory::zeroed(PageCount::new(4));
        now.write_page(PageIndex::new(0), PageContent::Bytes(b"dup"));
        now.write_page(PageIndex::new(2), PageContent::Bytes(b"dup"));
        let cp = cp_of(&ByteMemory::zeroed(PageCount::new(4)));
        let transcript = vec![
            PageMsg::Full {
                idx: PageIndex::new(0),
                digest: now.page_digest(PageIndex::new(0)),
                bytes: Some(PageBuf::copy_from(now.read_page(PageIndex::new(0)))),
            },
            PageMsg::DedupRef {
                idx: PageIndex::new(2),
                source: PageIndex::new(0),
            },
        ];
        let rebuilt = apply_transcript(&cp, &transcript).unwrap();
        assert!(rebuilt.content_equals(&now));
    }

    #[test]
    fn unknown_checksum_is_an_error() {
        let mem = byte_mem(1);
        let cp = cp_of(&mem);
        let transcript = vec![PageMsg::Checksum {
            idx: PageIndex::new(0),
            digest: PageDigest::from_content_id(0xdead_beef),
        }];
        let err = apply_transcript(&cp, &transcript).unwrap_err();
        assert!(matches!(err, Error::Corrupt { .. }));
    }

    #[test]
    fn corrupted_full_page_is_detected() {
        let mem = byte_mem(1);
        let cp = cp_of(&mem);
        let transcript = vec![PageMsg::Full {
            idx: PageIndex::new(0),
            digest: PageDigest::from_content_id(1), // wrong digest
            bytes: Some(vec![9u8; 4096].into()),
        }];
        assert!(apply_transcript(&cp, &transcript).is_err());
    }

    #[test]
    fn digest_only_checkpoint_is_rejected() {
        let mem = byte_mem(1);
        let cp = Checkpoint::capture(VmId::new(0), SimTime::EPOCH, &mem);
        let err = apply_transcript(&cp, &Transcript::new()).unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));
    }

    #[test]
    fn zero_marker_zeroes_the_page() {
        let mem = byte_mem(1);
        let cp = cp_of(&mem);
        let transcript = vec![PageMsg::Zero {
            idx: PageIndex::new(2),
        }];
        let rebuilt = apply_transcript(&cp, &transcript).unwrap();
        assert!(rebuilt.page_digest(PageIndex::new(2)).is_zero_page());
        // Other pages keep the checkpoint content.
        assert_eq!(
            rebuilt.read_page(PageIndex::new(0)),
            mem.read_page(PageIndex::new(0))
        );
    }

    #[test]
    fn out_of_range_dedup_ref_is_an_error() {
        let mem = byte_mem(1);
        let cp = cp_of(&mem);
        let transcript = vec![PageMsg::DedupRef {
            idx: PageIndex::new(0),
            source: PageIndex::new(99),
        }];
        assert!(apply_transcript(&cp, &transcript).is_err());
    }
}
