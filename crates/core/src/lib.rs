//! The VeCycle migration engine — the paper's contribution.
//!
//! A pre-copy live migration moves a VM's memory in rounds: round 1
//! transfers every page, later rounds re-send pages the still-running
//! guest dirtied, and a final stop-and-copy round pauses the VM (§3.1).
//! **VeCycle changes only round 1**: the source computes a content
//! checksum per page and sends a 28-byte checksum message instead of a
//! 4 KiB page whenever the destination — primed with an old checkpoint of
//! the same VM — already holds that content (§3.2, §3.3).
//!
//! The engine here implements that algorithm faithfully, plus every
//! baseline the paper compares against:
//!
//! * [`Strategy::full`] — QEMU's default first round;
//! * [`Strategy::dedup`] — CloudNet-style sender-side deduplication;
//! * [`Strategy::miyakodori`] — dirty-page tracking against a stored
//!   generation vector (Akiyama et al.);
//! * [`Strategy::vecycle`] — content-based redundancy elimination against
//!   a stored checkpoint, optionally combined with dedup.
//!
//! Time is computed from the same two rates that govern the paper's
//! testbed: link throughput ([`vecycle_net::LinkSpec`]) and checksum
//! throughput ([`vecycle_host::CpuSpec`]) — migration time under VeCycle
//! is bounded below by the time to checksum the VM's memory (§3.4).
//!
//! The [`session`] module layers the paper's deployment loop on top:
//! every outgoing migration stores a checkpoint on the source host, every
//! incoming migration recycles the newest local checkpoint if one exists.
//!
//! # Examples
//!
//! ```
//! use vecycle_core::{MigrationEngine, Strategy};
//! use vecycle_mem::DigestMemory;
//! use vecycle_net::LinkSpec;
//! use vecycle_types::Bytes;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let vm = DigestMemory::with_uniform_content(Bytes::from_mib(64), 7)?;
//! let checkpoint = vm.snapshot();
//! let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
//! let recycled = engine.migrate(&vm, Strategy::vecycle(&checkpoint))?;
//! let baseline = engine.migrate(&vm, Strategy::full())?;
//! assert!(recycled.source_traffic() < baseline.source_traffic());
//! assert!(recycled.total_time() < baseline.total_time());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
mod engine;
pub mod estimate;
mod pipeline;
mod postcopy;
mod report;
pub mod session;
mod strategy;
mod transcript;

pub use engine::{ExchangeProtocol, MigrationEngine};
pub use pipeline::rounds::{AbortedTransfer, LiveOutcome};
pub use pipeline::wire_costs::{DeltaCompression, WireCosts, Xbzrle};
pub use postcopy::PostCopyReport;
pub use report::{MigrationOutcome, MigrationReport, RoundReport, SetupReport};
pub use strategy::{PageAction, Strategy, StrategyName};
pub use transcript::{apply_transcript, PageMsg, Transcript};
