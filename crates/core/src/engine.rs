//! [`MigrationEngine`]: configuration plus thin drivers over the one
//! transfer pipeline.
//!
//! Every public migration flavor — static, gang, live, faulted — is a
//! policy loop over [`TransferLoop`](crate::pipeline::rounds::TransferLoop):
//! the drivers here decide *when* to run another round or hand over;
//! the pipeline decides what a round costs, what a fault destroys and
//! what the observability layer sees. See [`crate::pipeline`] for the
//! module map and the invariants.

use vecycle_checkpoint::{DedupIndex, PageLookup};
use vecycle_faults::AttemptFaults;
use vecycle_host::{CpuSpec, DiskSpec};
use vecycle_mem::{workload::GuestWorkload, Guest, MemoryImage, MutableMemory};
use vecycle_net::LinkSpec;
use vecycle_obs::MetricsRegistry;
use vecycle_types::{PageCount, PageIndex, SimDuration};

use crate::pipeline::rounds::{LiveOutcome, RoundMode, TransferLoop};
use crate::pipeline::wire_costs::{DeltaCompression, Xbzrle};
use crate::{MigrationReport, Strategy, Transcript};

/// How source and destination agree on which checksums the destination
/// holds (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeProtocol {
    /// The destination sends all its checksums in bulk before the first
    /// copy round — the paper's choice.
    Bulk,
    /// The source queries the destination per page; `pipeline_depth`
    /// queries are in flight at once. The paper expects this to be slow
    /// ("high frequency exchange of small messages") — the protocol
    /// ablation quantifies by how much.
    PerPage {
        /// Concurrent in-flight queries.
        pipeline_depth: u32,
    },
}

/// The migration engine: link, CPU and policy knobs.
///
/// Construct with [`MigrationEngine::new`] and adjust with the `with_*`
/// methods. The engine is stateless across migrations and can be reused.
#[derive(Debug, Clone)]
pub struct MigrationEngine {
    pub(crate) link: LinkSpec,
    pub(crate) cpu: CpuSpec,
    pub(crate) dest_disk: DiskSpec,
    pub(crate) algorithm: vecycle_hash::ChecksumAlgorithm,
    pub(crate) exchange: ExchangeProtocol,
    pub(crate) max_rounds: u32,
    pub(crate) max_downtime: SimDuration,
    pub(crate) zero_suppression: bool,
    pub(crate) compression: Option<DeltaCompression>,
    pub(crate) xbzrle: Option<Xbzrle>,
    pub(crate) threads: usize,
    pub(crate) precopy_time_budget: Option<SimDuration>,
    pub(crate) metrics: MetricsRegistry,
}

impl MigrationEngine {
    /// Creates an engine with the paper's benchmark defaults: Phenom-II
    /// checksum rates, MD5, checkpoint on HDD, bulk exchange, QEMU-like
    /// round limit and 300 ms downtime target.
    pub fn new(link: LinkSpec) -> Self {
        MigrationEngine {
            link,
            cpu: CpuSpec::phenom_ii(),
            dest_disk: DiskSpec::hdd_samsung_hd204ui(),
            algorithm: vecycle_hash::ChecksumAlgorithm::Md5,
            exchange: ExchangeProtocol::Bulk,
            max_rounds: 30,
            max_downtime: SimDuration::from_millis(300),
            // QEMU 2.0 suppresses all-zero pages by default; the
            // prototype inherits it, so so do we.
            zero_suppression: true,
            compression: None,
            xbzrle: None,
            threads: 1,
            precopy_time_budget: None,
            metrics: MetricsRegistry::new(),
        }
    }

    /// Replaces the CPU model.
    #[must_use]
    pub fn with_cpu(mut self, cpu: CpuSpec) -> Self {
        self.cpu = cpu;
        self
    }

    /// Replaces the destination checkpoint disk model.
    #[must_use]
    pub fn with_dest_disk(mut self, disk: DiskSpec) -> Self {
        self.dest_disk = disk;
        self
    }

    /// Replaces the checksum algorithm (§3.4 ablation).
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: vecycle_hash::ChecksumAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Replaces the checksum-exchange protocol.
    #[must_use]
    pub fn with_exchange(mut self, exchange: ExchangeProtocol) -> Self {
        self.exchange = exchange;
        self
    }

    /// Limits the number of pre-copy rounds.
    ///
    /// # Panics
    ///
    /// Panics if `max_rounds` is zero.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u32) -> Self {
        assert!(max_rounds > 0, "need at least one round");
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the stop-and-copy downtime target.
    #[must_use]
    pub fn with_max_downtime(mut self, max_downtime: SimDuration) -> Self {
        self.max_downtime = max_downtime;
        self
    }

    /// Enables or disables QEMU-style zero-page suppression (default on).
    #[must_use]
    pub fn with_zero_page_suppression(mut self, enabled: bool) -> Self {
        self.zero_suppression = enabled;
        self
    }

    /// Enables delta compression of full-page payloads (default off).
    #[must_use]
    pub fn with_compression(mut self, compression: DeltaCompression) -> Self {
        self.compression = Some(compression);
        self
    }

    /// Enables XBZRLE delta encoding for re-sent pages (default off).
    #[must_use]
    pub fn with_xbzrle(mut self, xbzrle: Xbzrle) -> Self {
        self.xbzrle = Some(xbzrle);
        self
    }

    /// Sets the number of worker threads for the first-round page scan
    /// (default 1: fully sequential).
    ///
    /// Results are bit-identical for every thread count — the parallel
    /// scan splits the image into contiguous shards and merges them
    /// deterministically; only wall-clock time changes.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one scan thread");
        self.threads = threads;
        self
    }

    /// The configured scan-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Caps the cumulative pre-copy time (default: unlimited).
    ///
    /// This is the time half of the convergence guard: once the copy
    /// rounds have spent this budget, the engine stops iterating and
    /// forces the final stop-and-copy regardless of the residual dirty
    /// set — a hot guest cannot pin the migration in pre-copy forever.
    /// The round limit ([`MigrationEngine::with_max_rounds`]) is the
    /// other half. A guarded exit reports
    /// [`MigrationReport::converged`]` == false`.
    #[must_use]
    pub fn with_precopy_time_budget(mut self, budget: SimDuration) -> Self {
        self.precopy_time_budget = Some(budget);
        self
    }

    /// The configured pre-copy time budget, if any.
    pub fn precopy_time_budget(&self) -> Option<SimDuration> {
        self.precopy_time_budget
    }

    /// Shares a metrics registry with this engine (default: a fresh
    /// private one, so un-instrumented callers pay only a no-reader
    /// registry). The registry is purely an observer: attaching one
    /// never changes a single byte of any migration result.
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = metrics;
        self
    }

    /// The engine's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Estimates the similarity between `vm` and a checkpoint index by
    /// probing `samples` evenly-spaced pages — the cheap test a
    /// deployment can run before committing to checksum the whole image
    /// (an always-busy VM gains little from VeCycle, §2.3).
    pub fn estimate_similarity<M: MemoryImage>(
        vm: &M,
        index: &vecycle_checkpoint::ChecksumIndex,
        samples: u64,
    ) -> vecycle_types::Ratio {
        let n = vm.page_count().as_u64();
        if n == 0 || samples == 0 {
            return vecycle_types::Ratio::ZERO;
        }
        let samples = samples.min(n);
        let mut hits = 0u64;
        // Weyl-sequence probing: deterministic but aperiodic, so guests
        // with regular write patterns (every k-th page) don't alias the
        // sample (a plain stride would).
        for k in 0..samples {
            let mixed = (k + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let idx = PageIndex::new(mixed % n);
            if index.contains(vm.page_digest(idx)) {
                hits += 1;
            }
        }
        vecycle_types::Ratio::new(hits as f64 / samples as f64)
    }

    /// The engine's link.
    pub fn link(&self) -> LinkSpec {
        self.link
    }

    /// Migrates a *static* memory image (no concurrent guest writes):
    /// one copy round plus the completion handshake. This is the
    /// idle-VM measurement shape of §4.4.
    ///
    /// # Errors
    ///
    /// Returns [`vecycle_types::Error::InvalidConfig`] if the image is
    /// empty.
    pub fn migrate<M: MemoryImage>(
        &self,
        vm: &M,
        strategy: Strategy,
    ) -> vecycle_types::Result<MigrationReport> {
        self.migrate_inner(vm, strategy, None)
    }

    /// Like [`MigrationEngine::migrate`], but also records the message
    /// stream so a destination can replay it (see
    /// [`crate::apply_transcript`]).
    ///
    /// # Errors
    ///
    /// Same as [`MigrationEngine::migrate`].
    pub fn migrate_with_transcript<M: MemoryImage>(
        &self,
        vm: &M,
        strategy: Strategy,
    ) -> vecycle_types::Result<(MigrationReport, Transcript)> {
        let mut transcript = Transcript::new();
        let report = self.migrate_inner(vm, strategy, Some(&mut transcript))?;
        Ok((report, transcript))
    }

    fn migrate_inner<M: MemoryImage>(
        &self,
        vm: &M,
        strategy: Strategy,
        transcript: Option<&mut Transcript>,
    ) -> vecycle_types::Result<MigrationReport> {
        if vm.page_count() == PageCount::ZERO {
            return Err(vecycle_types::Error::InvalidConfig {
                reason: "cannot migrate an empty memory image".into(),
            });
        }
        let faults = AttemptFaults::none();
        let mut tl = TransferLoop::start(
            self,
            "static",
            &strategy,
            vm.ram_size(),
            vm.page_count(),
            &faults,
        );
        let mut sent = DedupIndex::new();
        let mode = match transcript {
            Some(t) => RoundMode::Record(t),
            None => RoundMode::Count,
        };
        tl.first_round(vm, &strategy, &mut sent, mode)
            .expect("a fault-free transfer cannot abort");
        let downtime = tl
            .stop_copy(vm, &[])
            .expect("a fault-free transfer cannot abort");
        Ok(tl.complete(&strategy, vm.ram_size(), downtime, true))
    }

    /// Migrates a *gang* of VMs to the same destination with a shared
    /// sender-side dedup cache — cluster-level deduplication in the
    /// spirit of VMFlock/Shrinker (related work §5): identical pages
    /// across co-migrating VMs cross the wire once.
    ///
    /// `vms[i]` migrates under `strategies[i]`; cross-VM dedup only
    /// applies where a strategy enables dedup.
    ///
    /// # Errors
    ///
    /// Returns [`vecycle_types::Error::InvalidConfig`] if the slices
    /// have different lengths, the gang is empty, or any image is empty.
    pub fn migrate_gang<M: MemoryImage>(
        &self,
        vms: &[&M],
        strategies: &[Strategy],
    ) -> vecycle_types::Result<Vec<MigrationReport>> {
        if vms.is_empty() || vms.len() != strategies.len() {
            return Err(vecycle_types::Error::InvalidConfig {
                reason: format!(
                    "gang of {} VMs with {} strategies",
                    vms.len(),
                    strategies.len()
                ),
            });
        }
        let faults = AttemptFaults::none();
        let mut sent = DedupIndex::new();
        let mut reports = Vec::with_capacity(vms.len());
        for (vm, strategy) in vms.iter().zip(strategies) {
            if vm.page_count() == PageCount::ZERO {
                return Err(vecycle_types::Error::InvalidConfig {
                    reason: "cannot migrate an empty memory image".into(),
                });
            }
            let mut tl = TransferLoop::start(
                self,
                "gang",
                strategy,
                vm.ram_size(),
                vm.page_count(),
                &faults,
            );
            tl.first_round(*vm, strategy, &mut sent, RoundMode::Count)
                .expect("a fault-free transfer cannot abort");
            let downtime = tl
                .stop_copy(*vm, &[])
                .expect("a fault-free transfer cannot abort");
            reports.push(tl.complete(strategy, vm.ram_size(), downtime, true));
        }
        Ok(reports)
    }

    /// Migrates a *live* guest: the workload keeps dirtying memory while
    /// rounds are in flight, exactly as in §3.1's description.
    ///
    /// The guest's dirty tracker is cleared at the start (dirty logging
    /// begins when migration begins) and left cleared on return; the
    /// guest's memory reflects all writes the workload performed during
    /// the migration.
    ///
    /// # Errors
    ///
    /// Returns [`vecycle_types::Error::InvalidConfig`] if the guest has
    /// no pages.
    pub fn migrate_live<M, W>(
        &self,
        guest: &mut Guest<M>,
        workload: &mut W,
        strategy: Strategy,
    ) -> vecycle_types::Result<MigrationReport>
    where
        M: MutableMemory,
        W: GuestWorkload<M>,
    {
        match self.migrate_live_faulted(guest, workload, strategy, &AttemptFaults::none())? {
            LiveOutcome::Completed(report) => Ok(report),
            LiveOutcome::Aborted(_) => unreachable!("a fault-free attempt cannot abort"),
        }
    }

    /// Like [`MigrationEngine::migrate_live`], but the attempt runs under
    /// injected faults and may therefore die mid-flight.
    ///
    /// With [`AttemptFaults::none`] this is *exactly* `migrate_live`:
    /// every fault check is a no-op and the report is bit-identical. An
    /// armed link cut makes each message land at the destination only if
    /// the cumulative forward payload stays under the cut point; when the
    /// link dies the attempt returns [`LiveOutcome::Aborted`] carrying
    /// the per-page landed digests — the raw material a session layer
    /// turns into a [`vecycle_checkpoint::PartialCheckpoint`] and
    /// recycles on retry. The guest is left as the failed attempt really
    /// left it: memory reflects all workload writes up to the abort. (A
    /// retry restarts dirty logging and re-scans every page in its own
    /// round 1, so the aborted attempt's residual dirty set need not
    /// survive.)
    ///
    /// # Errors
    ///
    /// Returns [`vecycle_types::Error::InvalidConfig`] if the guest has
    /// no pages. Injected faults never surface as `Err` — they are data,
    /// in the returned [`LiveOutcome`].
    pub fn migrate_live_faulted<M, W>(
        &self,
        guest: &mut Guest<M>,
        workload: &mut W,
        strategy: Strategy,
        faults: &AttemptFaults,
    ) -> vecycle_types::Result<LiveOutcome>
    where
        M: MutableMemory,
        W: GuestWorkload<M>,
    {
        if guest.page_count() == PageCount::ZERO {
            return Err(vecycle_types::Error::InvalidConfig {
                reason: "cannot migrate an empty guest".into(),
            });
        }
        let mut tl = TransferLoop::start(
            self,
            "live",
            &strategy,
            guest.ram_size(),
            guest.page_count(),
            faults,
        );

        guest.dirty_mut().clear();
        let mut sent = DedupIndex::new();
        let mode = if tl.cut_armed() {
            RoundMode::Walk
        } else {
            RoundMode::Count
        };
        if let Err(wreck) = tl.first_round(&*guest, &strategy, &mut sent, mode) {
            return Ok(LiveOutcome::Aborted(wreck));
        }
        workload.advance(guest, tl.spiked(1, tl.last_round_duration()));
        let mut dirty = guest.dirty_mut().drain();
        self.obs_dirty(&dirty);

        // Iterative pre-copy: re-send dirty pages until the residual set
        // fits the downtime budget, the round limit is hit, or the
        // pre-copy time budget runs out (convergence guard).
        while tl.rounds_len() < self.max_rounds as usize
            && dirty.len() as u64 > self.downtime_budget_pages()
            && self
                .precopy_time_budget
                .is_none_or(|budget| tl.elapsed() < budget)
        {
            let round_no = tl.rounds_len() as u32 + 1;
            match tl.resend_round(&*guest, &dirty, &strategy, &mut sent) {
                Ok(duration) => {
                    workload.advance(guest, tl.spiked(round_no, duration));
                    dirty = guest.dirty_mut().drain();
                    self.obs_dirty(&dirty);
                }
                Err(wreck) => return Ok(LiveOutcome::Aborted(wreck)),
            }
        }

        // Convergence verdict: did the residue genuinely fit the downtime
        // budget, or did a guard (round/time limit) force the handover?
        let converged = dirty.len() as u64 <= self.downtime_budget_pages();

        let downtime = match tl.stop_copy(&*guest, &dirty) {
            Ok(downtime) => downtime,
            Err(wreck) => return Ok(LiveOutcome::Aborted(wreck)),
        };
        Ok(LiveOutcome::Completed(tl.complete(
            &strategy,
            guest.ram_size(),
            downtime,
            converged,
        )))
    }
}
