//! [`MigrationEngine`]: the pre-copy loop with pluggable first rounds.

use std::collections::HashMap;

use vecycle_checkpoint::{DedupIndex, PageLookup};
use vecycle_faults::{AttemptFaults, FaultCause};
use vecycle_host::{CpuSpec, DiskSpec};
use vecycle_mem::{workload::GuestWorkload, Guest, MemoryImage, MutableMemory};
use vecycle_net::{wire, LinkSpec, TrafficCategory, TrafficLedger};
use vecycle_obs::{layouts, FieldValue, MetricsRegistry, SpanId};
use vecycle_types::{Bytes, BytesPerSec, PageCount, PageDigest, PageIndex, SimDuration};

use crate::strategy::PageAction;
use crate::{MigrationReport, PageMsg, RoundReport, SetupReport, Strategy, Transcript};

/// What a (possibly faulted) live migration attempt produced.
///
/// Transient — matched and consumed immediately by the session, never
/// stored in bulk, so the variant size gap is harmless.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum LiveOutcome {
    /// The attempt ran to handover.
    Completed(MigrationReport),
    /// An injected fault killed the transfer mid-flight.
    Aborted(AbortedTransfer),
}

/// The wreckage of an aborted migration attempt: what landed at the
/// destination before the link died, and what the attempt cost.
///
/// The landed map is the raw material of a
/// [`vecycle_checkpoint::PartialCheckpoint`]; the session layer wraps it
/// (the engine does not know VM identities).
#[derive(Debug, Clone)]
pub struct AbortedTransfer {
    /// Why the attempt died.
    pub cause: FaultCause,
    /// Per guest page, the digest of the content that reached the
    /// destination before the cut (page order; `None` = never arrived).
    pub landed: Vec<Option<PageDigest>>,
    /// Source traffic spent on the attempt (all of it wasted).
    pub traffic: Bytes,
    /// Time spent on the attempt before it died.
    pub elapsed: SimDuration,
}

impl AbortedTransfer {
    /// Pages whose content reached the destination.
    pub fn landed_pages(&self) -> PageCount {
        PageCount::new(self.landed.iter().filter(|d| d.is_some()).count() as u64)
    }
}

/// Tracks the forward-path byte cursor of a doomed transfer: messages
/// land until the cumulative payload crosses the cut point, and each
/// landed message deposits its page's digest at the destination.
struct CutTracker {
    limit: u64,
    sent: u64,
    landed: Vec<Option<PageDigest>>,
}

impl CutTracker {
    fn new(limit: Bytes, pages: PageCount) -> Self {
        CutTracker {
            limit: limit.as_u64(),
            sent: 0,
            landed: vec![None; pages.as_u64() as usize],
        }
    }

    /// Accounts one message for page `idx` carrying `digest`. Returns
    /// false (and deposits nothing) if the link dies first.
    fn land(&mut self, bytes: Bytes, idx: PageIndex, digest: PageDigest) -> bool {
        let next = self.sent + bytes.as_u64();
        if next > self.limit {
            return false;
        }
        self.sent = next;
        self.landed[idx.as_usize()] = Some(digest);
        true
    }
}

/// Per-category landed-message counts of a partially transferred round.
#[derive(Default)]
struct LandedCounts {
    full: u64,
    checksums: u64,
    refs: u64,
    zeros: u64,
}

/// How source and destination agree on which checksums the destination
/// holds (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeProtocol {
    /// The destination sends all its checksums in bulk before the first
    /// copy round — the paper's choice.
    Bulk,
    /// The source queries the destination per page; `pipeline_depth`
    /// queries are in flight at once. The paper expects this to be slow
    /// ("high frequency exchange of small messages") — the protocol
    /// ablation quantifies by how much.
    PerPage {
        /// Concurrent in-flight queries.
        pipeline_depth: u32,
    },
}

/// A delta/block-compression model for full-page payloads.
///
/// Svärd et al. \[24 in the paper\] show compression shrinks migration
/// data at a CPU cost; this model captures both: payloads shrink to
/// `ratio` of their size, and compressing competes with the wire for
/// round time at `throughput`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaCompression {
    ratio: f64,
    throughput: vecycle_types::BytesPerSec,
}

impl DeltaCompression {
    /// Creates a compression model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ratio ≤ 1`.
    pub fn new(ratio: f64, throughput: vecycle_types::BytesPerSec) -> Self {
        assert!(
            ratio > 0.0 && ratio <= 1.0,
            "compression ratio must be in (0, 1], got {ratio}"
        );
        DeltaCompression { ratio, throughput }
    }

    /// The output/input size ratio.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Compressed wire size of a payload.
    pub fn compress(&self, payload: Bytes) -> Bytes {
        Bytes::new((payload.as_f64() * self.ratio).ceil() as u64)
    }

    /// CPU time to compress a payload.
    pub fn time(&self, payload: Bytes) -> SimDuration {
        self.throughput.time_to_transfer(payload)
    }
}

/// QEMU-style XBZRLE delta encoding for *re-sent* pages.
///
/// In pre-copy rounds ≥ 2 the source re-sends pages the guest dirtied;
/// QEMU's XBZRLE cache keeps the previously-sent version and transmits
/// only the byte delta when the page is still cached. Modeled here as a
/// cache hit rate and a mean delta/page size ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Xbzrle {
    hit_rate: f64,
    delta_ratio: f64,
}

impl Xbzrle {
    /// Creates an XBZRLE model.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are in `[0, 1]`.
    pub fn new(hit_rate: f64, delta_ratio: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&hit_rate) && (0.0..=1.0).contains(&delta_ratio),
            "xbzrle parameters must be fractions: hit {hit_rate}, delta {delta_ratio}"
        );
        Xbzrle {
            hit_rate,
            delta_ratio,
        }
    }

    /// Mean wire bytes for one re-sent page of `raw` bytes.
    pub fn resend_bytes(&self, raw: Bytes) -> Bytes {
        let mean = self.hit_rate * self.delta_ratio + (1.0 - self.hit_rate);
        Bytes::new((raw.as_f64() * mean).ceil() as u64)
    }
}

/// The migration engine: link, CPU and policy knobs.
///
/// Construct with [`MigrationEngine::new`] and adjust with the `with_*`
/// methods. The engine is stateless across migrations and can be reused.
#[derive(Debug, Clone)]
pub struct MigrationEngine {
    link: LinkSpec,
    cpu: CpuSpec,
    dest_disk: DiskSpec,
    algorithm: vecycle_hash::ChecksumAlgorithm,
    exchange: ExchangeProtocol,
    max_rounds: u32,
    max_downtime: SimDuration,
    zero_suppression: bool,
    compression: Option<DeltaCompression>,
    xbzrle: Option<Xbzrle>,
    threads: usize,
    precopy_time_budget: Option<SimDuration>,
    metrics: MetricsRegistry,
}

impl MigrationEngine {
    /// Creates an engine with the paper's benchmark defaults: Phenom-II
    /// checksum rates, MD5, checkpoint on HDD, bulk exchange, QEMU-like
    /// round limit and 300 ms downtime target.
    pub fn new(link: LinkSpec) -> Self {
        MigrationEngine {
            link,
            cpu: CpuSpec::phenom_ii(),
            dest_disk: DiskSpec::hdd_samsung_hd204ui(),
            algorithm: vecycle_hash::ChecksumAlgorithm::Md5,
            exchange: ExchangeProtocol::Bulk,
            max_rounds: 30,
            max_downtime: SimDuration::from_millis(300),
            // QEMU 2.0 suppresses all-zero pages by default; the
            // prototype inherits it, so so do we.
            zero_suppression: true,
            compression: None,
            xbzrle: None,
            threads: 1,
            precopy_time_budget: None,
            metrics: MetricsRegistry::new(),
        }
    }

    /// Replaces the CPU model.
    #[must_use]
    pub fn with_cpu(mut self, cpu: CpuSpec) -> Self {
        self.cpu = cpu;
        self
    }

    /// Replaces the destination checkpoint disk model.
    #[must_use]
    pub fn with_dest_disk(mut self, disk: DiskSpec) -> Self {
        self.dest_disk = disk;
        self
    }

    /// Replaces the checksum algorithm (§3.4 ablation).
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: vecycle_hash::ChecksumAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Replaces the checksum-exchange protocol.
    #[must_use]
    pub fn with_exchange(mut self, exchange: ExchangeProtocol) -> Self {
        self.exchange = exchange;
        self
    }

    /// Limits the number of pre-copy rounds.
    ///
    /// # Panics
    ///
    /// Panics if `max_rounds` is zero.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u32) -> Self {
        assert!(max_rounds > 0, "need at least one round");
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the stop-and-copy downtime target.
    #[must_use]
    pub fn with_max_downtime(mut self, max_downtime: SimDuration) -> Self {
        self.max_downtime = max_downtime;
        self
    }

    /// Enables or disables QEMU-style zero-page suppression (default on).
    #[must_use]
    pub fn with_zero_page_suppression(mut self, enabled: bool) -> Self {
        self.zero_suppression = enabled;
        self
    }

    /// Enables delta compression of full-page payloads (default off).
    #[must_use]
    pub fn with_compression(mut self, compression: DeltaCompression) -> Self {
        self.compression = Some(compression);
        self
    }

    /// Enables XBZRLE delta encoding for re-sent pages (default off).
    #[must_use]
    pub fn with_xbzrle(mut self, xbzrle: Xbzrle) -> Self {
        self.xbzrle = Some(xbzrle);
        self
    }

    /// Sets the number of worker threads for the first-round page scan
    /// (default 1: fully sequential).
    ///
    /// Results are bit-identical for every thread count — the parallel
    /// scan splits the image into contiguous shards and merges them
    /// deterministically; only wall-clock time changes.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one scan thread");
        self.threads = threads;
        self
    }

    /// The configured scan-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Caps the cumulative pre-copy time (default: unlimited).
    ///
    /// This is the time half of the convergence guard: once the copy
    /// rounds have spent this budget, the engine stops iterating and
    /// forces the final stop-and-copy regardless of the residual dirty
    /// set — a hot guest cannot pin the migration in pre-copy forever.
    /// The round limit ([`MigrationEngine::with_max_rounds`]) is the
    /// other half. A guarded exit reports
    /// [`MigrationReport::converged`]` == false`.
    #[must_use]
    pub fn with_precopy_time_budget(mut self, budget: SimDuration) -> Self {
        self.precopy_time_budget = Some(budget);
        self
    }

    /// The configured pre-copy time budget, if any.
    pub fn precopy_time_budget(&self) -> Option<SimDuration> {
        self.precopy_time_budget
    }

    /// Shares a metrics registry with this engine (default: a fresh
    /// private one, so un-instrumented callers pay only a no-reader
    /// registry). The registry is purely an observer: attaching one
    /// never changes a single byte of any migration result.
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = metrics;
        self
    }

    /// The engine's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Estimates the similarity between `vm` and a checkpoint index by
    /// probing `samples` evenly-spaced pages — the cheap test a
    /// deployment can run before committing to checksum the whole image
    /// (an always-busy VM gains little from VeCycle, §2.3).
    pub fn estimate_similarity<M: MemoryImage>(
        vm: &M,
        index: &vecycle_checkpoint::ChecksumIndex,
        samples: u64,
    ) -> vecycle_types::Ratio {
        let n = vm.page_count().as_u64();
        if n == 0 || samples == 0 {
            return vecycle_types::Ratio::ZERO;
        }
        let samples = samples.min(n);
        let mut hits = 0u64;
        // Weyl-sequence probing: deterministic but aperiodic, so guests
        // with regular write patterns (every k-th page) don't alias the
        // sample (a plain stride would).
        for k in 0..samples {
            let mixed = (k + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let idx = PageIndex::new(mixed % n);
            if index.contains(vm.page_digest(idx)) {
                hits += 1;
            }
        }
        vecycle_types::Ratio::new(hits as f64 / samples as f64)
    }

    /// The engine's link.
    pub fn link(&self) -> LinkSpec {
        self.link
    }

    /// Migrates a *static* memory image (no concurrent guest writes):
    /// one copy round plus the completion handshake. This is the
    /// idle-VM measurement shape of §4.4.
    ///
    /// # Errors
    ///
    /// Returns [`vecycle_types::Error::InvalidConfig`] if the image is
    /// empty.
    pub fn migrate<M: MemoryImage>(
        &self,
        vm: &M,
        strategy: Strategy,
    ) -> vecycle_types::Result<MigrationReport> {
        self.migrate_inner(vm, strategy, None)
    }

    /// Like [`MigrationEngine::migrate`], but also records the message
    /// stream so a destination can replay it (see
    /// [`crate::apply_transcript`]).
    ///
    /// # Errors
    ///
    /// Same as [`MigrationEngine::migrate`].
    pub fn migrate_with_transcript<M: MemoryImage>(
        &self,
        vm: &M,
        strategy: Strategy,
    ) -> vecycle_types::Result<(MigrationReport, Transcript)> {
        let mut transcript = Transcript::new();
        let report = self.migrate_inner(vm, strategy, Some(&mut transcript))?;
        Ok((report, transcript))
    }

    fn migrate_inner<M: MemoryImage>(
        &self,
        vm: &M,
        strategy: Strategy,
        transcript: Option<&mut Transcript>,
    ) -> vecycle_types::Result<MigrationReport> {
        let n = vm.page_count();
        if n == PageCount::ZERO {
            return Err(vecycle_types::Error::InvalidConfig {
                reason: "cannot migrate an empty memory image".into(),
            });
        }
        let span = self.obs_migration_start("static", &strategy);
        let mut forward = TrafficLedger::new();
        let mut reverse = TrafficLedger::new();
        let setup = self.setup_phase(&strategy, vm.ram_size(), &mut reverse);
        let mut sent = DedupIndex::new();
        let round1 = self.first_round(
            vm,
            &strategy,
            &mut sent,
            &mut forward,
            &mut reverse,
            self.link,
            transcript,
        );
        self.obs_round(&round1);
        let downtime = self.stop_and_copy(0, 0, &mut forward, self.link);
        let report = MigrationReport::new(
            strategy.name(),
            vm.ram_size(),
            vec![round1],
            downtime,
            setup,
            forward,
            reverse,
        );
        self.obs_migration_end(span, &report);
        Ok(report)
    }

    /// Migrates a *gang* of VMs to the same destination with a shared
    /// sender-side dedup cache — cluster-level deduplication in the
    /// spirit of VMFlock/Shrinker (related work §5): identical pages
    /// across co-migrating VMs cross the wire once.
    ///
    /// `vms[i]` migrates under `strategies[i]`; cross-VM dedup only
    /// applies where a strategy enables dedup.
    ///
    /// # Errors
    ///
    /// Returns [`vecycle_types::Error::InvalidConfig`] if the slices
    /// have different lengths, the gang is empty, or any image is empty.
    pub fn migrate_gang<M: MemoryImage>(
        &self,
        vms: &[&M],
        strategies: &[Strategy],
    ) -> vecycle_types::Result<Vec<MigrationReport>> {
        if vms.is_empty() || vms.len() != strategies.len() {
            return Err(vecycle_types::Error::InvalidConfig {
                reason: format!(
                    "gang of {} VMs with {} strategies",
                    vms.len(),
                    strategies.len()
                ),
            });
        }
        let mut sent = DedupIndex::new();
        let mut reports = Vec::with_capacity(vms.len());
        for (vm, strategy) in vms.iter().zip(strategies) {
            if vm.page_count() == PageCount::ZERO {
                return Err(vecycle_types::Error::InvalidConfig {
                    reason: "cannot migrate an empty memory image".into(),
                });
            }
            let span = self.obs_migration_start("gang", strategy);
            let mut forward = TrafficLedger::new();
            let mut reverse = TrafficLedger::new();
            let setup = self.setup_phase(strategy, vm.ram_size(), &mut reverse);
            let round1 = self.first_round(
                *vm,
                strategy,
                &mut sent,
                &mut forward,
                &mut reverse,
                self.link,
                None,
            );
            self.obs_round(&round1);
            let downtime = self.stop_and_copy(0, 0, &mut forward, self.link);
            let report = MigrationReport::new(
                strategy.name(),
                vm.ram_size(),
                vec![round1],
                downtime,
                setup,
                forward,
                reverse,
            );
            self.obs_migration_end(span, &report);
            reports.push(report);
        }
        Ok(reports)
    }

    /// Migrates a *live* guest: the workload keeps dirtying memory while
    /// rounds are in flight, exactly as in §3.1's description.
    ///
    /// The guest's dirty tracker is cleared at the start (dirty logging
    /// begins when migration begins) and left cleared on return; the
    /// guest's memory reflects all writes the workload performed during
    /// the migration.
    ///
    /// # Errors
    ///
    /// Returns [`vecycle_types::Error::InvalidConfig`] if the guest has
    /// no pages.
    pub fn migrate_live<M, W>(
        &self,
        guest: &mut Guest<M>,
        workload: &mut W,
        strategy: Strategy,
    ) -> vecycle_types::Result<MigrationReport>
    where
        M: MutableMemory,
        W: GuestWorkload<M>,
    {
        match self.migrate_live_faulted(guest, workload, strategy, &AttemptFaults::none())? {
            LiveOutcome::Completed(report) => Ok(report),
            LiveOutcome::Aborted(_) => unreachable!("a fault-free attempt cannot abort"),
        }
    }

    /// Like [`MigrationEngine::migrate_live`], but the attempt runs under
    /// injected faults and may therefore die mid-flight.
    ///
    /// With [`AttemptFaults::none`] this is *exactly* `migrate_live`:
    /// every fault check is a no-op and the report is bit-identical. An
    /// armed link cut makes each message land at the destination only if
    /// the cumulative forward payload stays under the cut point; when the
    /// link dies the attempt returns [`LiveOutcome::Aborted`] carrying
    /// the per-page landed digests — the raw material a session layer
    /// turns into a [`vecycle_checkpoint::PartialCheckpoint`] and
    /// recycles on retry. The guest is left as the failed attempt really
    /// left it: memory reflects all workload writes up to the abort. (A
    /// retry restarts dirty logging and re-scans every page in its own
    /// round 1, so the aborted attempt's residual dirty set need not
    /// survive.)
    ///
    /// # Errors
    ///
    /// Returns [`vecycle_types::Error::InvalidConfig`] if the guest has
    /// no pages. Injected faults never surface as `Err` — they are data,
    /// in the returned [`LiveOutcome`].
    pub fn migrate_live_faulted<M, W>(
        &self,
        guest: &mut Guest<M>,
        workload: &mut W,
        strategy: Strategy,
        faults: &AttemptFaults,
    ) -> vecycle_types::Result<LiveOutcome>
    where
        M: MutableMemory,
        W: GuestWorkload<M>,
    {
        let n = guest.page_count();
        if n == PageCount::ZERO {
            return Err(vecycle_types::Error::InvalidConfig {
                reason: "cannot migrate an empty guest".into(),
            });
        }
        let span = self.obs_migration_start("live", &strategy);
        let mut forward = TrafficLedger::new();
        let mut reverse = TrafficLedger::new();
        let setup = self.setup_phase(&strategy, guest.ram_size(), &mut reverse);
        let mut cut = faults
            .cut_after
            .map(|point| CutTracker::new(point.resolve(guest.ram_size()), n));

        guest.dirty_mut().clear();
        let mut sent = DedupIndex::new();
        let link1 = self.link_for_round(1, faults);
        let round1 = match cut.as_mut() {
            None => self.first_round(
                guest,
                &strategy,
                &mut sent,
                &mut forward,
                &mut reverse,
                link1,
                None,
            ),
            Some(tracker) => {
                let walked = self.first_round_tracked(
                    guest,
                    &strategy,
                    &mut sent,
                    &mut forward,
                    &mut reverse,
                    link1,
                    tracker,
                );
                match walked {
                    Ok(round) => round,
                    Err(partial_time) => {
                        let wreck = AbortedTransfer {
                            cause: FaultCause::LinkFailure,
                            landed: std::mem::take(&mut tracker.landed),
                            traffic: forward.total(),
                            elapsed: partial_time,
                        };
                        self.obs_abort(span, 1, &wreck);
                        return Ok(LiveOutcome::Aborted(wreck));
                    }
                }
            }
        };
        let mut rounds = vec![round1];
        self.obs_round(&rounds[0]);
        let mut elapsed = rounds[0].duration;
        workload.advance(guest, spiked_duration(faults, 1, rounds[0].duration));
        let mut dirty = guest.dirty_mut().drain();
        self.obs_dirty(&dirty);

        // Iterative pre-copy: re-send dirty pages until the residual set
        // fits the downtime budget, the round limit is hit, or the
        // pre-copy time budget runs out (convergence guard). Every
        // resend goes back through the strategy: a guest that rewrites a
        // page with content the destination's checkpoint already holds
        // costs a 28-byte checksum message, not a full page (§3.1 — the
        // re-dirtied page is classified exactly like a first-round page,
        // minus the stale reusable-set check).
        while rounds.len() < self.max_rounds as usize
            && dirty.len() as u64 > self.downtime_budget_pages()
            && self
                .precopy_time_budget
                .is_none_or(|budget| elapsed < budget)
        {
            let round_no = rounds.len() as u32 + 1;
            let link = self.link_for_round(round_no, faults);
            let page_msg = self.resend_page_wire_size();
            let mut full = 0u64;
            let mut checksums = 0u64;
            let mut refs = 0u64;
            let mut zeros = 0u64;
            let mut aborted = false;
            // `drain` yields ascending page order, so dedup cache updates
            // stay deterministic across runs.
            for &idx in &dirty {
                let digest = guest.page_digest(idx);
                if self.zero_suppression && digest.is_zero_page() {
                    if let Some(tracker) = cut.as_mut() {
                        if !tracker.land(wire::zero_page_msg(), idx, digest) {
                            aborted = true;
                            break;
                        }
                    }
                    zeros += 1;
                    continue;
                }
                let action = strategy.classify_resend(digest, &sent);
                if let Some(tracker) = cut.as_mut() {
                    let size = match action {
                        PageAction::SendFull => page_msg,
                        PageAction::SendChecksum => wire::checksum_msg(),
                        PageAction::SendDedupRef(_) => wire::dedup_ref_msg(),
                        PageAction::Skip => unreachable!("classify_resend never skips"),
                    };
                    if !tracker.land(size, idx, digest) {
                        aborted = true;
                        break;
                    }
                }
                match action {
                    PageAction::SendFull => {
                        full += 1;
                        sent.insert_first(digest, idx);
                    }
                    PageAction::SendChecksum => {
                        checksums += 1;
                        sent.insert_first(digest, idx);
                    }
                    PageAction::SendDedupRef(_) => refs += 1,
                    PageAction::Skip => unreachable!("classify_resend never skips"),
                }
            }
            let bytes = page_msg * full
                + wire::checksum_msg() * checksums
                + wire::dedup_ref_msg() * refs
                + wire::zero_page_msg() * zeros;
            self.rec_many(
                &mut forward,
                "forward",
                TrafficCategory::FullPages,
                full,
                page_msg,
            );
            self.rec_many(
                &mut forward,
                "forward",
                TrafficCategory::Checksums,
                checksums,
                wire::checksum_msg(),
            );
            self.rec_many(
                &mut forward,
                "forward",
                TrafficCategory::DedupRefs,
                refs,
                wire::dedup_ref_msg(),
            );
            self.rec_many(
                &mut forward,
                "forward",
                TrafficCategory::ZeroMarkers,
                zeros,
                wire::zero_page_msg(),
            );
            self.obs_pages(
                "engine_resend_pages_total",
                &[
                    ("full", full),
                    ("checksum", checksums),
                    ("dedup_ref", refs),
                    ("zero", zeros),
                ],
            );
            if aborted {
                // Landed messages are accounted above; the control
                // trailer never made it out.
                let wreck = AbortedTransfer {
                    cause: FaultCause::LinkFailure,
                    landed: cut.expect("cut tracker armed").landed,
                    traffic: forward.total(),
                    elapsed: elapsed.saturating_add(link.transfer_time(bytes)),
                };
                self.obs_abort(span, round_no, &wreck);
                return Ok(LiveOutcome::Aborted(wreck));
            }
            self.rec(
                &mut forward,
                "forward",
                TrafficCategory::Control,
                Bytes::new(wire::MSG_HEADER),
            );
            // Re-dirtied pages must be re-hashed before the index lookup.
            let checksum_cost = if strategy.computes_checksums() {
                self.cpu
                    .checksum_time(self.algorithm, Bytes::from_pages(dirty.len() as u64))
            } else {
                SimDuration::ZERO
            };
            let compress_cost = match self.compression {
                Some(c) => c.time(Bytes::from_pages(full)),
                None => SimDuration::ZERO,
            };
            let duration = link
                .transfer_time(bytes)
                .max(checksum_cost)
                .max(compress_cost);
            rounds.push(RoundReport {
                round: round_no,
                full_pages: PageCount::new(full),
                checksum_pages: PageCount::new(checksums),
                dedup_refs: PageCount::new(refs),
                skipped_pages: PageCount::ZERO,
                zero_pages: PageCount::new(zeros),
                bytes_sent: bytes,
                duration,
            });
            self.obs_round(rounds.last().expect("just pushed"));
            elapsed = elapsed.saturating_add(duration);
            workload.advance(guest, spiked_duration(faults, round_no, duration));
            dirty = guest.dirty_mut().drain();
            self.obs_dirty(&dirty);
        }

        // Convergence verdict: did the residue genuinely fit the downtime
        // budget, or did a guard (round/time limit) force the handover?
        let converged = dirty.len() as u64 <= self.downtime_budget_pages();

        let link_final = self.link_for_round(rounds.len() as u32 + 1, faults);
        if let Some(tracker) = cut.as_mut() {
            // The cut can also strike the final stop-and-copy flush.
            let page_msg = self.resend_page_wire_size();
            let mut landed_full = 0u64;
            let mut landed_zeros = 0u64;
            let mut aborted = false;
            for &idx in &dirty {
                let digest = guest.page_digest(idx);
                let (size, zero) = if self.zero_suppression && digest.is_zero_page() {
                    (wire::zero_page_msg(), true)
                } else {
                    (page_msg, false)
                };
                if !tracker.land(size, idx, digest) {
                    aborted = true;
                    break;
                }
                if zero {
                    landed_zeros += 1;
                } else {
                    landed_full += 1;
                }
            }
            if aborted {
                self.rec_many(
                    &mut forward,
                    "forward",
                    TrafficCategory::FullPages,
                    landed_full,
                    page_msg,
                );
                self.rec_many(
                    &mut forward,
                    "forward",
                    TrafficCategory::ZeroMarkers,
                    landed_zeros,
                    wire::zero_page_msg(),
                );
                let bytes = page_msg * landed_full + wire::zero_page_msg() * landed_zeros;
                let wreck = AbortedTransfer {
                    cause: FaultCause::LinkFailure,
                    landed: std::mem::take(&mut tracker.landed),
                    traffic: forward.total(),
                    elapsed: elapsed.saturating_add(link_final.transfer_time(bytes)),
                };
                self.obs_abort(span, rounds.len() as u32 + 1, &wreck);
                return Ok(LiveOutcome::Aborted(wreck));
            }
        }
        let (residue_full, residue_zeros) = self.split_zero_pages(guest, &dirty);
        let downtime = self.stop_and_copy(residue_full, residue_zeros, &mut forward, link_final);
        let mut report = MigrationReport::new(
            strategy.name(),
            guest.ram_size(),
            rounds,
            downtime,
            setup,
            forward,
            reverse,
        );
        report.set_converged(converged);
        self.obs_migration_end(span, &report);
        Ok(LiveOutcome::Completed(report))
    }

    /// Splits a dirty set into (full, zero) page counts under the
    /// current zero-suppression setting.
    fn split_zero_pages<M: MemoryImage>(&self, vm: &M, dirty: &[PageIndex]) -> (u64, u64) {
        if !self.zero_suppression {
            return (dirty.len() as u64, 0);
        }
        let zeros = dirty
            .iter()
            .filter(|idx| vm.page_digest(**idx).is_zero_page())
            .count() as u64;
        (dirty.len() as u64 - zeros, zeros)
    }

    /// Pages the final round may still carry within the downtime target.
    ///
    /// Divides the downtime byte budget by the wire size a resent page
    /// *actually* occupies: XBZRLE deltas and compressed payloads shrink
    /// resends, so more residual pages fit the same pause — using the
    /// uncompressed size here would stop iterating too early and then
    /// overshoot the downtime target it was meant to respect.
    fn downtime_budget_pages(&self) -> u64 {
        let budget = self.link.effective_bandwidth().bytes_in(self.max_downtime);
        budget.as_u64() / self.resend_page_wire_size().as_u64()
    }

    fn setup_phase(
        &self,
        strategy: &Strategy,
        ram: Bytes,
        reverse: &mut TrafficLedger,
    ) -> SetupReport {
        let Some(index) = strategy.index() else {
            return SetupReport::default();
        };
        // Destination: sequential checkpoint read, hashing each block as
        // it streams past (§3.3); the slower of disk and hash rate wins.
        let read = self
            .dest_disk
            .sequential_time(ram)
            .max(self.cpu.checksum_time(self.algorithm, ram));
        // Sorting ~n log n digest comparisons; ~20 ns per element-move is
        // generous for 16-byte keys.
        let entries = index.distinct() as u64;
        let index_build = SimDuration::from_nanos(
            entries.max(1) * (64 - entries.max(2).leading_zeros() as u64) * 20,
        );
        let mut setup = SetupReport {
            checkpoint_read: read,
            checkpoint_write: SimDuration::ZERO,
            index_build,
            exchange_bytes: Bytes::ZERO,
            exchange_time: SimDuration::ZERO,
        };
        if matches!(self.exchange, ExchangeProtocol::Bulk) {
            let bytes = wire::bulk_exchange(entries);
            self.rec(reverse, "reverse", TrafficCategory::BulkExchange, bytes);
            setup.exchange_bytes = bytes;
            setup.exchange_time = self.link.transfer_time(bytes);
        }
        setup
    }

    #[allow(clippy::too_many_arguments)]
    fn first_round<M: MemoryImage>(
        &self,
        vm: &M,
        strategy: &Strategy,
        sent: &mut DedupIndex,
        forward: &mut TrafficLedger,
        reverse: &mut TrafficLedger,
        link: LinkSpec,
        transcript: Option<&mut Transcript>,
    ) -> RoundReport {
        let want_msgs = transcript.is_some();
        let mut scan = if self.threads <= 1 {
            self.scan_sequential(vm, strategy, sent, want_msgs)
        } else {
            self.scan_parallel(vm, strategy, sent, want_msgs)
        };
        if let (Some(t), Some(msgs)) = (transcript, scan.msgs.take()) {
            t.extend(msgs);
        }
        self.finish_first_round(
            vm.page_count().as_u64(),
            &scan,
            strategy,
            link,
            forward,
            reverse,
        )
    }

    /// Round 1 under an armed link cut: scans exactly like
    /// [`MigrationEngine::first_round`], then walks the message stream
    /// against the cut point. If the round survives it is recorded
    /// identically to the untracked path; if the link dies mid-round,
    /// only landed messages are recorded (the control trailer never made
    /// it out) and the `Err` carries the in-round time spent before the
    /// cut.
    #[allow(clippy::too_many_arguments)]
    fn first_round_tracked<M: MemoryImage>(
        &self,
        vm: &M,
        strategy: &Strategy,
        sent: &mut DedupIndex,
        forward: &mut TrafficLedger,
        reverse: &mut TrafficLedger,
        link: LinkSpec,
        tracker: &mut CutTracker,
    ) -> Result<RoundReport, SimDuration> {
        // Always scan with messages: the walk needs per-page order.
        let scan = if self.threads <= 1 {
            self.scan_sequential(vm, strategy, sent, true)
        } else {
            self.scan_parallel(vm, strategy, sent, true)
        };
        let page_msg = self.full_page_wire_size();
        let mut landed = LandedCounts::default();
        let mut aborted = false;
        for msg in scan.msgs.as_deref().expect("tracked scan records messages") {
            let (idx, size) = match msg {
                PageMsg::Full { idx, .. } => (*idx, page_msg),
                PageMsg::Checksum { idx, .. } => (*idx, wire::checksum_msg()),
                PageMsg::DedupRef { idx, .. } => (*idx, wire::dedup_ref_msg()),
                PageMsg::Zero { idx } => (*idx, wire::zero_page_msg()),
            };
            if !tracker.land(size, idx, vm.page_digest(idx)) {
                aborted = true;
                break;
            }
            match msg {
                PageMsg::Full { .. } => landed.full += 1,
                PageMsg::Checksum { .. } => landed.checksums += 1,
                PageMsg::DedupRef { .. } => landed.refs += 1,
                PageMsg::Zero { .. } => landed.zeros += 1,
            }
        }
        if aborted {
            self.rec_many(
                forward,
                "forward",
                TrafficCategory::FullPages,
                landed.full,
                page_msg,
            );
            self.rec_many(
                forward,
                "forward",
                TrafficCategory::Checksums,
                landed.checksums,
                wire::checksum_msg(),
            );
            self.rec_many(
                forward,
                "forward",
                TrafficCategory::DedupRefs,
                landed.refs,
                wire::dedup_ref_msg(),
            );
            self.rec_many(
                forward,
                "forward",
                TrafficCategory::ZeroMarkers,
                landed.zeros,
                wire::zero_page_msg(),
            );
            return Err(link.transfer_time(forward.total()));
        }
        Ok(self.finish_first_round(
            vm.page_count().as_u64(),
            &scan,
            strategy,
            link,
            forward,
            reverse,
        ))
    }

    /// Records a completed round-1 scan into the ledgers and computes its
    /// [`RoundReport`] — shared between the clean and cut-tracked paths,
    /// so a surviving faulted round is accounted bit-identically to a
    /// fault-free one.
    fn finish_first_round(
        &self,
        n: u64,
        scan: &ScanOutcome,
        strategy: &Strategy,
        link: LinkSpec,
        forward: &mut TrafficLedger,
        reverse: &mut TrafficLedger,
    ) -> RoundReport {
        let &ScanOutcome {
            full,
            checksums,
            refs,
            skipped,
            zeros,
            ..
        } = scan;

        let page_msg = self.full_page_wire_size();
        self.rec_many(
            forward,
            "forward",
            TrafficCategory::FullPages,
            full,
            page_msg,
        );
        self.rec_many(
            forward,
            "forward",
            TrafficCategory::Checksums,
            checksums,
            wire::checksum_msg(),
        );
        self.rec_many(
            forward,
            "forward",
            TrafficCategory::DedupRefs,
            refs,
            wire::dedup_ref_msg(),
        );
        self.rec_many(
            forward,
            "forward",
            TrafficCategory::ZeroMarkers,
            zeros,
            wire::zero_page_msg(),
        );
        self.rec(
            forward,
            "forward",
            TrafficCategory::Control,
            Bytes::new(wire::MSG_HEADER),
        );
        // Miyakodori ships the page-reuse bitmap so the destination knows
        // which checkpoint pages stand (1 bit per page).
        if skipped > 0 {
            self.rec(
                forward,
                "forward",
                TrafficCategory::Control,
                Bytes::new(n.div_ceil(8) + wire::MSG_HEADER),
            );
        }

        let mut query_time = SimDuration::ZERO;
        if strategy.needs_exchange() {
            if let ExchangeProtocol::PerPage { pipeline_depth } = self.exchange {
                // Every scanned page costs a query/reply pair; queries
                // pipeline `pipeline_depth` deep.
                self.rec_many(
                    forward,
                    "forward",
                    TrafficCategory::Checksums,
                    n,
                    wire::page_query(),
                );
                self.rec_many(
                    reverse,
                    "reverse",
                    TrafficCategory::Control,
                    n,
                    wire::page_query_reply(),
                );
                let rtts = n.div_ceil(u64::from(pipeline_depth.max(1)));
                query_time =
                    SimDuration::from_secs_f64(link.round_trip().as_secs_f64() * rtts as f64);
            }
        }

        let bytes = forward.total();
        let network = link.transfer_time(bytes);
        // §3.4: with reuse, the checksum rate bounds the round from
        // below; checksums for all n pages are computed during round 1.
        let checksum_cost = if strategy.computes_checksums() {
            self.cpu.checksum_time(self.algorithm, Bytes::from_pages(n))
        } else {
            SimDuration::ZERO
        };
        let compress_cost = match self.compression {
            Some(c) => c.time(Bytes::from_pages(full)),
            None => SimDuration::ZERO,
        };
        let duration = network
            .max(checksum_cost)
            .max(compress_cost)
            .saturating_add(query_time);

        RoundReport {
            round: 1,
            full_pages: PageCount::new(full),
            checksum_pages: PageCount::new(checksums),
            dedup_refs: PageCount::new(refs),
            skipped_pages: PageCount::new(skipped),
            zero_pages: PageCount::new(zeros),
            bytes_sent: bytes,
            duration,
        }
    }

    /// The reference first-round scan: one pass in page order, dedup
    /// cache consulted and updated inline. The parallel scan is defined
    /// as "whatever this produces".
    fn scan_sequential<M: MemoryImage>(
        &self,
        vm: &M,
        strategy: &Strategy,
        sent: &mut DedupIndex,
        want_msgs: bool,
    ) -> ScanOutcome {
        let n = vm.page_count().as_u64();
        let mut out = ScanOutcome::new(want_msgs);
        for i in 0..n {
            let idx = PageIndex::new(i);
            let digest = vm.page_digest(idx);
            let action = strategy.classify(idx, digest, sent);
            // Zero suppression applies whenever a payload would be sent:
            // a 13-byte marker beats both the full page and the 28-byte
            // checksum message. Dirty-tracking skips stay skips.
            if self.zero_suppression && digest.is_zero_page() && action != PageAction::Skip {
                out.zeros += 1;
                if let Some(t) = out.msgs.as_mut() {
                    t.push(PageMsg::Zero { idx });
                }
                continue;
            }
            match action {
                PageAction::SendFull => {
                    out.full += 1;
                    sent.insert_first(digest, idx);
                    if let Some(t) = out.msgs.as_mut() {
                        t.push(PageMsg::Full {
                            idx,
                            digest,
                            bytes: vm.page_bytes(idx).map(|b| b.to_vec().into_boxed_slice()),
                        });
                    }
                }
                PageAction::SendChecksum => {
                    out.checksums += 1;
                    sent.insert_first(digest, idx);
                    if let Some(t) = out.msgs.as_mut() {
                        t.push(PageMsg::Checksum { idx, digest });
                    }
                }
                PageAction::SendDedupRef(source) => {
                    out.refs += 1;
                    if let Some(t) = out.msgs.as_mut() {
                        t.push(PageMsg::DedupRef { idx, source });
                    }
                }
                PageAction::Skip => out.skipped += 1,
            }
        }
        self.obs_pages(
            "engine_scan_pages_total",
            &[
                ("full", out.full),
                ("checksum", out.checksums),
                ("dedup_ref", out.refs),
                ("skipped", out.skipped),
                ("zero", out.zeros),
            ],
        );
        out
    }

    /// The parallel first-round scan — bit-identical to
    /// [`MigrationEngine::scan_sequential`] for any thread count.
    ///
    /// The image splits into `threads` contiguous page ranges. Phase A
    /// classifies each range concurrently with [`Strategy::preclassify`],
    /// which depends only on `(idx, digest)` — never on what was sent
    /// earlier — recording per-shard outcomes in page order plus a
    /// per-shard first-occurrence map over the digests that would enter
    /// the dedup cache. Phase B merges those maps in range order, so each
    /// digest resolves to the *lowest* page index that inserts it — the
    /// page the sequential scan would have inserted first. Phase C then
    /// resolves `SendFull` candidates concurrently against the
    /// pre-existing cache and the merged map, which is exactly the state
    /// the sequential scan would have consulted: classification outcomes
    /// partition digests into disjoint classes (index hits always send
    /// checksums, dirty-tracking skips never insert, suppressed zeros
    /// never insert), so no candidate can race a checksum insert.
    fn scan_parallel<M: MemoryImage>(
        &self,
        vm: &M,
        strategy: &Strategy,
        sent: &mut DedupIndex,
        want_msgs: bool,
    ) -> ScanOutcome {
        let n = vm.page_count().as_u64();
        let shard_len = n.div_ceil(self.threads as u64).max(1);
        let ranges: Vec<(u64, u64)> = (0..n)
            .step_by(shard_len as usize)
            .map(|lo| (lo, (lo + shard_len).min(n)))
            .collect();

        // Phase A: dedup-independent classification, one shard per thread.
        let shards: Vec<ShardScan> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|&(lo, hi)| {
                    scope.spawn(move |_| {
                        let mut shard = ShardScan {
                            skipped: 0,
                            records: Vec::with_capacity((hi - lo) as usize),
                            inserts: HashMap::new(),
                        };
                        for i in lo..hi {
                            let idx = PageIndex::new(i);
                            let digest = vm.page_digest(idx);
                            let action = strategy.preclassify(idx, digest);
                            if self.zero_suppression
                                && digest.is_zero_page()
                                && action != PageAction::Skip
                            {
                                shard.records.push(PreRecord::Zero(idx));
                                continue;
                            }
                            match action {
                                PageAction::SendFull => {
                                    shard.inserts.entry(digest).or_insert(idx);
                                    shard.records.push(PreRecord::Candidate(idx, digest));
                                }
                                PageAction::SendChecksum => {
                                    shard.inserts.entry(digest).or_insert(idx);
                                    shard.records.push(PreRecord::Checksum(idx, digest));
                                }
                                PageAction::Skip => shard.skipped += 1,
                                PageAction::SendDedupRef(_) => {
                                    unreachable!("preclassify never emits dedup refs")
                                }
                            }
                        }
                        shard
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scan worker panicked"))
                .collect()
        })
        .expect("scoped scan threads");

        // Phase B: merge shard maps in page order — the earliest range
        // holding a digest wins, which is the global minimum index.
        let mut round_min: HashMap<PageDigest, PageIndex> = HashMap::new();
        for shard in &shards {
            for (&digest, &idx) in &shard.inserts {
                round_min.entry(digest).or_insert(idx);
            }
        }

        // Phase C: resolve candidates against the dedup state, again one
        // shard per thread (both maps are now read-only).
        let dedup = strategy.dedup_enabled();
        let sent_view: &DedupIndex = sent;
        let round_min_view = &round_min;
        let resolved: Vec<(ScanOutcome, vecycle_obs::CounterShard)> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter()
                    .map(|shard| {
                        scope.spawn(move |_| {
                            let mut out = ScanOutcome::new(want_msgs);
                            let mut pages = vecycle_obs::CounterShard::default();
                            out.skipped = shard.skipped;
                            if shard.skipped > 0 {
                                pages.inc(
                                    "engine_scan_pages_total",
                                    &[("class", "skipped")],
                                    shard.skipped,
                                );
                            }
                            for rec in &shard.records {
                                match *rec {
                                    PreRecord::Zero(idx) => {
                                        out.zeros += 1;
                                        pages.inc(
                                            "engine_scan_pages_total",
                                            &[("class", "zero")],
                                            1,
                                        );
                                        if let Some(t) = out.msgs.as_mut() {
                                            t.push(PageMsg::Zero { idx });
                                        }
                                    }
                                    PreRecord::Checksum(idx, digest) => {
                                        out.checksums += 1;
                                        pages.inc(
                                            "engine_scan_pages_total",
                                            &[("class", "checksum")],
                                            1,
                                        );
                                        if let Some(t) = out.msgs.as_mut() {
                                            t.push(PageMsg::Checksum { idx, digest });
                                        }
                                    }
                                    PreRecord::Candidate(idx, digest) => {
                                        // A prior sender of this content
                                        // (an earlier gang VM, or a lower
                                        // page of this image) turns the
                                        // candidate into a back-reference.
                                        let source = if dedup {
                                            sent_view.get(digest).or_else(|| {
                                                let first = round_min_view[&digest];
                                                (first < idx).then_some(first)
                                            })
                                        } else {
                                            None
                                        };
                                        match source {
                                            Some(source) => {
                                                out.refs += 1;
                                                pages.inc(
                                                    "engine_scan_pages_total",
                                                    &[("class", "dedup_ref")],
                                                    1,
                                                );
                                                if let Some(t) = out.msgs.as_mut() {
                                                    t.push(PageMsg::DedupRef { idx, source });
                                                }
                                            }
                                            None => {
                                                out.full += 1;
                                                pages.inc(
                                                    "engine_scan_pages_total",
                                                    &[("class", "full")],
                                                    1,
                                                );
                                                if let Some(t) = out.msgs.as_mut() {
                                                    t.push(PageMsg::Full {
                                                        idx,
                                                        digest,
                                                        bytes: vm
                                                            .page_bytes(idx)
                                                            .map(|b| b.to_vec().into_boxed_slice()),
                                                    });
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                            (out, pages)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("resolve worker panicked"))
                    .collect()
            })
            .expect("scoped resolve threads");

        // Phase D: concatenate shard outcomes in page order and commit
        // this round's first-senders to the shared dedup cache (existing
        // entries — earlier gang VMs — keep priority, as they did when
        // the sequential scan inserted per page).
        let mut out = ScanOutcome::new(want_msgs);
        for (part, pages) in resolved {
            out.merge(part);
            // Counter addition commutes, so absorbing the per-worker
            // shards in range order yields the same totals the sequential
            // scan records — snapshots stay bit-identical across thread
            // counts.
            self.metrics.absorb(pages);
        }
        for (&digest, &idx) in &round_min {
            sent.insert_first(digest, idx);
        }
        out
    }

    /// Wire size of one full-page message after optional compression.
    fn full_page_wire_size(&self) -> Bytes {
        match self.compression {
            Some(c) => {
                let payload = c.compress(Bytes::new(vecycle_types::PAGE_SIZE));
                Bytes::new(wire::MSG_HEADER + wire::CHECKSUM_SIZE) + payload
            }
            None => wire::full_page_msg(),
        }
    }

    /// Wire size of one *re-sent* full page (rounds ≥ 2 and the final
    /// flush): XBZRLE delta-encodes against the cached previous version
    /// when enabled, otherwise the (possibly compressed) full-page size.
    fn resend_page_wire_size(&self) -> Bytes {
        match self.xbzrle {
            Some(x) => {
                Bytes::new(wire::MSG_HEADER + wire::CHECKSUM_SIZE)
                    + x.resend_bytes(Bytes::new(vecycle_types::PAGE_SIZE))
            }
            None => self.full_page_wire_size(),
        }
    }

    fn stop_and_copy(
        &self,
        dirty_full: u64,
        dirty_zeros: u64,
        forward: &mut TrafficLedger,
        link: LinkSpec,
    ) -> SimDuration {
        // The final flush re-sends pages already transferred once, so
        // XBZRLE applies here as well; zero-page suppression does too —
        // a guest that zeroes pages during the last round pays 13-byte
        // markers, not full pages, exactly as in the copy rounds.
        let page_msg = self.resend_page_wire_size();
        self.rec_many(
            forward,
            "forward",
            TrafficCategory::FullPages,
            dirty_full,
            page_msg,
        );
        self.rec_many(
            forward,
            "forward",
            TrafficCategory::ZeroMarkers,
            dirty_zeros,
            wire::zero_page_msg(),
        );
        self.rec(
            forward,
            "forward",
            TrafficCategory::Control,
            Bytes::new(wire::MSG_HEADER),
        );
        self.obs_pages(
            "engine_stop_copy_pages_total",
            &[("full", dirty_full), ("zero", dirty_zeros)],
        );
        let bytes = page_msg * dirty_full + wire::zero_page_msg() * dirty_zeros;
        // Pause, flush the residue, hand over execution: one transfer
        // plus the resume handshake.
        link.transfer_time(bytes).saturating_add(link.round_trip())
    }

    /// Records traffic in a ledger *and* in the engine-side
    /// `engine_wire_*` counters in one step, so the two accountings
    /// cannot drift apart at a call site. [`vecycle_net::observe_ledger`]
    /// later exports the finished ledger into the independent `net_wire_*`
    /// family; the invariant suite reconciles the two.
    fn rec(
        &self,
        ledger: &mut TrafficLedger,
        direction: &'static str,
        category: TrafficCategory,
        bytes: Bytes,
    ) {
        ledger.record(category, bytes);
        self.obs_wire(direction, category, 1, bytes);
    }

    /// Bulk form of [`MigrationEngine::rec`]: `count` messages of `size`
    /// bytes each.
    fn rec_many(
        &self,
        ledger: &mut TrafficLedger,
        direction: &'static str,
        category: TrafficCategory,
        count: u64,
        size: Bytes,
    ) {
        ledger.record_many(category, count, size);
        self.obs_wire(direction, category, count, size * count);
    }

    /// Bumps the engine-side wire counters; zero-message records are
    /// skipped so the series set stays minimal (and matches the skip rule
    /// of [`vecycle_net::observe_ledger`]).
    fn obs_wire(&self, direction: &str, category: TrafficCategory, messages: u64, bytes: Bytes) {
        if messages == 0 && bytes == Bytes::ZERO {
            return;
        }
        let labels = [("direction", direction), ("kind", category.label())];
        self.metrics
            .inc("engine_wire_bytes_total", &labels, bytes.as_u64());
        self.metrics
            .inc("engine_wire_messages_total", &labels, messages);
    }

    /// Bumps one `{class}`-labelled page counter per nonzero class.
    fn obs_pages(&self, name: &str, classes: &[(&str, u64)]) {
        for &(class, count) in classes {
            if count > 0 {
                self.metrics.inc(name, &[("class", class)], count);
            }
        }
    }

    /// Opens the `migration` root span and counts the attempt.
    fn obs_migration_start(&self, mode: &'static str, strategy: &Strategy) -> SpanId {
        let name = strategy.name().to_string();
        let labels = [("mode", mode), ("strategy", name.as_str())];
        self.metrics.inc("engine_migrations_total", &labels, 1);
        self.metrics.span_start("migration", &labels)
    }

    /// Closes the migration span with summary attributes, feeds the
    /// per-migration histograms, and exports the completed ledgers to the
    /// `net_wire_*` counter families — the second, independent accounting
    /// of the same traffic.
    fn obs_migration_end(&self, span: SpanId, report: &MigrationReport) {
        vecycle_net::observe_ledger(&self.metrics, "forward", report.forward_ledger());
        vecycle_net::observe_ledger(&self.metrics, "reverse", report.reverse_ledger());
        self.metrics.observe(
            "engine_migration_rounds",
            &[],
            layouts::ROUNDS,
            report.rounds().len() as u64,
        );
        self.metrics.observe(
            "engine_downtime_sim_millis",
            &[],
            layouts::SIM_MILLIS,
            report.downtime().as_nanos() / 1_000_000,
        );
        self.metrics.span_end(
            span,
            &[
                ("rounds", report.rounds().len() as u64),
                ("forward_bytes", report.source_traffic().as_u64()),
                ("downtime_ns", report.downtime().as_nanos()),
            ],
        );
    }

    /// Closes the migration span for an attempt a fault killed, leaving
    /// an `engine_abort` event carrying the wreckage counts. The aborted
    /// attempt's landed bytes stay in the `engine_wire_*` counters but
    /// never reach `net_wire_*` (no completed ledger) — the difference
    /// between the families is exactly the wasted wire traffic.
    fn obs_abort(&self, span: SpanId, round: u32, wreck: &AbortedTransfer) {
        self.metrics.inc("engine_aborts_total", &[], 1);
        self.metrics.event(
            "engine_abort",
            &[
                ("round", FieldValue::from(u64::from(round))),
                (
                    "landed_pages",
                    FieldValue::from(wreck.landed_pages().as_u64()),
                ),
                ("traffic_bytes", FieldValue::from(wreck.traffic.as_u64())),
            ],
        );
        self.metrics.span_end(span, &[("aborted", 1)]);
    }

    /// Counts a freshly drained dirty set.
    fn obs_dirty(&self, dirty: &[PageIndex]) {
        if !dirty.is_empty() {
            self.metrics
                .inc("engine_dirty_pages_total", &[], dirty.len() as u64);
        }
    }

    /// Emits one completed round: a `round` span with one `page_class`
    /// child span per nonzero class, plus the per-round histograms.
    fn obs_round(&self, report: &RoundReport) {
        let round = report.round.to_string();
        let span = self
            .metrics
            .span_start("round", &[("round", round.as_str())]);
        for (class, pages) in [
            ("full", report.full_pages),
            ("checksum", report.checksum_pages),
            ("dedup_ref", report.dedup_refs),
            ("skipped", report.skipped_pages),
            ("zero", report.zero_pages),
        ] {
            if pages == PageCount::ZERO {
                continue;
            }
            let child = self.metrics.span_start("page_class", &[("class", class)]);
            self.metrics.span_end(child, &[("pages", pages.as_u64())]);
        }
        self.metrics.span_end(
            span,
            &[
                ("bytes", report.bytes_sent.as_u64()),
                ("sim_ns", report.duration.as_nanos()),
            ],
        );
        self.metrics.observe(
            "engine_round_bytes",
            &[],
            layouts::BYTES,
            report.bytes_sent.as_u64(),
        );
        self.metrics.observe(
            "engine_round_sim_millis",
            &[],
            layouts::SIM_MILLIS,
            report.duration.as_nanos() / 1_000_000,
        );
    }

    /// The link a given round experiences under the attempt's faults: a
    /// `LinkDegrade` fault multiplies bandwidth by its factor from its
    /// onset round onward. Clean attempts always see the engine's link.
    fn link_for_round(&self, round: u32, faults: &AttemptFaults) -> LinkSpec {
        match faults.degrade {
            Some((factor, from_round)) if round >= from_round => self
                .link
                .with_bandwidth(BytesPerSec::new(self.link.bandwidth().as_f64() * factor)),
            _ => self.link,
        }
    }
}

/// The workload-advance time for a round under a possible dirty-spike
/// fault: from the spike's onset round the guest dirties memory as if
/// `factor`× the round duration had elapsed. Clean attempts (and rounds
/// before the onset) pass the duration through untouched, bit-exactly.
fn spiked_duration(faults: &AttemptFaults, round: u32, duration: SimDuration) -> SimDuration {
    match faults.dirty_spike {
        Some((factor, from_round)) if round >= from_round && factor > 1.0 => {
            SimDuration::from_secs_f64(duration.as_secs_f64() * factor)
        }
        _ => duration,
    }
}

/// What one first-round scan produced: per-action page counts and, when
/// a transcript was requested, the ordered message stream.
struct ScanOutcome {
    full: u64,
    checksums: u64,
    refs: u64,
    skipped: u64,
    zeros: u64,
    msgs: Option<Vec<PageMsg>>,
}

impl ScanOutcome {
    fn new(want_msgs: bool) -> Self {
        ScanOutcome {
            full: 0,
            checksums: 0,
            refs: 0,
            skipped: 0,
            zeros: 0,
            msgs: want_msgs.then(Vec::new),
        }
    }

    /// Appends a later shard's outcome (shards arrive in page order).
    fn merge(&mut self, part: ScanOutcome) {
        self.full += part.full;
        self.checksums += part.checksums;
        self.refs += part.refs;
        self.skipped += part.skipped;
        self.zeros += part.zeros;
        if let (Some(acc), Some(msgs)) = (self.msgs.as_mut(), part.msgs) {
            acc.extend(msgs);
        }
    }
}

/// Phase-A result for one contiguous page range of the parallel scan.
struct ShardScan {
    /// Dirty-tracking skips (count only; they emit nothing).
    skipped: u64,
    /// Non-skipped pages in range order, awaiting dedup resolution.
    records: Vec<PreRecord>,
    /// Digest → lowest in-range page that would insert it into the dedup
    /// cache (both full-page candidates and checksum announcements).
    inserts: HashMap<PageDigest, PageIndex>,
}

/// A page's dedup-independent classification, before `SendFull`
/// candidates are resolved into full pages or back-references.
enum PreRecord {
    /// Suppressed all-zero page.
    Zero(PageIndex),
    /// Checkpoint-index hit: sends a checksum message unconditionally.
    Checksum(PageIndex, PageDigest),
    /// Would send in full; may become a dedup ref in phase C.
    Candidate(PageIndex, PageDigest),
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecycle_mem::{
        workload::{IdleWorkload, SilentWorkload},
        DigestMemory, PageContent,
    };

    fn mem(mib: u64, seed: u64) -> DigestMemory {
        DigestMemory::with_uniform_content(Bytes::from_mib(mib), seed).unwrap()
    }

    #[test]
    fn full_migration_sends_whole_ram() {
        let vm = mem(16, 1);
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        let r = engine.migrate(&vm, Strategy::full()).unwrap();
        assert_eq!(r.pages_sent_full(), vm.page_count());
        // Traffic is RAM plus per-page framing.
        assert!(r.source_traffic() > vm.ram_size());
        let overhead = r.source_traffic().as_f64() / vm.ram_size().as_f64();
        assert!(overhead < 1.01, "framing overhead too large: {overhead}");
        assert_eq!(r.reverse_traffic(), Bytes::ZERO);
    }

    #[test]
    fn identical_checkpoint_reduces_traffic_by_two_orders() {
        let vm = mem(16, 1);
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        let r = engine
            .migrate(&vm, Strategy::vecycle(&vm.snapshot()))
            .unwrap();
        assert_eq!(r.pages_sent_full(), PageCount::ZERO);
        assert_eq!(r.pages_reused(), vm.page_count());
        // 28 bytes replace 4124: ~99% reduction (paper: 1 GB -> 15 MB).
        let frac = r.traffic_fraction_of_ram().as_f64();
        assert!(frac < 0.01, "fraction = {frac}");
    }

    #[test]
    fn lan_times_match_figure_6() {
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        // Full migration of 1 GiB: "around 10 seconds".
        let vm1 = mem(1024, 2);
        let full = engine.migrate(&vm1, Strategy::full()).unwrap();
        let t = full.total_time().as_secs_f64();
        assert!(t > 8.0 && t < 11.0, "full 1 GiB took {t}");
        // VeCycle on an idle VM: checksum-rate bound, ~3 s.
        let re = engine
            .migrate(&vm1, Strategy::vecycle(&vm1.snapshot()))
            .unwrap();
        let t = re.total_time().as_secs_f64();
        assert!(t > 2.5 && t < 3.5, "vecycle 1 GiB took {t}");
    }

    #[test]
    fn wan_reduction_is_dramatic() {
        let engine = MigrationEngine::new(LinkSpec::wan_cloudnet());
        let vm = mem(1024, 3);
        let full = engine.migrate(&vm, Strategy::full()).unwrap();
        let re = engine
            .migrate(&vm, Strategy::vecycle(&vm.snapshot()))
            .unwrap();
        // Paper: 177 s -> 16 s for 1 GiB.
        let tf = full.total_time().as_secs_f64();
        let tr = re.total_time().as_secs_f64();
        assert!(tf > 150.0, "full WAN took {tf}");
        assert!(tr < 25.0, "vecycle WAN took {tr}");
    }

    #[test]
    fn dedup_reduces_traffic_on_duplicated_memory() {
        // Half the pages duplicate the other half.
        let mut vm = mem(8, 4);
        let n = vm.page_count().as_u64();
        for i in 0..n / 2 {
            vm.relocate_page(PageIndex::new(i), PageIndex::new(i + n / 2));
        }
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        let full = engine.migrate(&vm, Strategy::full()).unwrap();
        let dedup = engine.migrate(&vm, Strategy::dedup()).unwrap();
        assert!(dedup.source_traffic().as_f64() < full.source_traffic().as_f64() * 0.55);
        let r = dedup.rounds()[0].dedup_refs;
        assert_eq!(r, PageCount::new(n / 2));
    }

    #[test]
    fn partial_overlap_scales_traffic() {
        // 25% of pages changed since checkpoint: traffic ≈ 25% of full.
        let vm0 = mem(16, 5);
        let mut vm = vm0.snapshot();
        let n = vm.page_count().as_u64();
        for i in 0..n / 4 {
            vm.write_page(PageIndex::new(i * 4), PageContent::ContentId(1 << 50 | i));
        }
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        let r = engine.migrate(&vm, Strategy::vecycle(&vm0)).unwrap();
        let frac = r.traffic_fraction_of_ram().as_f64();
        assert!((frac - 0.25).abs() < 0.02, "fraction = {frac}");
    }

    #[test]
    fn live_migration_with_idle_workload_converges() {
        let mut guest = Guest::new(mem(8, 6));
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        let mut wl = IdleWorkload::new(7, 50.0);
        let r = engine
            .migrate_live(&mut guest, &mut wl, Strategy::full())
            .unwrap();
        assert!(!r.rounds().is_empty());
        assert!(r.downtime() <= SimDuration::from_millis(400));
        // All of RAM went over plus the dirty residue.
        assert!(r.pages_sent_full() >= guest.page_count());
    }

    #[test]
    fn live_migration_silent_workload_is_single_round() {
        let mut guest = Guest::new(mem(4, 8));
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        let r = engine
            .migrate_live(&mut guest, &mut SilentWorkload, Strategy::full())
            .unwrap();
        assert_eq!(r.rounds().len(), 1);
        assert_eq!(r.pages_sent_full(), guest.page_count());
    }

    #[test]
    fn round_limit_bounds_busy_guests() {
        let mut guest = Guest::new(mem(4, 9));
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit()).with_max_rounds(3);
        // Very hot workload that would never converge.
        let mut wl = IdleWorkload::new(10, 200_000.0);
        let r = engine
            .migrate_live(&mut guest, &mut wl, Strategy::full())
            .unwrap();
        assert!(r.rounds().len() <= 3);
        assert!(r.downtime() > SimDuration::ZERO);
    }

    #[test]
    fn per_page_protocol_is_slower_but_skips_bulk_exchange() {
        let vm = mem(16, 11);
        let cp = vm.snapshot();
        let bulk = MigrationEngine::new(LinkSpec::wan_cloudnet());
        let perpage = MigrationEngine::new(LinkSpec::wan_cloudnet())
            .with_exchange(ExchangeProtocol::PerPage { pipeline_depth: 16 });
        let rb = bulk.migrate(&vm, Strategy::vecycle(&cp)).unwrap();
        let rp = perpage.migrate(&vm, Strategy::vecycle(&cp)).unwrap();
        assert!(rp.total_time() > rb.total_time() * 5);
        assert!(!rb.setup().exchange_bytes.is_zero());
        assert!(rp.setup().exchange_bytes.is_zero());
    }

    #[test]
    fn xbzrle_shrinks_resend_rounds() {
        let run = |engine: MigrationEngine| {
            let mut guest = Guest::new(mem(8, 40));
            let mut wl = IdleWorkload::new(41, 30_000.0);
            engine
                .migrate_live(&mut guest, &mut wl, Strategy::full())
                .unwrap()
        };
        // A 1 ms downtime target forces genuine re-send rounds.
        let plain = run(MigrationEngine::new(LinkSpec::lan_gigabit())
            .with_max_rounds(4)
            .with_max_downtime(SimDuration::from_millis(1)));
        let xb = run(MigrationEngine::new(LinkSpec::lan_gigabit())
            .with_max_rounds(4)
            .with_max_downtime(SimDuration::from_millis(1))
            .with_xbzrle(Xbzrle::new(0.9, 0.1)));
        // Round 1 is identical; later rounds carry deltas instead of
        // full pages.
        assert!(xb.source_traffic() < plain.source_traffic());
        assert_eq!(xb.rounds()[0].bytes_sent, plain.rounds()[0].bytes_sent);
        if xb.rounds().len() > 1 && plain.rounds().len() > 1 {
            let per_page_xb = xb.rounds()[1].bytes_sent.as_f64()
                / xb.rounds()[1].full_pages.as_u64().max(1) as f64;
            let per_page_plain = plain.rounds()[1].bytes_sent.as_f64()
                / plain.rounds()[1].full_pages.as_u64().max(1) as f64;
            assert!(per_page_xb < per_page_plain * 0.3);
        }
    }

    #[test]
    fn similarity_estimator_tracks_truth() {
        let base = mem(16, 42);
        let mut vm = base.snapshot();
        let n = vm.page_count().as_u64();
        for i in 0..n / 2 {
            vm.write_page(PageIndex::new(i * 2), PageContent::ContentId((1 << 59) | i));
        }
        let index = vecycle_checkpoint::ChecksumIndex::build(base.digests());
        let est = MigrationEngine::estimate_similarity(&vm, &index, 512).as_f64();
        assert!((est - 0.5).abs() < 0.1, "estimate = {est}");
        // Extremes.
        assert_eq!(
            MigrationEngine::estimate_similarity(&base, &index, 64).as_f64(),
            1.0
        );
    }

    #[test]
    #[should_panic(expected = "xbzrle parameters")]
    fn invalid_xbzrle_panics() {
        let _ = Xbzrle::new(1.5, 0.1);
    }

    #[test]
    fn gang_migration_dedups_across_vms() {
        // Two VMs sharing most content (e.g. same guest OS image).
        let a = mem(8, 30);
        let mut b = a.snapshot();
        let n = b.page_count().as_u64();
        for i in 0..n / 10 {
            b.write_page(PageIndex::new(i), PageContent::ContentId((1 << 55) | i));
        }
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        let gang = engine
            .migrate_gang(&[&a, &b], &[Strategy::dedup(), Strategy::dedup()])
            .unwrap();
        let solo_b = engine.migrate(&b, Strategy::dedup()).unwrap();
        // Solo, B sends nearly everything; in the gang, 90% of B's pages
        // were already sent by A and collapse to references.
        assert!(gang[1].source_traffic().as_f64() < solo_b.source_traffic().as_f64() * 0.2);
        // A itself pays full price either way.
        let solo_a = engine.migrate(&a, Strategy::dedup()).unwrap();
        assert_eq!(gang[0].source_traffic(), solo_a.source_traffic());
    }

    #[test]
    fn gang_without_dedup_gains_nothing() {
        let a = mem(4, 31);
        let b = a.snapshot();
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        let gang = engine
            .migrate_gang(&[&a, &b], &[Strategy::full(), Strategy::full()])
            .unwrap();
        let solo = engine.migrate(&b, Strategy::full()).unwrap();
        assert_eq!(gang[1].source_traffic(), solo.source_traffic());
    }

    #[test]
    fn gang_combines_per_vm_checkpoints_with_shared_dedup() {
        // Each VM has its own checkpoint at the destination *and* the
        // gang shares a dedup cache: novel-but-shared content crosses
        // once.
        let a0 = mem(4, 33);
        let mut a1 = a0.snapshot();
        let b0 = mem(4, 34);
        let mut b1 = b0.snapshot();
        let n = a1.page_count().as_u64();
        // Both VMs gain the *same* novel content (e.g. a software
        // update applied to both).
        for i in 0..n / 4 {
            let content = PageContent::ContentId((1 << 53) | i);
            a1.write_page(PageIndex::new(i), content);
            b1.write_page(PageIndex::new(i), content);
        }
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        let strategies = vec![
            Strategy::vecycle(&a0).with_dedup(),
            Strategy::vecycle(&b0).with_dedup(),
        ];
        let gang = engine.migrate_gang(&[&a1, &b1], &strategies).unwrap();
        // VM a pays for the novel quarter once...
        assert_eq!(gang[0].pages_sent_full(), PageCount::new(n / 4));
        // ...and VM b references it all: zero full pages.
        assert_eq!(gang[1].pages_sent_full(), PageCount::ZERO);
        assert_eq!(gang[1].rounds()[0].dedup_refs, PageCount::new(n / 4));
    }

    #[test]
    fn gang_validates_inputs() {
        let a = mem(4, 32);
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        assert!(engine.migrate_gang::<DigestMemory>(&[], &[]).is_err());
        assert!(engine.migrate_gang(&[&a], &[]).is_err());
    }

    #[test]
    fn empty_image_is_rejected() {
        let vm = DigestMemory::zeroed(PageCount::ZERO);
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        assert!(engine.migrate(&vm, Strategy::full()).is_err());
    }

    #[test]
    fn zero_pages_are_suppressed_by_default() {
        // A freshly booted guest is mostly zeros; QEMU (and thus the
        // baseline) ships markers, not pages.
        let vm = DigestMemory::zeroed(PageCount::new(1024));
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        let r = engine.migrate(&vm, Strategy::full()).unwrap();
        assert_eq!(r.pages_sent_full(), PageCount::ZERO);
        assert_eq!(r.zero_pages(), PageCount::new(1024));
        assert!(r.source_traffic() < Bytes::from_kib(16));
    }

    #[test]
    fn zero_suppression_can_be_disabled() {
        let vm = DigestMemory::zeroed(PageCount::new(256));
        let engine =
            MigrationEngine::new(LinkSpec::lan_gigabit()).with_zero_page_suppression(false);
        let r = engine.migrate(&vm, Strategy::full()).unwrap();
        assert_eq!(r.pages_sent_full(), PageCount::new(256));
        assert_eq!(r.zero_pages(), PageCount::ZERO);
    }

    #[test]
    fn zero_marker_beats_checksum_message_under_vecycle() {
        // Zero pages present in the checkpoint could go as 28-byte
        // checksum messages; the 13-byte marker wins instead.
        let vm = DigestMemory::zeroed(PageCount::new(128));
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        let r = engine
            .migrate(&vm, Strategy::vecycle(&vm.snapshot()))
            .unwrap();
        assert_eq!(r.zero_pages(), PageCount::new(128));
        assert_eq!(r.pages_reused(), PageCount::ZERO);
    }

    #[test]
    fn compression_shrinks_traffic() {
        let vm = mem(16, 20);
        let plain = MigrationEngine::new(LinkSpec::lan_gigabit());
        let compressed = MigrationEngine::new(LinkSpec::lan_gigabit()).with_compression(
            DeltaCompression::new(0.5, vecycle_types::BytesPerSec::from_mib_per_sec(800)),
        );
        let rp = plain.migrate(&vm, Strategy::full()).unwrap();
        let rc = compressed.migrate(&vm, Strategy::full()).unwrap();
        assert!(rc.source_traffic().as_f64() < rp.source_traffic().as_f64() * 0.55);
        assert_eq!(rc.pages_sent_full(), rp.pages_sent_full());
    }

    #[test]
    fn slow_compressor_becomes_the_bottleneck() {
        let vm = mem(64, 21);
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit()).with_compression(
            DeltaCompression::new(0.9, vecycle_types::BytesPerSec::from_mib_per_sec(30)),
        );
        let r = engine.migrate(&vm, Strategy::full()).unwrap();
        // 64 MiB at 30 MiB/s ≈ 2.1 s of compression vs ~0.5 s of wire.
        assert!(r.total_time().as_secs_f64() > 2.0);
    }

    #[test]
    #[should_panic(expected = "compression ratio")]
    fn invalid_compression_ratio_panics() {
        let _ = DeltaCompression::new(0.0, vecycle_types::BytesPerSec::from_mib_per_sec(100));
    }

    #[test]
    fn setup_is_excluded_from_migration_time() {
        let vm = mem(64, 12);
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        let r = engine
            .migrate(&vm, Strategy::vecycle(&vm.snapshot()))
            .unwrap();
        assert!(r.setup().total() > SimDuration::ZERO);
        assert!(r.setup().checkpoint_read > SimDuration::ZERO);
        // total_time must not include the setup term.
        let rounds_plus_down: SimDuration =
            r.rounds().iter().map(|x| x.duration).sum::<SimDuration>() + r.downtime();
        assert_eq!(r.total_time(), rounds_plus_down);
    }

    /// Rewrites pages `0..k` with *fixed* content ids every advance: the
    /// pages are dirtied, but their digests never change.
    struct RewriteSameContent {
        k: u64,
    }

    impl<M: MutableMemory> GuestWorkload<M> for RewriteSameContent {
        fn advance(&mut self, guest: &mut Guest<M>, _dur: SimDuration) {
            for i in 0..self.k {
                let idx = PageIndex::new(i);
                guest.write_page(idx, PageContent::ContentId(1_000 + i));
            }
        }
    }

    #[test]
    fn live_vecycle_resends_known_content_as_checksums() {
        // Pin pages 0..100 to known content, checkpoint, then keep
        // rewriting those pages with the *same* content during the
        // migration. The destination's checkpoint holds every re-dirtied
        // page, so rounds ≥ 2 must collapse to 28-byte checksum
        // messages — not full pages.
        let mut image = mem(8, 60);
        for i in 0..100 {
            image.write_page(PageIndex::new(i), PageContent::ContentId(1_000 + i));
        }
        let cp = image.snapshot();
        let mut guest = Guest::new(image);
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit())
            .with_max_rounds(3)
            .with_max_downtime(SimDuration::from_millis(1));
        let mut wl = RewriteSameContent { k: 100 };
        let r = engine
            .migrate_live(&mut guest, &mut wl, Strategy::vecycle(&cp))
            .unwrap();
        assert!(r.rounds().len() >= 2, "workload must force resend rounds");
        for round in &r.rounds()[1..] {
            assert_eq!(round.full_pages, PageCount::ZERO, "round {}", round.round);
            assert_eq!(
                round.checksum_pages,
                PageCount::new(100),
                "round {}",
                round.round
            );
            // 100 × 28-byte checksum messages, nothing else.
            assert_eq!(round.bytes_sent, wire::checksum_msg() * 100);
        }
    }

    /// Zeroes pages `0..k` on every advance.
    struct ZeroingWorkload {
        k: u64,
    }

    impl<M: MutableMemory> GuestWorkload<M> for ZeroingWorkload {
        fn advance(&mut self, guest: &mut Guest<M>, _dur: SimDuration) {
            for i in 0..self.k {
                guest.write_page(PageIndex::new(i), PageContent::ContentId(0));
            }
        }
    }

    #[test]
    fn stop_and_copy_suppresses_zero_residue() {
        // The guest zeroes 512 pages during round 1; with a single round
        // allowed, that residue goes through stop-and-copy. Suppressed,
        // it is 512 × 13-byte markers; unsuppressed it would be
        // 512 × 4 KiB pages — more than two milliseconds on gigabit.
        let run = |suppress: bool| {
            let mut guest = Guest::new(mem(8, 61));
            let engine = MigrationEngine::new(LinkSpec::lan_gigabit())
                .with_max_rounds(1)
                .with_zero_page_suppression(suppress);
            engine
                .migrate_live(
                    &mut guest,
                    &mut ZeroingWorkload { k: 512 },
                    Strategy::full(),
                )
                .unwrap()
        };
        let suppressed = run(true);
        let unsuppressed = run(false);
        assert!(suppressed.downtime() < unsuppressed.downtime());
        // Residue bytes: 512 markers ≪ one full page.
        let marker_bytes = wire::zero_page_msg() * 512;
        let budget = LinkSpec::lan_gigabit()
            .transfer_time(marker_bytes + wire::full_page_msg())
            .saturating_add(LinkSpec::lan_gigabit().round_trip());
        assert!(
            suppressed.downtime() <= budget,
            "downtime {:?} exceeds zero-marker budget {:?}",
            suppressed.downtime(),
            budget
        );
    }

    /// Dirties exactly `k` fresh-content pages per advance, independent
    /// of round duration.
    struct FixedDirtier {
        k: u64,
        next: u64,
    }

    impl<M: MutableMemory> GuestWorkload<M> for FixedDirtier {
        fn advance(&mut self, guest: &mut Guest<M>, _dur: SimDuration) {
            for i in 0..self.k {
                let idx = PageIndex::new(i);
                guest.write_page(idx, PageContent::ContentId((1 << 62) | self.next));
                self.next += 1;
            }
        }
    }

    #[test]
    fn downtime_budget_uses_actual_resend_size() {
        // 1 ms on gigabit fits ~30 uncompressed full-page messages but
        // hundreds of XBZRLE deltas. A constant 100-page dirty set
        // therefore never converges with plain resends, yet fits the
        // final round immediately once deltas shrink the residue — the
        // budget division must use the active per-page wire size, not
        // the uncompressed one.
        let run = |engine: MigrationEngine| {
            let mut guest = Guest::new(mem(8, 62));
            let mut wl = FixedDirtier { k: 100, next: 0 };
            engine
                .migrate_live(&mut guest, &mut wl, Strategy::full())
                .unwrap()
        };
        let base = MigrationEngine::new(LinkSpec::lan_gigabit())
            .with_max_rounds(6)
            .with_max_downtime(SimDuration::from_millis(1));
        let plain = run(base.clone());
        let xb = run(base.with_xbzrle(Xbzrle::new(0.95, 0.02)));
        assert_eq!(plain.rounds().len(), 6, "plain resends can never fit 1 ms");
        assert_eq!(
            xb.rounds().len(),
            1,
            "100 deltas fit the downtime budget without extra rounds"
        );
        assert!(xb.downtime() <= SimDuration::from_millis(1));
    }

    #[test]
    fn parallel_scan_is_bit_identical_to_sequential() {
        // A workload mixing every message class: checkpoint hits
        // (checksums), fresh content (full pages), duplicated fresh
        // content (dedup refs), and zero pages.
        let base = mem(8, 63);
        let mut vm = base.snapshot();
        let n = vm.page_count().as_u64();
        for i in 0..n / 4 {
            vm.write_page(
                PageIndex::new(i * 2),
                PageContent::ContentId((1 << 48) | (i % 64)),
            );
        }
        for i in 0..n / 16 {
            vm.write_page(PageIndex::new(i * 16 + 1), PageContent::ContentId(0));
        }
        let strategies: Vec<Strategy> = vec![
            Strategy::full(),
            Strategy::dedup(),
            Strategy::vecycle(&base),
            Strategy::vecycle(&base).with_dedup(),
        ];
        for strategy in &strategies {
            let seq_engine = MigrationEngine::new(LinkSpec::lan_gigabit());
            let (seq_report, seq_transcript) = seq_engine
                .migrate_with_transcript(&vm, strategy.clone())
                .unwrap();
            for threads in [2, 3, 4, 8] {
                let par_engine =
                    MigrationEngine::new(LinkSpec::lan_gigabit()).with_threads(threads);
                let (par_report, par_transcript) = par_engine
                    .migrate_with_transcript(&vm, strategy.clone())
                    .unwrap();
                assert_eq!(
                    par_report,
                    seq_report,
                    "strategy {} threads {threads}",
                    strategy.name()
                );
                assert_eq!(
                    par_transcript,
                    seq_transcript,
                    "strategy {} threads {threads}",
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn parallel_gang_migration_matches_sequential() {
        // Gang migrations share the dedup cache across VMs; the parallel
        // scan must hand identical cross-VM back-references out.
        let a = mem(4, 64);
        let mut b = a.snapshot();
        let n = b.page_count().as_u64();
        for i in 0..n / 8 {
            b.write_page(PageIndex::new(i), PageContent::ContentId((1 << 52) | i));
        }
        let strategies = [Strategy::dedup(), Strategy::dedup()];
        let seq = MigrationEngine::new(LinkSpec::lan_gigabit())
            .migrate_gang(&[&a, &b], &strategies)
            .unwrap();
        for threads in [2, 4] {
            let par = MigrationEngine::new(LinkSpec::lan_gigabit())
                .with_threads(threads)
                .migrate_gang(&[&a, &b], &strategies)
                .unwrap();
            assert_eq!(par, seq, "threads {threads}");
        }
    }

    #[test]
    fn parallel_scan_handles_images_smaller_than_thread_count() {
        let vm = DigestMemory::with_distinct_content(PageCount::new(3), 9);
        let seq = MigrationEngine::new(LinkSpec::lan_gigabit())
            .migrate(&vm, Strategy::full())
            .unwrap();
        let par = MigrationEngine::new(LinkSpec::lan_gigabit())
            .with_threads(16)
            .migrate(&vm, Strategy::full())
            .unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    #[should_panic(expected = "at least one scan thread")]
    fn zero_threads_panics() {
        let _ = MigrationEngine::new(LinkSpec::lan_gigabit()).with_threads(0);
    }

    // ---- fault injection ----

    use vecycle_faults::DropPoint;

    #[test]
    fn clean_faulted_path_is_bit_identical_to_migrate_live() {
        // migrate_live delegates to the faulted path; a *separate* call
        // with AttemptFaults::none() must reproduce it exactly.
        let run = |faulted: bool| {
            let mut guest = Guest::new(mem(8, 70));
            let mut wl = IdleWorkload::new(71, 5_000.0);
            let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
            if faulted {
                match engine
                    .migrate_live_faulted(
                        &mut guest,
                        &mut wl,
                        Strategy::full(),
                        &AttemptFaults::none(),
                    )
                    .unwrap()
                {
                    LiveOutcome::Completed(r) => r,
                    LiveOutcome::Aborted(_) => panic!("clean attempt aborted"),
                }
            } else {
                engine
                    .migrate_live(&mut guest, &mut wl, Strategy::full())
                    .unwrap()
            }
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn link_cut_in_round_one_lands_a_strict_prefix() {
        let mut guest = Guest::new(mem(8, 72));
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        let faults = AttemptFaults {
            cut_after: Some(DropPoint::RamFraction(0.25)),
            ..AttemptFaults::none()
        };
        let outcome = engine
            .migrate_live_faulted(&mut guest, &mut SilentWorkload, Strategy::full(), &faults)
            .unwrap();
        let aborted = match outcome {
            LiveOutcome::Aborted(a) => a,
            LiveOutcome::Completed(_) => panic!("cut at 25% of RAM must abort"),
        };
        assert_eq!(aborted.cause, FaultCause::LinkFailure);
        let landed = aborted.landed_pages().as_u64();
        let total = guest.page_count().as_u64();
        assert!(landed > 0 && landed < total, "landed {landed}/{total}");
        // Landed pages form the prefix the wire walk reached.
        for (i, d) in aborted.landed.iter().enumerate() {
            assert_eq!(d.is_some(), (i as u64) < landed, "page {i}");
        }
        // The aborted attempt cost real traffic and time, but less than
        // a completed full migration would have.
        let clean = engine
            .migrate_live(
                &mut Guest::new(mem(8, 72)),
                &mut SilentWorkload,
                Strategy::full(),
            )
            .unwrap();
        assert!(aborted.traffic > Bytes::ZERO);
        assert!(aborted.traffic < clean.source_traffic());
        assert!(aborted.elapsed > SimDuration::ZERO);
        assert!(aborted.elapsed < clean.total_time());
    }

    #[test]
    fn landed_digests_match_guest_content() {
        let mut guest = Guest::new(mem(4, 73));
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        let faults = AttemptFaults {
            cut_after: Some(DropPoint::RamFraction(0.5)),
            ..AttemptFaults::none()
        };
        let outcome = engine
            .migrate_live_faulted(&mut guest, &mut SilentWorkload, Strategy::full(), &faults)
            .unwrap();
        let LiveOutcome::Aborted(aborted) = outcome else {
            panic!("expected abort");
        };
        for (i, d) in aborted.landed.iter().enumerate() {
            if let Some(d) = d {
                assert_eq!(*d, guest.page_digest(PageIndex::new(i as u64)));
            }
        }
    }

    #[test]
    fn cut_past_total_traffic_lets_the_migration_complete() {
        let mut guest = Guest::new(mem(4, 74));
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        // RamFraction clamps at 1.0, and framing pushes traffic past
        // RAM — pick an absolute byte cut far beyond any transfer.
        let faults = AttemptFaults {
            cut_after: Some(DropPoint::Bytes(Bytes::from_mib(64))),
            ..AttemptFaults::none()
        };
        let outcome = engine
            .migrate_live_faulted(&mut guest, &mut SilentWorkload, Strategy::full(), &faults)
            .unwrap();
        let LiveOutcome::Completed(with_cut) = outcome else {
            panic!("cut beyond total traffic must not trigger");
        };
        // And the surviving run is bit-identical to the clean one.
        let clean = engine
            .migrate_live(
                &mut Guest::new(mem(4, 74)),
                &mut SilentWorkload,
                Strategy::full(),
            )
            .unwrap();
        assert_eq!(with_cut, clean);
    }

    #[test]
    fn link_degrade_slows_later_rounds_only() {
        let run = |degrade: Option<(f64, u32)>| {
            let mut guest = Guest::new(mem(8, 75));
            let mut wl = IdleWorkload::new(76, 30_000.0);
            let engine = MigrationEngine::new(LinkSpec::lan_gigabit())
                .with_max_rounds(4)
                .with_max_downtime(SimDuration::from_millis(1));
            let faults = AttemptFaults {
                degrade,
                ..AttemptFaults::none()
            };
            match engine
                .migrate_live_faulted(&mut guest, &mut wl, Strategy::full(), &faults)
                .unwrap()
            {
                LiveOutcome::Completed(r) => r,
                LiveOutcome::Aborted(_) => panic!("degrade never aborts"),
            }
        };
        let clean = run(None);
        let degraded = run(Some((0.25, 2)));
        // Round 1 ran at full speed either way.
        assert_eq!(degraded.rounds()[0], clean.rounds()[0]);
        // The degraded run took longer overall.
        assert!(degraded.total_time() > clean.total_time());
    }

    #[test]
    fn dirty_spike_increases_resent_traffic() {
        let run = |spike: Option<(f64, u32)>| {
            let mut guest = Guest::new(mem(8, 77));
            let mut wl = IdleWorkload::new(78, 20_000.0);
            let engine = MigrationEngine::new(LinkSpec::lan_gigabit())
                .with_max_rounds(5)
                .with_max_downtime(SimDuration::from_millis(1));
            let faults = AttemptFaults {
                dirty_spike: spike,
                ..AttemptFaults::none()
            };
            match engine
                .migrate_live_faulted(&mut guest, &mut wl, Strategy::full(), &faults)
                .unwrap()
            {
                LiveOutcome::Completed(r) => r,
                LiveOutcome::Aborted(_) => panic!("spike never aborts"),
            }
        };
        let clean = run(None);
        let spiked = run(Some((8.0, 2)));
        assert!(spiked.source_traffic() > clean.source_traffic());
    }

    #[test]
    fn precopy_time_budget_forces_early_handover() {
        let run = |engine: MigrationEngine| {
            let mut guest = Guest::new(mem(8, 79));
            let mut wl = IdleWorkload::new(80, 200_000.0);
            engine
                .migrate_live(&mut guest, &mut wl, Strategy::full())
                .unwrap()
        };
        // A very hot guest and a 1 ms downtime target: without the guard
        // pre-copy burns all 30 rounds without ever converging.
        let unguarded = run(MigrationEngine::new(LinkSpec::lan_gigabit())
            .with_max_downtime(SimDuration::from_millis(1)));
        let guarded = run(MigrationEngine::new(LinkSpec::lan_gigabit())
            .with_max_downtime(SimDuration::from_millis(1))
            .with_precopy_time_budget(SimDuration::from_millis(500)));
        assert!(guarded.rounds().len() < unguarded.rounds().len());
        assert!(!guarded.converged(), "guard must report non-convergence");
        // Pre-copy stops soon after the budget: the round that crosses
        // the budget is the last one.
        let precopy: SimDuration = guarded.rounds().iter().map(|r| r.duration).sum();
        let before_last: SimDuration = guarded.rounds()[..guarded.rounds().len() - 1]
            .iter()
            .map(|r| r.duration)
            .sum();
        assert!(before_last < SimDuration::from_millis(500), "{before_last}");
        assert!(precopy >= SimDuration::from_millis(500) || guarded.rounds().len() == 30);
    }

    #[test]
    fn converged_run_reports_convergence() {
        let mut guest = Guest::new(mem(4, 81));
        let r = MigrationEngine::new(LinkSpec::lan_gigabit())
            .migrate_live(&mut guest, &mut SilentWorkload, Strategy::full())
            .unwrap();
        assert!(r.converged());
        assert_eq!(r.outcome(), crate::MigrationOutcome::Completed);
    }
}
