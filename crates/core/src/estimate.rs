//! Closed-form migration cost estimates.
//!
//! Operators deciding *whether* to migrate need the cost before running
//! anything. The engine's behaviour is simple enough to predict in
//! closed form from four quantities — RAM, checkpoint similarity, link,
//! checksum rate — and this module does so. Pages are priced through the
//! same [`WireCosts`] table the transfer pipeline charges against, so
//! the estimator cannot drift from the engine. It is also validated
//! end-to-end in its tests: predictions land within a few percent, which
//! doubles as a regression net for accidental engine changes.

use vecycle_host::CpuSpec;
use vecycle_net::LinkSpec;
use vecycle_types::{Bytes, Ratio, SimDuration};

use crate::WireCosts;

/// A predicted migration outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationEstimate {
    /// Predicted source → destination traffic.
    pub traffic: Bytes,
    /// Predicted migration time (first round + handshake; idle guest).
    pub time: SimDuration,
}

impl MigrationEstimate {
    /// Predicted traffic as a fraction of RAM.
    pub fn traffic_fraction(&self, ram: Bytes) -> Ratio {
        self.traffic.fraction_of(ram)
    }
}

/// Predicts a full (QEMU-baseline) migration of an idle guest.
///
/// `zero_fraction` is the share of all-zero pages (suppressed to
/// markers, as QEMU does).
///
/// # Panics
///
/// Panics if `zero_fraction` is not in `[0, 1]`.
pub fn estimate_full(ram: Bytes, zero_fraction: Ratio, link: LinkSpec) -> MigrationEstimate {
    assert!(zero_fraction.is_fraction(), "zero fraction out of range");
    let pages = ram.pages_ceil().as_u64();
    let zeros = (pages as f64 * zero_fraction.as_f64()).round() as u64;
    let full = pages - zeros;
    let costs = WireCosts::uncompressed();
    // One control trailer per round: the first round plus the empty
    // stop-and-copy flush.
    let traffic =
        costs.full_page() * full + costs.zero_marker() * zeros + costs.control_trailer() * 2;
    // One transfer, plus the stop-and-copy handshake (an empty final
    // flush still costs one link latency, then the resume round trip).
    let time = link
        .transfer_time(traffic)
        .saturating_add(link.latency())
        .saturating_add(link.round_trip());
    MigrationEstimate { traffic, time }
}

/// Predicts a VeCycle migration of an idle guest whose state overlaps
/// the destination checkpoint with the given `similarity` (the §2.1
/// unique-hash metric; the complement approximates the novel-page
/// fraction, per the paper's "reduced by a percentage equivalent to the
/// similarity" observation).
///
/// # Panics
///
/// Panics if a fraction argument is out of `[0, 1]`.
pub fn estimate_vecycle(
    ram: Bytes,
    similarity: Ratio,
    zero_fraction: Ratio,
    link: LinkSpec,
    cpu: &CpuSpec,
    algorithm: vecycle_hash::ChecksumAlgorithm,
) -> MigrationEstimate {
    assert!(similarity.is_fraction(), "similarity out of range");
    assert!(zero_fraction.is_fraction(), "zero fraction out of range");
    let pages = ram.pages_ceil().as_u64();
    let zeros = (pages as f64 * zero_fraction.as_f64()).round() as u64;
    let nonzero = pages - zeros;
    let reused = (nonzero as f64 * similarity.as_f64()).round() as u64;
    let novel = nonzero - reused;

    let costs = WireCosts::uncompressed();
    let traffic = costs.full_page() * novel
        + costs.checksum() * reused
        + costs.zero_marker() * zeros
        + costs.control_trailer() * 2;
    let network = link.transfer_time(traffic);
    // §3.4: the checksum pass over the whole image is the lower bound.
    let checksum = cpu.checksum_time(algorithm, ram);
    let time = network
        .max(checksum)
        .saturating_add(link.latency())
        .saturating_add(link.round_trip());
    MigrationEstimate { traffic, time }
}

/// The break-even similarity above which VeCycle beats a full migration
/// *in time* on the given link — below it, the checksum pass costs more
/// than the saved transfer (relevant on fast links, §3.4).
pub fn break_even_similarity(
    ram: Bytes,
    link: LinkSpec,
    cpu: &CpuSpec,
    algorithm: vecycle_hash::ChecksumAlgorithm,
) -> Option<Ratio> {
    let full = estimate_full(ram, Ratio::ZERO, link);
    // Binary-search the smallest similarity whose estimate beats full.
    let beats = |s: f64| {
        estimate_vecycle(ram, Ratio::new(s), Ratio::ZERO, link, cpu, algorithm).time < full.time
    };
    if !beats(1.0) {
        return None; // even a perfect checkpoint loses (hash-bound link)
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..40 {
        let mid = (lo + hi) / 2.0;
        if beats(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(Ratio::new(hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MigrationEngine, Strategy};
    use vecycle_hash::ChecksumAlgorithm;
    use vecycle_mem::{DigestMemory, MemoryImage, MutableMemory, PageContent};
    use vecycle_types::{BytesPerSec, PageIndex};

    fn diverged(base: &DigestMemory, novel_fraction: f64) -> DigestMemory {
        let mut vm = base.snapshot();
        let n = vm.page_count().as_u64();
        let k = (n as f64 * novel_fraction).round() as u64;
        for i in 0..k {
            vm.write_page(PageIndex::new(i), PageContent::ContentId((1 << 56) | i));
        }
        vm
    }

    #[test]
    fn estimates_match_engine_within_two_percent() {
        let ram = Bytes::from_mib(64);
        let base = DigestMemory::with_uniform_content(ram, 4).unwrap();
        let cpu = CpuSpec::phenom_ii();
        for link in [LinkSpec::lan_gigabit(), LinkSpec::wan_cloudnet()] {
            let engine = MigrationEngine::new(link);
            for novel in [0.0, 0.25, 0.5, 1.0] {
                let vm = diverged(&base, novel);
                let actual = engine.migrate(&vm, Strategy::vecycle(&base)).unwrap();
                let predicted = estimate_vecycle(
                    ram,
                    Ratio::new(1.0 - novel),
                    Ratio::ZERO,
                    link,
                    &cpu,
                    ChecksumAlgorithm::Md5,
                );
                let traffic_err = (predicted.traffic.as_f64() - actual.source_traffic().as_f64())
                    .abs()
                    / actual.source_traffic().as_f64();
                assert!(traffic_err < 0.02, "traffic err {traffic_err} at {novel}");
                let time_err = (predicted.time.as_secs_f64() - actual.total_time().as_secs_f64())
                    .abs()
                    / actual.total_time().as_secs_f64();
                assert!(time_err < 0.02, "time err {time_err} at {novel}");
            }
            // Full baseline too.
            let vm = diverged(&base, 0.3);
            let actual = engine.migrate(&vm, Strategy::full()).unwrap();
            let predicted = estimate_full(ram, Ratio::ZERO, link);
            let err = (predicted.time.as_secs_f64() - actual.total_time().as_secs_f64()).abs()
                / actual.total_time().as_secs_f64();
            assert!(err < 0.02, "full time err {err}");
        }
    }

    #[test]
    fn zero_fraction_shrinks_both_estimates() {
        let ram = Bytes::from_mib(256);
        let lan = LinkSpec::lan_gigabit();
        let some_zeros = estimate_full(ram, Ratio::new(0.3), lan);
        let no_zeros = estimate_full(ram, Ratio::ZERO, lan);
        assert!(some_zeros.traffic < no_zeros.traffic);
    }

    #[test]
    fn break_even_on_gigabit_is_low() {
        // On GbE, MD5 is 3x the wire: VeCycle wins even with modest
        // similarity.
        let cpu = CpuSpec::phenom_ii();
        let s = break_even_similarity(
            Bytes::from_gib(1),
            LinkSpec::lan_gigabit(),
            &cpu,
            ChecksumAlgorithm::Md5,
        )
        .expect("vecycle can win on GbE");
        assert!(s.as_f64() < 0.15, "break-even = {s}");
    }

    #[test]
    fn break_even_vanishes_on_ultra_fast_links() {
        // On a 40 GbE-class link, SHA-256 hashing is slower than just
        // sending: no similarity makes VeCycle faster.
        let cpu = CpuSpec::phenom_ii();
        let fat = LinkSpec::lan_gigabit().with_bandwidth(BytesPerSec::from_mib_per_sec(4800));
        assert!(
            break_even_similarity(Bytes::from_gib(1), fat, &cpu, ChecksumAlgorithm::Sha256,)
                .is_none()
        );
    }

    #[test]
    fn estimate_fraction_helper() {
        let ram = Bytes::from_gib(1);
        let e = estimate_full(ram, Ratio::ZERO, LinkSpec::lan_gigabit());
        assert!(e.traffic_fraction(ram).as_f64() > 1.0); // framing overhead
        assert!(e.traffic_fraction(ram).as_f64() < 1.01);
    }

    #[test]
    #[should_panic(expected = "similarity out of range")]
    fn invalid_similarity_panics() {
        let _ = estimate_vecycle(
            Bytes::from_mib(1),
            Ratio::new(1.5),
            Ratio::ZERO,
            LinkSpec::lan_gigabit(),
            &CpuSpec::phenom_ii(),
            ChecksumAlgorithm::Md5,
        );
    }
}
