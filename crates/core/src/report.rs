//! Migration reports: what happened, how long it took, what it cost.

use vecycle_faults::FaultCause;
use vecycle_net::{TrafficCategory, TrafficLedger};
use vecycle_types::{Bytes, PageCount, Ratio, SimDuration};

use crate::StrategyName;

/// How a migration concluded, once the session's retry loop settled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MigrationOutcome {
    /// First attempt, no degradation: the happy path.
    Completed,
    /// Succeeded, but only after `attempts` total attempts.
    CompletedAfterRetries {
        /// Total attempts including the successful one (≥ 2).
        attempts: u32,
    },
    /// Completed without recycling: the checkpoint was unusable and the
    /// session degraded to a dedup-only full migration.
    FellBackToFull {
        /// Why the checkpoint could not be recycled.
        cause: FaultCause,
    },
    /// Every attempt aborted; the VM stayed at the source.
    Failed {
        /// The fault that killed the final attempt.
        cause: FaultCause,
    },
}

impl MigrationOutcome {
    /// True if the VM ended up running at the destination.
    pub fn is_success(&self) -> bool {
        !matches!(self, MigrationOutcome::Failed { .. })
    }

    /// Stable snake_case label for metrics (`…{outcome=…}`).
    pub fn label(&self) -> &'static str {
        match self {
            MigrationOutcome::Completed => "completed",
            MigrationOutcome::CompletedAfterRetries { .. } => "completed_after_retries",
            MigrationOutcome::FellBackToFull { .. } => "fell_back_to_full",
            MigrationOutcome::Failed { .. } => "failed",
        }
    }
}

impl std::fmt::Display for MigrationOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrationOutcome::Completed => f.write_str("completed"),
            MigrationOutcome::CompletedAfterRetries { attempts } => {
                write!(f, "completed after {attempts} attempts")
            }
            MigrationOutcome::FellBackToFull { cause } => {
                write!(f, "fell back to full ({cause})")
            }
            MigrationOutcome::Failed { cause } => write!(f, "failed ({cause})"),
        }
    }
}

/// Timing and traffic of one pre-copy round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundReport {
    /// Round number (1-based; the final stop-and-copy is not a round).
    pub round: u32,
    /// Pages transferred in full.
    pub full_pages: PageCount,
    /// Checksum-only messages (content reused from the checkpoint).
    pub checksum_pages: PageCount,
    /// Dedup back-references.
    pub dedup_refs: PageCount,
    /// Pages skipped outright (dirty tracking).
    pub skipped_pages: PageCount,
    /// Zero pages replaced by 13-byte markers (QEMU zero suppression).
    pub zero_pages: PageCount,
    /// Bytes the source sent this round.
    pub bytes_sent: Bytes,
    /// Wall-clock duration of the round.
    pub duration: SimDuration,
}

/// The pre-migration setup phase, which the paper's timing excludes
/// ("we explicitly do not capture the setup phase at the destination").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SetupReport {
    /// Destination: sequential read of the checkpoint file into RAM.
    pub checkpoint_read: SimDuration,
    /// Source: sequential write of the outgoing checkpoint — performed
    /// after handover, so also outside the measured migration time
    /// ("we discount ... writing the checkpoint at the source").
    pub checkpoint_write: SimDuration,
    /// Destination: building the checksum index while reading.
    pub index_build: SimDuration,
    /// Bytes of the destination→source checksum exchange.
    pub exchange_bytes: Bytes,
    /// Time of the checksum exchange.
    pub exchange_time: SimDuration,
}

impl SetupReport {
    /// Total out-of-band duration (destination setup plus the source's
    /// deferred checkpoint write).
    pub fn total(&self) -> SimDuration {
        self.checkpoint_read + self.checkpoint_write + self.index_build + self.exchange_time
    }
}

/// The full record of one migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationReport {
    strategy: StrategyName,
    ram: Bytes,
    rounds: Vec<RoundReport>,
    downtime: SimDuration,
    setup: SetupReport,
    forward: TrafficLedger,
    reverse: TrafficLedger,
    outcome: MigrationOutcome,
    converged: bool,
    wasted_traffic: Bytes,
    wasted_time: SimDuration,
}

impl MigrationReport {
    pub(crate) fn new(
        strategy: StrategyName,
        ram: Bytes,
        rounds: Vec<RoundReport>,
        downtime: SimDuration,
        setup: SetupReport,
        forward: TrafficLedger,
        reverse: TrafficLedger,
    ) -> Self {
        MigrationReport {
            strategy,
            ram,
            rounds,
            downtime,
            setup,
            forward,
            reverse,
            outcome: MigrationOutcome::Completed,
            converged: true,
            wasted_traffic: Bytes::ZERO,
            wasted_time: SimDuration::ZERO,
        }
    }

    pub(crate) fn set_outcome(&mut self, outcome: MigrationOutcome) {
        self.outcome = outcome;
    }

    pub(crate) fn set_converged(&mut self, converged: bool) {
        self.converged = converged;
    }

    pub(crate) fn add_waste(&mut self, traffic: Bytes, time: SimDuration) {
        self.wasted_traffic += traffic;
        self.wasted_time = self.wasted_time.saturating_add(time);
    }

    /// How the migration concluded after any retries.
    pub fn outcome(&self) -> MigrationOutcome {
        self.outcome
    }

    /// False if the convergence guard (round or pre-copy time budget)
    /// cut pre-copy short and forced the final stop-and-copy.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Source traffic spent on earlier, *failed* attempts of this
    /// migration — not included in [`MigrationReport::source_traffic`],
    /// which covers the successful attempt only.
    pub fn wasted_traffic(&self) -> Bytes {
        self.wasted_traffic
    }

    /// Time spent on failed attempts plus retry backoff — not included
    /// in [`MigrationReport::total_time`].
    pub fn wasted_time(&self) -> SimDuration {
        self.wasted_time
    }

    /// End-to-end source traffic including failed attempts.
    pub fn total_traffic_with_retries(&self) -> Bytes {
        self.source_traffic() + self.wasted_traffic
    }

    /// End-to-end duration including failed attempts and backoff.
    pub fn total_time_with_retries(&self) -> SimDuration {
        self.total_time().saturating_add(self.wasted_time)
    }

    /// The strategy that ran.
    pub fn strategy(&self) -> StrategyName {
        self.strategy
    }

    /// The VM's RAM size.
    pub fn ram(&self) -> Bytes {
        self.ram
    }

    /// Per-round detail.
    pub fn rounds(&self) -> &[RoundReport] {
        &self.rounds
    }

    /// The stop-and-copy pause experienced by the guest.
    pub fn downtime(&self) -> SimDuration {
        self.downtime
    }

    /// The setup phase (excluded from [`MigrationReport::total_time`]).
    pub fn setup(&self) -> &SetupReport {
        &self.setup
    }

    pub(crate) fn setup_mut(&mut self) -> &mut SetupReport {
        &mut self.setup
    }

    /// Zero pages suppressed into markers, across all rounds.
    pub fn zero_pages(&self) -> PageCount {
        self.rounds.iter().map(|r| r.zero_pages).sum()
    }

    /// Migration time as the paper measures it: "from initiating the
    /// migration at the source until the VM runs at the destination",
    /// excluding destination setup and source checkpoint writing.
    pub fn total_time(&self) -> SimDuration {
        self.rounds.iter().map(|r| r.duration).sum::<SimDuration>() + self.downtime
    }

    /// Bytes the source sent to the destination (Figure 6 right,
    /// "source send traffic").
    pub fn source_traffic(&self) -> Bytes {
        self.forward.total()
    }

    /// Bytes the destination sent to the source (checksum exchange,
    /// acknowledgements).
    pub fn reverse_traffic(&self) -> Bytes {
        self.reverse.total()
    }

    /// The forward (source→destination) ledger.
    pub fn forward_ledger(&self) -> &TrafficLedger {
        &self.forward
    }

    /// The reverse (destination→source) ledger.
    pub fn reverse_ledger(&self) -> &TrafficLedger {
        &self.reverse
    }

    /// Pages whose content was reused from the destination checkpoint.
    pub fn pages_reused(&self) -> PageCount {
        self.rounds
            .iter()
            .map(|r| r.checksum_pages + r.skipped_pages)
            .sum()
    }

    /// Pages transferred in full, across all rounds.
    pub fn pages_sent_full(&self) -> PageCount {
        self.rounds.iter().map(|r| r.full_pages).sum()
    }

    /// Source traffic as a fraction of the VM's RAM — the y-axis of
    /// Figure 8.
    pub fn traffic_fraction_of_ram(&self) -> Ratio {
        self.source_traffic().fraction_of(self.ram)
    }

    /// Full-page bytes as recorded in the ledger (cross-check value).
    pub fn full_page_bytes(&self) -> Bytes {
        self.forward.bytes_in(TrafficCategory::FullPages)
    }
}

impl std::fmt::Display for MigrationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} migration of {}: {} in {} ({} rounds, downtime {})",
            self.strategy,
            self.ram,
            self.source_traffic(),
            self.total_time(),
            self.rounds.len(),
            self.downtime,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MigrationReport {
        let rounds = vec![
            RoundReport {
                round: 1,
                full_pages: PageCount::new(100),
                checksum_pages: PageCount::new(50),
                dedup_refs: PageCount::new(10),
                skipped_pages: PageCount::ZERO,
                zero_pages: PageCount::ZERO,
                bytes_sent: Bytes::from_kib(500),
                duration: SimDuration::from_secs(2),
            },
            RoundReport {
                round: 2,
                full_pages: PageCount::new(5),
                checksum_pages: PageCount::ZERO,
                dedup_refs: PageCount::ZERO,
                skipped_pages: PageCount::ZERO,
                zero_pages: PageCount::ZERO,
                bytes_sent: Bytes::from_kib(20),
                duration: SimDuration::from_millis(200),
            },
        ];
        let mut fwd = TrafficLedger::new();
        fwd.record(TrafficCategory::FullPages, Bytes::from_kib(520));
        let mut rev = TrafficLedger::new();
        rev.record(TrafficCategory::BulkExchange, Bytes::from_kib(16));
        MigrationReport::new(
            StrategyName::VeCycle,
            Bytes::from_mib(1),
            rounds,
            SimDuration::from_millis(30),
            SetupReport::default(),
            fwd,
            rev,
        )
    }

    #[test]
    fn total_time_sums_rounds_and_downtime() {
        let r = sample();
        assert_eq!(r.total_time(), SimDuration::from_millis(2000 + 200 + 30));
    }

    #[test]
    fn aggregates() {
        let r = sample();
        assert_eq!(r.pages_sent_full(), PageCount::new(105));
        assert_eq!(r.pages_reused(), PageCount::new(50));
        assert_eq!(r.source_traffic(), Bytes::from_kib(520));
        assert_eq!(r.reverse_traffic(), Bytes::from_kib(16));
        let frac = r.traffic_fraction_of_ram().as_f64();
        assert!((frac - 520.0 / 1024.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_strategy() {
        assert!(sample().to_string().contains("vecycle"));
    }
}
